//! Bellflower: clustered XML schema matching.
pub use xsm_core as clustering;
pub use xsm_matcher as matcher;
pub use xsm_repo as repo;
pub use xsm_schema as schema;
pub use xsm_service as service;
pub use xsm_similarity as similarity;
