//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders and parses JSON text over the vendored serde stub's
//! [`serde::value::Value`] model. Supports exactly what the test-suite
//! round-trips need: `to_string` and `from_str`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::value::Value;
use std::fmt;

mod read;
mod write;

/// Errors from serialization, parsing, or value conversion.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub(crate) fn msg<M: Into<String>>(message: M) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::value::ValueError> for Error {
    fn from(e: serde::value::ValueError) -> Self {
        Error(e.to_string())
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let tree = serde::__private::to_value(value)?;
    let mut out = String::new();
    write::write_value(&mut out, &tree)?;
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(input: &str) -> Result<T> {
    let tree = read::parse(input)?;
    serde::__private::from_value(tree).map_err(Error::from)
}

/// Parse JSON text into the stub's generic [`Value`] tree.
pub fn value_from_str(input: &str) -> Result<Value> {
    read::parse(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(from_str::<f64>("0.5").unwrap(), 0.5);
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));

        let pairs = vec![(0.25f64, 1.0f64), (0.5, 0.75)];
        let json = to_string(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(f64, f64)>>(&json).unwrap(), pairs);
    }

    #[test]
    fn round_trips_u128_and_floats() {
        let big: u128 = u128::MAX;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u128>(&json).unwrap(), big);

        let tiny = 1.25e-7f64;
        assert_eq!(from_str::<f64>(&to_string(&tiny).unwrap()).unwrap(), tiny);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u32>("[1,").is_err());
        assert!(from_str::<u32>("\"unterminated").is_err());
        assert!(from_str::<u32>("{} trailing").is_err());
    }

    #[test]
    fn parses_nested_structures_with_whitespace() {
        let value = value_from_str(r#" { "a" : [ 1 , { "b" : null } ] , "c" : -2.5e1 } "#).unwrap();
        match value {
            serde::value::Value::Map(entries) => {
                assert_eq!(entries.len(), 2);
                assert_eq!(entries[0].0, "a");
            }
            other => panic!("expected map, got {other:?}"),
        }
    }
}
