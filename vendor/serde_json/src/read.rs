//! Recursive-descent JSON parser into the stub's `Value` tree.

use crate::{Error, Result};
use serde::value::Value;

pub fn parse(input: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8> {
        let b = self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::msg(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char,
                self.pos - 1,
                got as char
            )));
        }
        Ok(())
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Unit),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::msg(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Seq(items)),
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Map(entries)),
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let code = self.hex4()?;
                        // Surrogate pairs: JSON escapes astral characters as
                        // two \uXXXX units.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            let combined =
                                0x10000 + ((code - 0xd800) << 10) + (low.wrapping_sub(0xdc00));
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                    }
                    other => {
                        return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                    }
                },
                b if b < 0x80 => out.push(b as char),
                b => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(Error::msg("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u128>() {
                return Ok(Value::U128(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}
