//! JSON text rendering.

use crate::{Error, Result};
use serde::value::Value;
use std::fmt::Write;

pub fn write_value(out: &mut String, value: &Value) -> Result<()> {
    match value {
        Value::Unit => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => write!(out, "{n}").expect("write to String"),
        Value::I64(n) => write!(out, "{n}").expect("write to String"),
        Value::U128(n) => write!(out, "{n}").expect("write to String"),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::msg(format!("cannot serialize {x} as JSON")));
            }
            // `{:?}` prints the shortest representation that round-trips, and
            // always includes a `.0` or exponent for integral values.
            write!(out, "{x:?}").expect("write to String");
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
