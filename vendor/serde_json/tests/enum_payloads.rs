//! Round-trips of the derive stub's data-carrying enum variants through JSON
//! text, pinning the externally-tagged layout real serde uses.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Message {
    Ping,
    Text(String),
    Pair(u32, u32),
    Report { code: u64, detail: String },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum AllTagged {
    One { x: f64 },
    Two(Vec<u8>),
}

fn roundtrip<T: Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(value: &T) {
    let json = serde_json::to_string(value).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, value, "lossy round-trip through {json}");
}

#[test]
fn externally_tagged_layout_is_pinned() {
    assert_eq!(serde_json::to_string(&Message::Ping).unwrap(), "\"Ping\"");
    assert_eq!(
        serde_json::to_string(&Message::Text("hi".into())).unwrap(),
        "{\"Text\":\"hi\"}"
    );
    assert_eq!(
        serde_json::to_string(&Message::Pair(3, 4)).unwrap(),
        "{\"Pair\":[3,4]}"
    );
    assert_eq!(
        serde_json::to_string(&Message::Report {
            code: 7,
            detail: "x".into()
        })
        .unwrap(),
        "{\"Report\":{\"code\":7,\"detail\":\"x\"}}"
    );
}

#[test]
fn all_variant_shapes_round_trip() {
    roundtrip(&Message::Ping);
    roundtrip(&Message::Text(String::new()));
    roundtrip(&Message::Text("unicode αβγ 🦀".into()));
    roundtrip(&Message::Pair(u32::MAX, 0));
    roundtrip(&Message::Report {
        code: u64::MAX,
        detail: "tab\tquote\"".into(),
    });
    roundtrip(&AllTagged::One { x: -0.0 });
    roundtrip(&AllTagged::One {
        x: f64::MIN_POSITIVE,
    });
    roundtrip(&AllTagged::Two(vec![0, 255]));
    roundtrip(&Some(Message::Pair(1, 2)));
    roundtrip(&vec![Message::Ping, Message::Text("a".into())]);
}

#[test]
fn unknown_and_malformed_variants_are_rejected() {
    assert!(serde_json::from_str::<Message>("\"Pong\"").is_err());
    assert!(serde_json::from_str::<Message>("{\"Pair\":[1]}").is_err());
    assert!(serde_json::from_str::<Message>("{\"Report\":{\"code\":1}}").is_err());
    assert!(serde_json::from_str::<Message>("{\"Text\":\"a\",\"Pair\":[1,2]}").is_err());
    assert!(serde_json::from_str::<Message>("3").is_err());
}
