//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the criterion 0.5 API subset Bellflower's benches use
//! ([`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`black_box`], [`criterion_group!`]/[`criterion_main!`])
//! with a deliberately simple measurement loop: each bench warms up briefly,
//! then runs for a fixed wall-clock budget and reports mean ns/iteration.
//! There is no statistical analysis, HTML report, or baseline comparison —
//! swap the real criterion back in once a registry is reachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export of
/// [`std::hint::black_box`]).
pub fn black_box<T>(dummy: T) -> T {
    std::hint::black_box(dummy)
}

/// Identifier of one benchmark: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayed parameter, e.g.
    /// `BenchmarkId::new("build_labeling", tree.len())`.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    measure: Duration,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Run `routine` repeatedly for the measurement budget and record the
    /// iteration count and total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Short warm-up so lazily initialised state does not skew the timing.
        let warm_until = Instant::now() + self.measure / 10;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.measure {
                break;
            }
        }
        self.result = Some((iters, start.elapsed()));
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.measure, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: group_name.into(),
            measure: Duration::from_millis(200),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measure: Duration,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub scales its time budget down
    /// for small sample sizes instead of counting samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if n < 100 {
            self.measure = Duration::from_millis(100);
        }
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.measure, f);
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, measure: Duration, mut f: F) {
    let mut bencher = Bencher {
        measure,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((iters, elapsed)) if iters > 0 => {
            let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!("bench {id:<50} {ns_per_iter:>14.1} ns/iter ({iters} iters)");
        }
        _ => println!("bench {id:<50} (no measurement)"),
    }
}

/// Collect benchmark functions into a single runner function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs every group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion {
            measure: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("distance", 128);
        assert_eq!(id.to_string(), "distance/128");
    }
}
