//! Distributions: the `Standard` distribution and uniform range sampling.

use crate::RngCore;

/// A distribution that can sample values of type `T`.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: floats uniform in `[0,1)`, integers over the
/// whole domain, fair booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform range sampling, mirroring `rand::distributions::uniform`.
pub mod uniform {
    use crate::RngCore;
    use core::ops::{Range, RangeInclusive};

    /// A range that can produce uniformly distributed samples of `T`.
    pub trait SampleRange<T> {
        /// Sample a single value from the range. Panics when the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let u: f64 = crate::Rng::gen(&mut Shim(rng));
                    self.start + (u as $t) * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let u: f64 = crate::Rng::gen(&mut Shim(rng));
                    lo + (u as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_range!(f32, f64);

    /// Adapter so the float impls can call the sized `Rng::gen` on an unsized
    /// `&mut R`.
    struct Shim<'a, R: RngCore + ?Sized>(&'a mut R);

    impl<R: RngCore + ?Sized> crate::RngCore for Shim<'_, R> {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}
