//! Sequence utilities: shuffling and choosing from slices.

use crate::RngCore;

/// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Return a uniformly chosen reference, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}
