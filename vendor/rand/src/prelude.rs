//! Convenience re-exports, mirroring `rand::prelude`.

pub use crate::distributions::{Distribution, Standard};
pub use crate::rngs::StdRng;
pub use crate::seq::SliceRandom;
pub use crate::{Rng, RngCore, SeedableRng};
