//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A deterministic pseudo-random generator (xoshiro256++ under the hood).
///
/// Unlike upstream `rand`, the stream is stable across versions of this
/// vendored crate — seeded experiments are reproducible byte-for-byte.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
