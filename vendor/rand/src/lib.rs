//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) rand 0.8 API surface Bellflower actually uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic across platforms, which is all the seeded
//! experiments require (the paper's repositories are synthesized from fixed
//! seeds). It is **not** the same stream as upstream `StdRng` and is not
//! cryptographically secure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod prelude;
pub mod rngs;
pub mod seq;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Return the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a `u64` seed (deterministic).
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods for generating values, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Sample a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2..=5u8);
            assert!((2..=5).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
