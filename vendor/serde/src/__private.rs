//! Helpers called by `serde_derive`-generated code. Not a public API.

pub use crate::value::{Value, ValueDeserializer, ValueError, ValueSerializer};

/// Serialize any value into the in-memory [`Value`] tree.
pub fn to_value<T: crate::Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Deserialize any owned value from the in-memory [`Value`] tree.
pub fn from_value<T: crate::de::DeserializeOwned>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

/// Look up a struct field in a serialized map (cloning the value).
pub fn get_field(map: &[(String, Value)], name: &str) -> Option<Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone())
}
