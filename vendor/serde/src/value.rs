//! The self-describing value tree every serializer/deserializer funnels
//! through, plus the identity serializer/deserializer over it.

use std::fmt;

/// A serialized value. The stub's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `()`, `None`, JSON `null`.
    Unit,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer up to 64 bits.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer wider than 64 bits (`u128` fields).
    U128(u128),
    /// A floating-point number.
    F64(f64),
    /// A string (also unit enum variants and `char`).
    Str(String),
    /// A sequence (`Vec`, tuples, tuple structs).
    Seq(Vec<Value>),
    /// A map with string keys (structs, maps). Order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::U64(_) => "u64",
            Value::I64(_) => "i64",
            Value::U128(_) => "u128",
            Value::F64(_) => "f64",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// The error type shared by [`ValueSerializer`] and [`ValueDeserializer`].
#[derive(Debug, Clone)]
pub struct ValueError(String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl crate::ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl crate::de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// Serializer whose output *is* the [`Value`] tree.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueSerializer;

impl crate::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Deserializer reading from an in-memory [`Value`] tree.
#[derive(Debug, Clone)]
pub struct ValueDeserializer(pub Value);

impl<'de> crate::Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn deserialize_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}
