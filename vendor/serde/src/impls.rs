//! `Serialize`/`Deserialize` impls for std types.

use crate::de::{Deserialize, Deserializer, Error as DeError};
use crate::ser::{Error as _, Serialize, Serializer};
use crate::value::{Value, ValueDeserializer};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

fn type_error<E: DeError>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, found {}", got.kind()))
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::U64(*self as u64))
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.deserialize_value()?;
                let wide: u128 = match value {
                    Value::U64(v) => v as u128,
                    Value::U128(v) => v,
                    Value::I64(v) if v >= 0 => v as u128,
                    other => return Err(type_error("unsigned integer", &other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| D::Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::I64(*self as i64))
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.deserialize_value()?;
                let wide: i128 = match value {
                    Value::I64(v) => v as i128,
                    Value::U64(v) => v as i128,
                    Value::U128(v) => i128::try_from(v)
                        .map_err(|_| D::Error::custom("u128 out of i128 range"))?,
                    other => return Err(type_error("signed integer", &other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| D::Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::U128(*self))
    }
}

impl<'de> Deserialize<'de> for u128 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::U128(v) => Ok(v),
            Value::U64(v) => Ok(v as u128),
            Value::I64(v) if v >= 0 => Ok(v as u128),
            other => Err(type_error("unsigned integer", &other)),
        }
    }
}

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::F64(*self as f64))
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_value()? {
                    Value::F64(v) => Ok(v as $t),
                    Value::U64(v) => Ok(v as $t),
                    Value::I64(v) => Ok(v as $t),
                    Value::U128(v) => Ok(v as $t),
                    other => Err(type_error("number", &other)),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Bool(v) => Ok(v),
            other => Err(type_error("bool", &other)),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => Err(type_error("string", &other)),
        }
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(type_error("single-character string", &other)),
        }
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Unit)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Unit => Ok(()),
            other => Err(type_error("unit", &other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Unit),
            Some(inner) => inner.serialize(serializer),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Unit => Ok(None),
            value => T::deserialize(ValueDeserializer(value))
                .map(Some)
                .map_err(D::Error::custom),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items = self
            .iter()
            .map(crate::__private::to_value)
            .collect::<Result<Vec<_>, _>>()
            .map_err(S::Error::custom)?;
        serializer.serialize_value(Value::Seq(items))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| T::deserialize(ValueDeserializer(v)))
                .collect::<Result<Vec<_>, _>>()
                .map_err(D::Error::custom),
            other => Err(type_error("sequence", &other)),
        }
    }
}

macro_rules! tuple_impl {
    ($(($len:expr => $($idx:tt $name:ident)+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(crate::__private::to_value(&self.$idx).map_err(S::Error::custom)?,)+
                ];
                serializer.serialize_value(Value::Seq(items))
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_value()? {
                    Value::Seq(items) if items.len() == $len => {
                        let mut iter = items.into_iter();
                        Ok(($(
                            $name::deserialize(ValueDeserializer(
                                iter.next().expect("length checked"),
                            ))
                            .map_err(D::Error::custom)?,
                        )+))
                    }
                    other => Err(type_error("tuple sequence", &other)),
                }
            }
        }
    )+};
}

tuple_impl! {
    (2 => 0 T0 1 T1)
    (3 => 0 T0 1 T1 2 T2)
    (4 => 0 T0 1 T1 2 T2 3 T3)
}

fn serialize_string_map<'a, S, V, I>(serializer: S, entries: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a String, &'a V)>,
{
    let entries = entries
        .map(|(k, v)| Ok((k.clone(), crate::__private::to_value(v)?)))
        .collect::<Result<Vec<_>, crate::value::ValueError>>()
        .map_err(S::Error::custom)?;
    serializer.serialize_value(Value::Map(entries))
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_string_map(serializer, self.iter())
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        k,
                        V::deserialize(ValueDeserializer(v)).map_err(D::Error::custom)?,
                    ))
                })
                .collect(),
            other => Err(type_error("map", &other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Sort for deterministic output (HashMap iteration order is random).
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        serialize_string_map(serializer, entries.into_iter())
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        k,
                        V::deserialize(ValueDeserializer(v)).map_err(D::Error::custom)?,
                    ))
                })
                .collect(),
            other => Err(type_error("map", &other)),
        }
    }
}

impl Serialize for Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(self.subsec_nanos() as u64)),
        ]))
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Map(entries) => {
                let get = |name: &str| {
                    entries
                        .iter()
                        .find(|(k, _)| k == name)
                        .and_then(|(_, v)| match v {
                            Value::U64(n) => Some(*n),
                            _ => None,
                        })
                };
                match (get("secs"), get("nanos")) {
                    (Some(secs), Some(nanos)) => Ok(Duration::new(secs, nanos as u32)),
                    _ => Err(D::Error::custom("Duration: expected {secs, nanos}")),
                }
            }
            other => Err(type_error("duration map", &other)),
        }
    }
}
