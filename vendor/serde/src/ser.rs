//! Serialization traits, mirroring `serde::ser`.

use crate::value::Value;
use std::fmt::Display;

/// Error constructor every serializer error must provide, mirroring
/// `serde::ser::Error`.
pub trait Error: Sized + std::error::Error {
    /// Build an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format (or sink) that can consume one serialized [`Value`].
///
/// Real serde drives a 29-method visitor; in this stub every `Serialize` impl
/// builds a [`Value`] and hands it over in one call, which keeps manual impls
/// like `d.as_secs_f64().serialize(s)` source-compatible.
pub trait Serializer: Sized {
    /// Output type produced on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consume the serialized value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A type that can serialize itself, mirroring `serde::Serialize`.
pub trait Serialize {
    /// Serialize `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}
