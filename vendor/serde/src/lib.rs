//! Offline stand-in for the [`serde`](https://crates.io/crates/serde)
//! framework.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the serde API subset Bellflower uses, with the *same trait
//! signatures* as real serde for everything the source code touches:
//!
//! * `#[derive(Serialize, Deserialize)]` (via the sibling `serde_derive`
//!   stub), honouring `#[serde(skip)]`, `#[serde(default)]` and
//!   `#[serde(with = "module")]`,
//! * manual impls written against [`Serializer`] / [`Deserializer`] generics
//!   (e.g. `f64::deserialize(d)?` and `value.serialize(s)`),
//! * the [`ser::Error::custom`] / [`de::Error::custom`] constructors.
//!
//! Instead of real serde's 29-method visitor data model, everything funnels
//! through a single self-describing [`value::Value`] tree: a `Serializer` is
//! anything that consumes a `Value`, a `Deserializer` is anything that
//! produces one. That is sufficient for the JSON round-trips in the test
//! suite while staying a few hundred lines. Code written against this subset
//! compiles unchanged against real serde (the reverse does not hold).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod de;
mod impls;
pub mod ser;
pub mod value;

#[doc(hidden)]
pub mod __private;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
