//! Deserialization traits, mirroring `serde::de`.

use crate::value::Value;
use std::fmt::Display;

/// Error constructor every deserializer error must provide, mirroring
/// `serde::de::Error`.
pub trait Error: Sized + std::error::Error {
    /// Build an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format (or source) that can produce one self-describing [`Value`].
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Produce the next value.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A type that can deserialize itself, mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {
    /// Deserialize from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input, mirroring
/// `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
