//! Hand-rolled parser from a derive input `TokenStream` to the [`Input`]
//! model. Only the shapes the Bellflower sources use are accepted; anything
//! else returns `Err` with a message that `lib.rs` turns into a
//! `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

use crate::{is_group, is_punct};

/// One named struct field and its `#[serde(...)]` options.
pub struct Field {
    pub name: String,
    pub skip: bool,
    pub default: bool,
    pub with: Option<String>,
}

/// The payload shape of one enum variant.
pub enum VariantShape {
    /// `Variant` — serialized as the bare variant-name string.
    Unit,
    /// `Variant(T)` / `Variant(T, U, …)` — externally tagged newtype/sequence.
    Tuple { arity: usize },
    /// `Variant { a: T, … }` — externally tagged map.
    Struct { fields: Vec<Field> },
}

/// One enum variant: its name plus the payload it carries.
pub struct Variant {
    pub name: String,
    pub shape: VariantShape,
}

/// The shapes of type definition the stub derives support.
pub enum Input {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

impl Input {
    pub fn name(&self) -> &str {
        match self {
            Input::NamedStruct { name, .. }
            | Input::TupleStruct { name, .. }
            | Input::UnitStruct { name }
            | Input::Enum { name, .. } => name,
        }
    }
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

pub fn parse(input: TokenStream) -> Result<Input, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);
    let keyword = expect_ident(&mut tokens)?;
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("serde stub derive: unsupported item `{other}`")),
    };
    let name = expect_ident(&mut tokens)?;
    if tokens.peek().map(|t| is_punct(t, '<')).unwrap_or(false) {
        return Err(format!(
            "serde stub derive: `{name}` is generic; generics are not supported"
        ));
    }
    if is_enum {
        let body = expect_group(&mut tokens, Delimiter::Brace, &name)?;
        let variants = parse_variants(body, &name)?;
        return Ok(Input::Enum { name, variants });
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(g.stream(), &name)?;
            Ok(Input::NamedStruct { name, fields })
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = parse_tuple_arity(g.stream(), &name)?;
            if arity == 0 {
                Ok(Input::UnitStruct { name })
            } else {
                Ok(Input::TupleStruct { name, arity })
            }
        }
        Some(t) if is_punct(&t, ';') => Ok(Input::UnitStruct { name }),
        _ => Err(format!("serde stub derive: malformed struct `{name}`")),
    }
}

/// Consume any number of leading `#[...]` attributes (incl. doc comments).
fn skip_attributes(tokens: &mut Tokens) {
    while tokens.peek().map(|t| is_punct(t, '#')).unwrap_or(false) {
        tokens.next();
        if tokens
            .peek()
            .map(|t| is_group(t, Delimiter::Bracket))
            .unwrap_or(false)
        {
            tokens.next();
        }
    }
}

/// Consume `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if tokens
            .peek()
            .map(|t| is_group(t, Delimiter::Parenthesis))
            .unwrap_or(false)
        {
            tokens.next();
        }
    }
}

fn expect_ident(tokens: &mut Tokens) -> Result<String, String> {
    match tokens.next() {
        Some(TokenTree::Ident(i)) => Ok(i.to_string()),
        other => Err(format!(
            "serde stub derive: expected identifier, found {other:?}"
        )),
    }
}

fn expect_group(
    tokens: &mut Tokens,
    delimiter: Delimiter,
    context: &str,
) -> Result<TokenStream, String> {
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == delimiter => Ok(g.stream()),
        _ => Err(format!("serde stub derive: malformed body for `{context}`")),
    }
}

/// Parse `#[serde(...)]`-aware named fields: `[attrs] [vis] name : Type ,`.
fn parse_named_fields(body: TokenStream, struct_name: &str) -> Result<Vec<Field>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let (skip, default, with) = collect_serde_options(&mut tokens, struct_name)?;
        if tokens.peek().is_none() {
            break;
        }
        skip_visibility(&mut tokens);
        let name = expect_ident(&mut tokens)?;
        match tokens.next() {
            Some(t) if is_punct(&t, ':') => {}
            _ => {
                return Err(format!(
                    "serde stub derive: expected `:` after field `{name}` in `{struct_name}`"
                ))
            }
        }
        consume_type(&mut tokens);
        fields.push(Field {
            name,
            skip,
            default,
            with,
        });
    }
    Ok(fields)
}

/// Consume field attributes, returning the (skip, default, with) options.
fn collect_serde_options(
    tokens: &mut Tokens,
    struct_name: &str,
) -> Result<(bool, bool, Option<String>), String> {
    let mut skip = false;
    let mut default = false;
    let mut with = None;
    while tokens.peek().map(|t| is_punct(t, '#')).unwrap_or(false) {
        tokens.next();
        let Some(TokenTree::Group(attr)) = tokens.next() else {
            return Err(format!(
                "serde stub derive: malformed attribute in `{struct_name}`"
            ));
        };
        let mut inner = attr.stream().into_iter();
        let is_serde =
            matches!(inner.next(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
        if !is_serde {
            continue; // doc comment or other inert attribute
        }
        let Some(TokenTree::Group(args)) = inner.next() else {
            return Err(format!(
                "serde stub derive: malformed #[serde] attribute in `{struct_name}`"
            ));
        };
        let mut args = args.stream().into_iter().peekable();
        while let Some(tree) = args.next() {
            match tree {
                TokenTree::Ident(i) => match i.to_string().as_str() {
                    "skip" => skip = true,
                    "default" => default = true,
                    "with" => {
                        match args.next() {
                            Some(t) if is_punct(&t, '=') => {}
                            _ => {
                                return Err(format!(
                                "serde stub derive: expected `=` after `with` in `{struct_name}`"
                            ))
                            }
                        }
                        match args.next() {
                            Some(TokenTree::Literal(l)) => {
                                let raw = l.to_string();
                                with = Some(raw.trim_matches('"').to_string());
                            }
                            _ => {
                                return Err(format!(
                                    "serde stub derive: expected string after `with =` in `{struct_name}`"
                                ))
                            }
                        }
                    }
                    other => {
                        return Err(format!(
                            "serde stub derive: unsupported #[serde({other})] in `{struct_name}`"
                        ))
                    }
                },
                t if is_punct(&t, ',') => {}
                other => {
                    return Err(format!(
                        "serde stub derive: unexpected token {other} in #[serde] on `{struct_name}`"
                    ))
                }
            }
        }
    }
    Ok((skip, default, with))
}

/// Consume a type expression up to a top-level `,` (or end of stream),
/// tracking `<...>` nesting so commas inside generic arguments don't split
/// the field early. Brackets/parens arrive as single `Group` tokens.
fn consume_type(tokens: &mut Tokens) {
    let mut angle_depth = 0usize;
    while let Some(tree) = tokens.peek() {
        if is_punct(tree, ',') && angle_depth == 0 {
            tokens.next();
            return;
        }
        if is_punct(tree, '<') {
            angle_depth += 1;
        } else if is_punct(tree, '>') {
            angle_depth = angle_depth.saturating_sub(1);
        }
        tokens.next();
    }
}

/// Count top-level fields of a tuple struct body.
fn parse_tuple_arity(body: TokenStream, _struct_name: &str) -> Result<usize, String> {
    let mut tokens = body.into_iter().peekable();
    let mut arity = 0usize;
    while tokens.peek().is_some() {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        consume_type(&mut tokens);
        arity += 1;
    }
    Ok(arity)
}

/// Parse enum variants: unit variants, tuple variants (`V(T, …)`) and struct
/// variants (`V { a: T, … }`), serialized externally tagged like real serde.
fn parse_variants(body: TokenStream, enum_name: &str) -> Result<Vec<Variant>, String> {
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut tokens)?;
        match tokens.next() {
            None => {
                variants.push(Variant {
                    name,
                    shape: VariantShape::Unit,
                });
                break;
            }
            Some(t) if is_punct(&t, ',') => variants.push(Variant {
                name,
                shape: VariantShape::Unit,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g.stream(), enum_name)?;
                let shape = if arity == 0 {
                    VariantShape::Unit
                } else {
                    VariantShape::Tuple { arity }
                };
                variants.push(Variant { name, shape });
                expect_variant_separator(&mut tokens, enum_name)?;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream(), enum_name)?;
                variants.push(Variant {
                    name,
                    shape: VariantShape::Struct { fields },
                });
                expect_variant_separator(&mut tokens, enum_name)?;
            }
            Some(t) if is_punct(&t, '=') => {
                // Explicit discriminant: skip the expression.
                consume_type(&mut tokens);
                variants.push(Variant {
                    name,
                    shape: VariantShape::Unit,
                });
            }
            Some(other) => {
                return Err(format!(
                    "serde stub derive: unexpected token {other} after `{enum_name}::{name}`"
                ));
            }
        }
    }
    Ok(variants)
}

/// After a data-carrying variant's payload group: a `,` or the end of the body.
fn expect_variant_separator(tokens: &mut Tokens, enum_name: &str) -> Result<(), String> {
    match tokens.next() {
        None => Ok(()),
        Some(t) if is_punct(&t, ',') => Ok(()),
        Some(other) => Err(format!(
            "serde stub derive: expected `,` between `{enum_name}` variants, found {other}"
        )),
    }
}
