//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` stub's single-`Value` data model, without `syn`/`quote`
//! (neither is available offline): the input `TokenStream` is parsed by hand
//! into a small `Input` model and code is generated with `format!`.
//!
//! Supported shapes — exactly what the Bellflower sources need:
//!
//! * structs with named fields, honouring `#[serde(skip)]`,
//!   `#[serde(default)]` and `#[serde(with = "module")]`,
//! * tuple structs (newtypes serialize transparently, wider ones as
//!   sequences),
//! * unit structs,
//! * enums, externally tagged exactly like real serde: unit variants as the
//!   bare variant-name string, newtype variants as `{"Variant": value}`,
//!   tuple variants as `{"Variant": [..]}` and struct variants as
//!   `{"Variant": {..}}`.
//!
//! Generics and unknown `#[serde(...)]` attributes produce a
//! `compile_error!` naming the construct, so misuse fails loudly instead of
//! round-tripping incorrectly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

mod parse;

use parse::{Field, Input, Variant, VariantShape};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Input) -> String) -> TokenStream {
    let code = match parse::parse(input) {
        Ok(model) => generate(&model),
        Err(message) => format!("compile_error!({message:?});"),
    };
    code.parse()
        .expect("serde stub derive generated invalid Rust")
}

const SER_ERR: &str = "|e| <S::Error as ::serde::ser::Error>::custom(e)";
const DE_ERR: &str = "|e| <D::Error as ::serde::de::Error>::custom(e)";

fn gen_serialize(input: &Input) -> String {
    let body = match input {
        Input::NamedStruct { fields, .. } => {
            let mut pushes = String::new();
            for field in fields.iter().filter(|f| !f.skip) {
                let expr = match &field.with {
                    Some(path) => format!(
                        "{path}::serialize(&self.{f}, ::serde::__private::ValueSerializer)",
                        f = field.name
                    ),
                    None => format!("::serde::__private::to_value(&self.{f})", f = field.name),
                };
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from({n:?}), {expr}.map_err({SER_ERR})?));\n",
                    n = field.name,
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::__private::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 serializer.serialize_value(::serde::__private::Value::Map(__fields))"
            )
        }
        Input::TupleStruct { arity: 1, .. } => format!(
            "serializer.serialize_value(::serde::__private::to_value(&self.0).map_err({SER_ERR})?)"
        ),
        Input::TupleStruct { arity, .. } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::__private::to_value(&self.{i}).map_err({SER_ERR})?"))
                .collect();
            format!(
                "serializer.serialize_value(::serde::__private::Value::Seq(::std::vec![{}]))",
                items.join(", ")
            )
        }
        Input::UnitStruct { .. } => {
            "serializer.serialize_value(::serde::__private::Value::Unit)".to_string()
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect();
            format!(
                "serializer.serialize_value(match self {{ {} }})",
                arms.join(" ")
            )
        }
    };
    let name = input.name();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<S: ::serde::ser::Serializer>(&self, serializer: S)\n\
                 -> ::std::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = input.name();
    let body = match input {
        Input::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for field in fields {
                inits.push_str(&field_init(name, field, "__map"));
            }
            format!(
                "let __map = match deserializer.deserialize_value()? {{\n\
                     ::serde::__private::Value::Map(m) => m,\n\
                     other => return ::std::result::Result::Err(\n\
                         <D::Error as ::serde::de::Error>::custom(\n\
                             format!(\"{name}: expected map, found {{}}\", other.kind()))),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Input::TupleStruct { name, arity: 1 } => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::__private::from_value(deserializer.deserialize_value()?).map_err({DE_ERR})?))"
        ),
        Input::TupleStruct { name, arity } => format!(
            "let __items = match deserializer.deserialize_value()? {{\n\
                 ::serde::__private::Value::Seq(items) if items.len() == {arity} => items,\n\
                 other => return ::std::result::Result::Err(\n\
                     <D::Error as ::serde::de::Error>::custom(\n\
                         format!(\"{name}: expected {arity}-element sequence, found {{}}\", other.kind()))),\n\
             }};\n\
             let mut __iter = __items.into_iter();\n\
             ::std::result::Result::Ok({name}({fields}))",
            fields = (0..*arity)
                .map(|_| format!(
                    "::serde::__private::from_value(__iter.next().expect(\"length checked\"))\
                     .map_err({DE_ERR})?, "
                ))
                .collect::<String>(),
        ),
        Input::UnitStruct { name } => format!("::std::result::Result::Ok({name})"),
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, parse::VariantShape::Unit))
                .map(|v| {
                    format!(
                        "{n:?} => ::std::result::Result::Ok({name}::{n}),",
                        n = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.shape, parse::VariantShape::Unit))
                .map(|v| deserialize_variant_arm(name, v))
                .collect();
            format!(
                "match deserializer.deserialize_value()? {{\n\
                     ::serde::__private::Value::Str(__s) => match __s.as_str() {{\n\
                         {units}\n\
                         other => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
                             format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                     }},\n\
                     ::serde::__private::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __payload) = __m.into_iter().next().expect(\"length checked\");\n\
                         match __tag.as_str() {{\n\
                             {tagged}\n\
                             other => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
                                 format!(\"{name}: unknown variant {{other:?}}\"))),\n\
                         }}\n\
                     }},\n\
                     other => ::std::result::Result::Err(\n\
                         <D::Error as ::serde::de::Error>::custom(\n\
                             format!(\"{name}: expected variant string or single-entry map, found {{}}\", other.kind()))),\n\
                 }}",
                units = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::de::Deserializer<'de>>(deserializer: D)\n\
                 -> ::std::result::Result<Self, D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

/// One match arm serializing a single enum variant (externally tagged: unit
/// variants are the bare name string, newtype variants `{"V": value}`, tuple
/// variants `{"V": [..]}`, struct variants `{"V": {..}}` — real serde's layout).
fn serialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.shape {
        VariantShape::Unit => format!(
            "{enum_name}::{v} => ::serde::__private::Value::Str(::std::string::String::from({v:?})),"
        ),
        VariantShape::Tuple { arity: 1 } => format!(
            "{enum_name}::{v}(__f0) => ::serde::__private::Value::Map(::std::vec![(\
             ::std::string::String::from({v:?}), \
             ::serde::__private::to_value(__f0).map_err({SER_ERR})?)]),"
        ),
        VariantShape::Tuple { arity } => {
            let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::__private::to_value(__f{i}).map_err({SER_ERR})?"))
                .collect();
            format!(
                "{enum_name}::{v}({binds}) => ::serde::__private::Value::Map(::std::vec![(\
                 ::std::string::String::from({v:?}), \
                 ::serde::__private::Value::Seq(::std::vec![{items}]))]),",
                binds = binds.join(", "),
                items = items.join(", "),
            )
        }
        VariantShape::Struct { fields } => {
            let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
            let pushes: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(::std::string::String::from({n:?}), \
                         ::serde::__private::to_value({n}).map_err({SER_ERR})?)",
                        n = f.name
                    )
                })
                .collect();
            format!(
                "{enum_name}::{v} {{ {binds} }} => ::serde::__private::Value::Map(::std::vec![(\
                 ::std::string::String::from({v:?}), \
                 ::serde::__private::Value::Map(::std::vec![{pushes}]))]),",
                binds = binds.join(", "),
                pushes = pushes.join(", "),
            )
        }
    }
}

/// One match arm deserializing a data-carrying enum variant from its
/// externally-tagged `(tag, payload)` entry.
fn deserialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.shape {
        VariantShape::Unit => unreachable!("unit variants deserialize from the string arm"),
        VariantShape::Tuple { arity: 1 } => format!(
            "{v:?} => ::std::result::Result::Ok({enum_name}::{v}(\
             ::serde::__private::from_value(__payload).map_err({DE_ERR})?)),"
        ),
        VariantShape::Tuple { arity } => {
            let fields: String = (0..*arity)
                .map(|_| {
                    format!(
                        "::serde::__private::from_value(__iter.next().expect(\"length checked\"))\
                         .map_err({DE_ERR})?, "
                    )
                })
                .collect();
            format!(
                "{v:?} => match __payload {{\n\
                     ::serde::__private::Value::Seq(__items) if __items.len() == {arity} => {{\n\
                         let mut __iter = __items.into_iter();\n\
                         ::std::result::Result::Ok({enum_name}::{v}({fields}))\n\
                     }}\n\
                     other => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
                         format!(\"{enum_name}::{v}: expected {arity}-element sequence, found {{}}\", other.kind()))),\n\
                 }},"
            )
        }
        VariantShape::Struct { fields } => {
            let inits: String = fields
                .iter()
                .map(|f| field_init(&format!("{enum_name}::{v}"), f, "__vmap"))
                .collect();
            format!(
                "{v:?} => match __payload {{\n\
                     ::serde::__private::Value::Map(__vmap) => \
                         ::std::result::Result::Ok({enum_name}::{v} {{\n{inits}}}),\n\
                     other => ::std::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\n\
                         format!(\"{enum_name}::{v}: expected field map, found {{}}\", other.kind()))),\n\
                 }},"
            )
        }
    }
}

fn field_init(struct_name: &str, field: &Field, map_ident: &str) -> String {
    let f = &field.name;
    if field.skip {
        return format!("{f}: ::std::default::Default::default(),\n");
    }
    let lookup = format!("::serde::__private::get_field(&{map_ident}, {f:?})");
    let missing = if field.default {
        // `#[serde(default)]`: absent field falls back to Default.
        String::new()
    } else {
        format!(
            ".ok_or_else(|| <D::Error as ::serde::de::Error>::custom(\
             \"{struct_name}: missing field `{f}`\"))?"
        )
    };
    let convert = |value_expr: String| {
        match &field.with {
        Some(path) => format!(
            "{path}::deserialize(::serde::__private::ValueDeserializer({value_expr})).map_err({DE_ERR})?"
        ),
        None => format!("::serde::__private::from_value({value_expr}).map_err({DE_ERR})?"),
    }
    };
    if field.default {
        format!(
            "{f}: match {lookup} {{\n\
                 ::std::option::Option::Some(__v) => {},\n\
                 ::std::option::Option::None => ::std::default::Default::default(),\n\
             }},\n",
            convert("__v".to_string())
        )
    } else {
        format!("{f}: {},\n", convert(format!("{lookup}{missing}")))
    }
}

/// Re-exported for the parser module.
pub(crate) fn is_punct(tree: &TokenTree, ch: char) -> bool {
    matches!(tree, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Re-exported for the parser module.
pub(crate) fn is_group(tree: &TokenTree, delimiter: Delimiter) -> bool {
    matches!(tree, TokenTree::Group(g) if g.delimiter() == delimiter)
}
