//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest that Bellflower's property tests use:
//!
//! * the [`proptest!`] macro with `name in strategy` bindings,
//! * [`prop_assert!`] / [`prop_assert_eq!`] (early-return failures),
//! * string strategies written as a single character-class regex
//!   (`"[a-z]{0,12}"`), numeric range strategies (`0.0f64..1.0`,
//!   `1usize..4`), tuple strategies, and [`collection::vec`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports the
//! generated inputs and panics. Generation is deterministic (fixed seed), so
//! failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Convenience re-exports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests. Each function runs
/// [`test_runner::CASES`] deterministic cases of its strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::test_runner::CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                    let __inputs = format!(concat!($(stringify!($arg), " = {:?}, "),+), $(&$arg),+);
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("proptest case {}/{} failed: {}\n  inputs: {}",
                               __case + 1, $crate::test_runner::CASES, e, __inputs);
                    }
                }
            }
        )+
    };
}

/// Assert a condition inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Assert equality inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn strings_match_character_class(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn ranges_and_tuples(x in 0.25f64..0.75, q in 1usize..4, pair in (0.0f64..1.0, 0.5f64..1.0)) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((1..4).contains(&q));
            prop_assert!(pair.0 < 1.0 && pair.1 >= 0.5);
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(0.0f64..1.0, 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }
    }

    #[test]
    fn escaped_character_classes_parse() {
        let mut rng = crate::test_runner::TestRng::for_test("escapes");
        for _ in 0..64 {
            let s = crate::strategy::Strategy::generate(&"[a-zA-Z0-9_\\-\\. ]{0,20}", &mut rng);
            assert!(s.len() <= 20);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "_-. ".contains(c)));
        }
    }
}
