//! Value-generation strategies.

use crate::test_runner::TestRng;
use core::ops::Range;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// String strategy: a single character-class regex such as `"[a-zA-Z]{0,14}"`.
///
/// Supported syntax: one bracketed class of literal characters, `\`-escapes
/// and `a-z` ranges, followed by `{n}` or `{lo,hi}`. Anything else panics with
/// a clear message — extend the parser rather than silently mis-generating.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported string strategy {self:?}: {e}"));
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Result<(Vec<char>, usize, usize), String> {
    let rest = pattern
        .strip_prefix('[')
        .ok_or_else(|| "expected leading [".to_string())?;
    let mut chars = rest.chars().peekable();
    let mut alphabet = Vec::new();
    loop {
        let c = chars
            .next()
            .ok_or_else(|| "unterminated class".to_string())?;
        match c {
            ']' => break,
            '\\' => {
                let escaped = chars.next().ok_or_else(|| "dangling escape".to_string())?;
                alphabet.push(escaped);
            }
            _ => {
                if chars.peek() == Some(&'-') {
                    let mut lookahead = chars.clone();
                    lookahead.next(); // consume '-'
                    match lookahead.peek() {
                        Some(&end) if end != ']' => {
                            chars = lookahead;
                            let end = chars.next().expect("peeked");
                            if (end as u32) < (c as u32) {
                                return Err(format!("inverted range {c}-{end}"));
                            }
                            alphabet.extend((c as u32..=end as u32).filter_map(char::from_u32));
                            continue;
                        }
                        _ => {}
                    }
                }
                alphabet.push(c);
            }
        }
    }
    if alphabet.is_empty() {
        return Err("empty character class".to_string());
    }
    let quant: String = chars.collect();
    let inner = quant
        .strip_prefix('{')
        .and_then(|q| q.strip_suffix('}'))
        .ok_or_else(|| format!("expected {{n}} or {{lo,hi}} quantifier, got {quant:?}"))?;
    let (lo, hi) = match inner.split_once(',') {
        Some((l, h)) => (
            l.trim().parse::<usize>().map_err(|e| e.to_string())?,
            h.trim().parse::<usize>().map_err(|e| e.to_string())?,
        ),
        None => {
            let n = inner.trim().parse::<usize>().map_err(|e| e.to_string())?;
            (n, n)
        }
    };
    if lo > hi {
        return Err(format!("inverted quantifier {{{lo},{hi}}}"));
    }
    Ok((alphabet, lo, hi))
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}
