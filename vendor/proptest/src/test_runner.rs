//! Case execution support: the per-test RNG and failure type.

use std::fmt;

/// Number of cases generated per property test.
pub const CASES: usize = 96;

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail<M: Into<String>>(message: M) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG (SplitMix64) seeded from the test name, so every test
/// gets an independent but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
