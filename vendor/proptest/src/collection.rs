//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Create a [`VecStrategy`] generating between `len.start` (inclusive) and
/// `len.end` (exclusive) elements.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end - self.len.start;
        let len = self.len.start + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
