//! Integration tests asserting the *qualitative shape* of the paper's experiments on a
//! scaled-down workload: the orderings that Table 1 and Figures 4–6 report must hold
//! (who wins, in which direction the trade-off moves), even though absolute numbers
//! differ from the 2006 testbed.

use xsm_bench::experiments::{run_fig4, run_fig5, run_table1};
use xsm_bench::{ExperimentConfig, Workload};

fn workload() -> Workload {
    Workload::build(ExperimentConfig {
        seed: 11,
        elements: 2_000,
        ..ExperimentConfig::smoke()
    })
}

#[test]
fn table1_orderings_hold_on_a_small_workload() {
    let w = workload();
    let table = run_table1(&w);
    let row = |label: &str| table.rows.iter().find(|r| r.variant == label).unwrap();
    let (small, medium, tree) = (row("small"), row("medium"), row("tree"));

    // Tab. 1a: clustering condenses the search space, and finer clustering condenses it more.
    assert!(small.search_space <= medium.search_space);
    assert!(medium.search_space <= tree.search_space);
    assert!(
        small.search_space < tree.search_space,
        "clustering had no effect at all"
    );
    // Tab. 1a: clusters hold fewer mapping elements than whole trees on average.
    assert!(small.avg_mapping_elements <= tree.avg_mapping_elements + 1e-9);

    // Tab. 1b: the generator does less work on the clustered search space and loses
    // some of the mappings — never gains.
    assert!(small.partial_mappings <= tree.partial_mappings);
    assert!(small.retained_mappings <= tree.retained_mappings);
    assert!(tree.retained_mappings > 0);

    // Sec. 5 "Efficiency of clustering": the three clustered variants spend roughly the
    // same time clustering (same element count, same iterations bound); here we just
    // check clustering happened and took measurable but bounded effort.
    assert!(small.kmeans_iterations >= 1);
    assert_eq!(tree.kmeans_iterations, 0);
}

#[test]
fn fig4_reclustering_reduces_cluster_count_and_removes_tiny_clusters() {
    let w = workload();
    let fig4 = run_fig4(&w);
    let by = |label: &str| fig4.series.iter().find(|s| s.strategy == label).unwrap();
    let none = by("no reclustering");
    let join = by("join");
    let join_remove = by("join & remove");

    // The paper's Fig. 4 ordering: 579 → 333 → 243 clusters.
    assert!(none.cluster_count >= join.cluster_count);
    assert!(join.cluster_count >= join_remove.cluster_count);

    // join & remove eliminates the [1,1] bucket entirely (tiny clusters are gone).
    assert_eq!(
        join_remove.histogram.counts[0], 0,
        "tiny clusters survived join&remove"
    );
    // Without reclustering, tiny clusters are the dominant artefact the paper reports.
    assert!(none.histogram.counts[0] >= join.histogram.counts[0]);
}

#[test]
fn fig5_preservation_improves_with_threshold_and_with_cluster_size() {
    let w = workload();
    let fig5 = run_fig5(&w);
    let by = |label: &str| fig5.series.iter().find(|s| s.label == label).unwrap();
    let small = by("small clusters");
    let large = by("large clusters");
    let tree = by("tree clusters");

    // The non-clustered line is constant 1.0.
    assert!(tree.points.iter().all(|p| (p.fraction - 1.0).abs() < 1e-12));
    // Preservation at the top of the threshold range is at least as good as at δ=0.75
    // for every clustered variant (the paper's "loss occurs among low-ranked mappings").
    for series in [small, large] {
        let first = series.points.first().unwrap();
        let last = series.points.last().unwrap();
        assert!(last.fraction + 1e-9 >= first.fraction, "{}", series.label);
    }
    // Larger clusters preserve at least as many mappings as smaller clusters at δ=0.75.
    assert!(large.points[0].fraction + 1e-9 >= small.points[0].fraction);
}

#[test]
fn experiment_is_reproducible_for_a_fixed_seed() {
    let a = run_table1(&workload());
    let b = run_table1(&workload());
    for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
        assert_eq!(ra.variant, rb.variant);
        assert_eq!(ra.useful_clusters, rb.useful_clusters);
        assert_eq!(ra.search_space, rb.search_space);
        assert_eq!(ra.partial_mappings, rb.partial_mappings);
        assert_eq!(ra.retained_mappings, rb.retained_mappings);
    }
}
