//! Cross-crate integration tests: parse schemas → build a repository → match → cluster
//! → generate mappings, exercising the whole public API the way the examples and the
//! experiment harness do.

use bellflower::clustering::metrics::preservation_curve;
use bellflower::clustering::{ClusteredMatcher, ClusteringConfig, ClusteringVariant};
use bellflower::matcher::element::{match_elements, ElementMatchConfig, NameElementMatcher};
use bellflower::matcher::generator::astar::AStarGenerator;
use bellflower::matcher::generator::exhaustive::ExhaustiveGenerator;
use bellflower::matcher::{
    BranchAndBoundGenerator, MappingGenerator, MatchingProblem, ObjectiveConfig,
};
use bellflower::repo::corpus::load_documents;
use bellflower::repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository};
use bellflower::schema::{SchemaNode, TreeBuilder};

/// A mixed DTD/XSD corpus containing several plausible targets for a contact-style
/// personal schema.
fn parsed_corpus() -> SchemaRepository {
    let docs = [
        (
            "people.dtd",
            r#"<!ELEMENT person (name, email, address)>
               <!ELEMENT name (#PCDATA)> <!ELEMENT email (#PCDATA)> <!ELEMENT address (#PCDATA)>"#,
        ),
        (
            "orders.xsd",
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="order"><xs:complexType><xs:sequence>
                <xs:element name="customerName" type="xs:string"/>
                <xs:element name="shippingAddress" type="xs:string"/>
                <xs:element name="contactEmail" type="xs:string"/>
                <xs:element name="total" type="xs:decimal"/>
              </xs:sequence></xs:complexType></xs:element>
            </xs:schema>"#,
        ),
        (
            "library.dtd",
            r#"<!ELEMENT lib (book*, address)>
               <!ELEMENT book (data, shelf?)>
               <!ELEMENT data (title, authorName+)>
               <!ELEMENT title (#PCDATA)> <!ELEMENT authorName (#PCDATA)>
               <!ELEMENT shelf (#PCDATA)> <!ELEMENT address (#PCDATA)>"#,
        ),
    ];
    let (repo, report) = load_documents(docs);
    assert_eq!(report.skipped_files.len(), 0);
    repo
}

fn contact_problem(threshold: f64) -> MatchingProblem {
    let personal = TreeBuilder::new("personal")
        .root(SchemaNode::element("name"))
        .child(SchemaNode::element("address"))
        .sibling(SchemaNode::element("email"))
        .build();
    MatchingProblem::new(personal, ObjectiveConfig::default(), threshold)
}

#[test]
fn end_to_end_on_parsed_schemas_finds_the_person_schema() {
    let repo = parsed_corpus();
    let problem = contact_problem(0.7);
    let candidates = match_elements(
        &problem.personal,
        &repo,
        &NameElementMatcher,
        &ElementMatchConfig::default().with_min_similarity(0.3),
    );
    assert!(candidates.is_useful());
    let outcome = BranchAndBoundGenerator::new().generate(&problem, &repo, &candidates);
    assert!(!outcome.mappings.is_empty());
    // The best mapping should be the person schema (exact name/email/address matches,
    // tight structure).
    let best = &outcome.mappings[0];
    let tree = repo.tree(best.repo_tree().unwrap()).unwrap();
    assert_eq!(tree.name(), "people.dtd");
    // name/email/address all match exactly (Δ_sim = 1) and the images are the three
    // children of `person`, whose spanning subtree has one excess edge:
    // Δ = 0.5·1.0 + 0.5·(1 − 1/(2·4)) = 0.9375.
    assert!((best.score - 0.9375).abs() < 1e-9, "score {}", best.score);
}

#[test]
fn all_exact_generators_agree_end_to_end() {
    let repo = parsed_corpus();
    let problem = contact_problem(0.5);
    let candidates = match_elements(
        &problem.personal,
        &repo,
        &NameElementMatcher,
        &ElementMatchConfig::default().with_min_similarity(0.3),
    );
    let bb = BranchAndBoundGenerator::new().generate(&problem, &repo, &candidates);
    let ex = ExhaustiveGenerator::new().generate(&problem, &repo, &candidates);
    let astar = AStarGenerator::new().generate(&problem, &repo, &candidates);
    assert_eq!(bb.mappings.len(), ex.mappings.len());
    assert_eq!(bb.mappings.len(), astar.mappings.len());
    for (a, b) in bb.mappings.iter().zip(ex.mappings.iter()) {
        assert!((a.score - b.score).abs() < 1e-12);
    }
    // B&B does no more work than exhaustive enumeration.
    assert!(bb.counters.partial_mappings <= ex.counters.partial_mappings);
}

#[test]
fn clustered_pipeline_on_synthetic_repository_preserves_top_mappings() {
    let repo = RepositoryGenerator::new(
        GeneratorConfig::default()
            .with_seed(77)
            .with_target_elements(2_500),
    )
    .generate();
    let problem = contact_problem(0.7);
    let candidates = match_elements(
        &problem.personal,
        &repo,
        &NameElementMatcher,
        &ElementMatchConfig::default().with_min_similarity(0.45),
    );
    let generator = BranchAndBoundGenerator::new();
    let baseline =
        ClusteredMatcher::baseline().run_on_candidates(&problem, &repo, &candidates, &generator);
    let clustered = ClusteredMatcher::for_variant(ClusteringVariant::Medium).run_on_candidates(
        &problem,
        &repo,
        &candidates,
        &generator,
    );

    assert!(!baseline.mappings.is_empty(), "baseline found nothing");
    // Efficiency: clustering never enlarges the search space.
    assert!(
        clustered.cluster_stats.total_search_space <= baseline.cluster_stats.total_search_space
    );
    assert!(
        clustered.generator_counters.partial_mappings
            <= baseline.generator_counters.partial_mappings
    );
    // Effectiveness: the single best baseline mapping survives clustering (the paper's
    // "preserve highly ranked mappings" property), and preservation at the top of the
    // score range is at least as good as at the threshold.
    let curve = preservation_curve(
        &baseline.mappings,
        &clustered.mappings,
        &[problem.threshold, 0.95],
    );
    assert!(curve[1].fraction + 1e-9 >= curve[0].fraction);
    assert!(
        curve[1].fraction > 0.5,
        "top-ranked mappings poorly preserved: {:?}",
        curve[1]
    );
}

#[test]
fn clustered_mappings_are_a_subset_of_baseline_mappings() {
    let repo = RepositoryGenerator::new(
        GeneratorConfig::default()
            .with_seed(123)
            .with_target_elements(1_500),
    )
    .generate();
    let problem = contact_problem(0.72);
    let candidates = match_elements(
        &problem.personal,
        &repo,
        &NameElementMatcher,
        &ElementMatchConfig::default().with_min_similarity(0.45),
    );
    let generator = BranchAndBoundGenerator::new();
    let baseline =
        ClusteredMatcher::baseline().run_on_candidates(&problem, &repo, &candidates, &generator);
    for join in [2u32, 3, 4] {
        let clustered =
            ClusteredMatcher::clustered(ClusteringConfig::default().with_join_distance(join))
                .run_on_candidates(&problem, &repo, &candidates, &generator);
        let curve = preservation_curve(
            &clustered.mappings,
            &baseline.mappings,
            &[problem.threshold],
        );
        // Everything the clustered run produced is also found by the baseline.
        assert_eq!(
            curve[0].preserved_count, curve[0].reference_count,
            "join={join}"
        );
    }
}

#[test]
fn repository_roundtrip_through_parsing_and_statistics() {
    let repo = parsed_corpus();
    assert_eq!(repo.tree_count(), 3);
    let stats = repo.stats();
    assert_eq!(stats.tree_count, 3);
    assert!(stats.total_nodes >= 15);
    assert!(stats.distinct_names >= 12);
    // Every tree's labelling answers distance queries consistently with the tree.
    for (tid, tree) in repo.trees() {
        for a in tree.node_ids() {
            for b in tree.node_ids() {
                let via_repo = repo.distance(
                    bellflower::schema::GlobalNodeId::new(tid, a),
                    bellflower::schema::GlobalNodeId::new(tid, b),
                );
                assert_eq!(via_repo, tree.distance(a, b));
            }
        }
    }
}
