//! Smoke test for the `table1` experiment entry point: on a tiny seeded
//! workload, `run_table1` must produce the full set of variant rows with
//! plausible contents, render to a non-empty report, and be byte-for-byte
//! deterministic run-to-run. This is the cheap canary CI runs on every push;
//! `experiment_shapes.rs` checks the paper's qualitative orderings on a
//! larger workload.

use xsm_bench::experiments::{render_table1, run_table1};
use xsm_bench::{ExperimentConfig, Workload};

fn tiny_workload() -> Workload {
    Workload::build(ExperimentConfig {
        seed: 3,
        elements: 400,
        ..ExperimentConfig::smoke()
    })
}

#[test]
fn table1_smoke_has_expected_shape() {
    let result = run_table1(&tiny_workload());

    // One row per clustering variant, in the paper's order.
    let variants: Vec<&str> = result.rows.iter().map(|r| r.variant.as_str()).collect();
    assert_eq!(variants, ["small", "medium", "large", "tree"]);

    // Non-degenerate output: the workload produced mapping elements and every
    // variant explored a non-empty search space.
    assert!(!result.workload.is_empty());
    for row in &result.rows {
        assert!(
            row.search_space > 0,
            "variant {} saw an empty search space",
            row.variant
        );
    }
    // The non-clustered baseline treats whole trees as scopes, so it must see
    // at least one useful "cluster" (tree) too.
    let tree = result.rows.iter().find(|r| r.variant == "tree").unwrap();
    assert!(tree.useful_clusters > 0);
}

#[test]
fn table1_smoke_renders_a_report() {
    let result = run_table1(&tiny_workload());
    let rendered = render_table1(&result);
    assert!(rendered.contains("variant"), "missing header: {rendered}");
    for row in &result.rows {
        assert!(
            rendered.contains(&row.variant),
            "row {} missing from rendered report",
            row.variant
        );
    }
}

#[test]
fn table1_smoke_is_deterministic() {
    // The rendered report includes wall-clock columns, so determinism is
    // asserted over the algorithmic fields, not the full rendered string.
    let first = run_table1(&tiny_workload());
    let second = run_table1(&tiny_workload());
    assert_eq!(first.workload, second.workload);
    assert_eq!(first.rows.len(), second.rows.len());
    for (a, b) in first.rows.iter().zip(second.rows.iter()) {
        assert_eq!(a.variant, b.variant);
        assert_eq!(a.useful_clusters, b.useful_clusters);
        assert_eq!(a.search_space, b.search_space);
        assert_eq!(a.partial_mappings, b.partial_mappings);
        assert_eq!(a.retained_mappings, b.retained_mappings);
        assert!((a.avg_mapping_elements - b.avg_mapping_elements).abs() < 1e-12);
    }
}
