//! Wire-DTO fidelity: everything the protocol carries survives
//! serialize → deserialize → serialize bit-for-bit.
//!
//! The equivalence suites prove the *system* loses nothing over TCP; this one
//! corners the *representation*: personal-schema names drawn from the whole
//! Unicode range (astral planes, combining marks, control characters, embedded
//! quotes and backslashes — the vendored proptest only generates ASCII char
//! classes, so the Unicode is hand-rolled from `u32` seeds), scores at IEEE-754
//! edge values compared by bit pattern, empty and `top_k`-overflow responses,
//! and every [`ServiceError`] variant. Golden frames pin the handshake bytes
//! and the externally-tagged enum layout so a silent serializer change cannot
//! slip through as "both sides moved".

use proptest::prelude::*;
use xsm_matcher::{MappingElement, SchemaMapping};
use xsm_schema::{GlobalNodeId, NodeId, SchemaNode, SchemaTree, TreeBuilder, TreeId};
use xsm_service::net::proto::{decode, encode, Hello, HelloOk, WireRequest, WireResponse};
use xsm_service::{
    MatchQuery, MatchResponse, PlannedStrategy, QueryStrategy, ServiceError, PROTOCOL_VERSION,
};

/// Map an arbitrary `u32` onto a valid `char`, covering all planes: the BMP
/// below the surrogate gap, the gap folded away, and the astral planes.
fn unicode_char(seed: u32) -> char {
    let code = seed % 0x11_0000;
    char::from_u32(code).unwrap_or_else(|| {
        // Surrogate range: fold into the astral planes instead.
        char::from_u32(code - 0xD800 + 0x1_0000).unwrap()
    })
}

fn unicode_name(seeds: &[u32]) -> String {
    seeds.iter().copied().map(unicode_char).collect()
}

/// IEEE-754 edge values a score or threshold could plausibly hold. NaN and the
/// infinities are deliberately absent — they cannot cross a JSON wire and the
/// protocol rejects them as `BadRequest` (tested in the proto unit tests).
const SCORE_EDGES: [f64; 9] = [
    0.0,
    -0.0,
    f64::MIN_POSITIVE,
    5e-324, // smallest subnormal
    0.1 + 0.2,
    1.0,
    1.0 - f64::EPSILON,
    f64::MAX,
    f64::MIN,
];

fn personal_tree(name_seeds: &[Vec<u32>]) -> SchemaTree {
    let mut builder =
        TreeBuilder::new("personal").root(SchemaNode::element(unicode_name(&name_seeds[0])));
    for (i, seeds) in name_seeds[1..].iter().enumerate() {
        let name = unicode_name(seeds);
        builder = if i % 2 == 0 {
            builder.child(SchemaNode::element(name))
        } else {
            builder.sibling(SchemaNode::element(name))
        };
    }
    builder.build()
}

/// Round-trip `value` through the frame payload encoding and hand back the
/// re-encoded bytes of the round-tripped value for byte comparison.
fn reencode<T: serde::Serialize + serde::de::DeserializeOwned>(value: &T) -> (Vec<u8>, T) {
    let bytes = encode(value).expect("encodable");
    let back: T = decode(&bytes).expect("decodable");
    let bytes_again = encode(&back).expect("re-encodable");
    assert_eq!(bytes, bytes_again, "re-serialization must be a fixed point");
    (bytes, back)
}

proptest! {
    #[test]
    fn queries_with_arbitrary_unicode_names_round_trip(
        name_seeds in proptest::collection::vec(
            proptest::collection::vec(0u32..u32::MAX, 1..6),
            1..6,
        ),
        top_k in 0usize..1000,
        threshold_pick in 0usize..9,
        strategy_pick in 0usize..3,
    ) {
        let strategy = [
            QueryStrategy::Auto,
            QueryStrategy::IndexPruned,
            QueryStrategy::Exhaustive,
        ][strategy_pick];
        let mut query = MatchQuery::new(personal_tree(&name_seeds))
            .with_top_k(top_k)
            .with_strategy(strategy);
        // Bypass the clamping builder: the wire must carry whatever bits the
        // struct holds, including a threshold no builder would produce.
        query.threshold = SCORE_EDGES[threshold_pick];

        let (_, back) = reencode(&WireRequest::Query(query.clone()));
        let WireRequest::Query(back) = back else {
            panic!("variant changed across the wire");
        };
        // The fingerprint folds every name, the depth structure, top_k, the
        // strategy and the threshold bits — one equality pins them all.
        prop_assert_eq!(back.fingerprint(), query.fingerprint());
        prop_assert_eq!(back.threshold.to_bits(), query.threshold.to_bits());
    }

    #[test]
    fn responses_round_trip_with_score_edge_values(
        fingerprint_seeds in proptest::collection::vec(0u32..u32::MAX, 0..8),
        mapping_count in 0usize..4,
        pair_count in 1usize..4,
        score_pick in 0usize..9,
        similarity_pick in 0usize..9,
        candidate_count in 0usize..5000,
        total_matches in 0usize..5000,
        incomplete_pick in 0usize..2,
        strategy_pick in 0usize..2,
    ) {
        let mappings: Vec<SchemaMapping> = (0..mapping_count)
            .map(|m| {
                let pairs = (0..pair_count)
                    .map(|p| MappingElement::new(
                        NodeId(p as u32),
                        GlobalNodeId::new(TreeId(m as u32), NodeId(100 + p as u32)),
                        SCORE_EDGES[similarity_pick],
                    ))
                    .collect();
                SchemaMapping::with_score(pairs, SCORE_EDGES[score_pick])
            })
            .collect();
        let incomplete = incomplete_pick == 1;
        let response = MatchResponse {
            fingerprint: unicode_name(&fingerprint_seeds),
            strategy: [PlannedStrategy::IndexPruned, PlannedStrategy::Exhaustive][strategy_pick],
            cache_hit: false,
            mappings,
            // total_matches may exceed mappings.len() (the top-k cut) and
            // top_k may exceed total_matches (the overflow case): the wire
            // carries both without reconciling them.
            candidate_count,
            total_matches,
            incomplete,
            failed_shards: if incomplete { vec![0, 3, 17] } else { Vec::new() },
            generation: incomplete_pick as u64,
            latency: std::time::Duration::from_millis(7),
        };

        let (_, back) = reencode(&WireResponse::Response(response.clone()));
        let WireResponse::Response(back) = back else {
            panic!("variant changed across the wire");
        };
        prop_assert_eq!(back.result_digest(), response.result_digest());
        prop_assert_eq!(&back.fingerprint, &response.fingerprint);
        prop_assert_eq!(back.incomplete, response.incomplete);
        prop_assert_eq!(&back.failed_shards, &response.failed_shards);
        prop_assert_eq!(back.generation, response.generation);
        for (a, b) in back.mappings.iter().zip(&response.mappings) {
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            for (pa, pb) in a.pairs().iter().zip(pb_pairs(b)) {
                prop_assert_eq!(pa.similarity.to_bits(), pb.similarity.to_bits());
                prop_assert_eq!(pa.personal, pb.personal);
                prop_assert_eq!(pa.repo, pb.repo);
            }
        }
        // Latency is serving-local metadata and must NOT cross the wire.
        prop_assert_eq!(back.latency, std::time::Duration::ZERO);
    }

    #[test]
    fn service_errors_round_trip_with_unicode_details(
        detail_seeds in proptest::collection::vec(0u32..u32::MAX, 0..12),
        shard in 0u32..u32::MAX,
        expected in 0u32..u32::MAX,
        actual in 0u32..u32::MAX,
    ) {
        let detail = unicode_name(&detail_seeds);
        for error in [
            ServiceError::QueueFull,
            ServiceError::Timeout,
            ServiceError::ShardUnavailable { shard },
            ServiceError::ProtocolMismatch { expected, actual },
            ServiceError::bad_request(detail.clone()),
            ServiceError::transport(detail.clone()),
            ServiceError::internal(detail.clone()),
        ] {
            let (_, back) = reencode(&WireResponse::Error(error.clone()));
            let WireResponse::Error(back) = back else {
                panic!("variant changed across the wire");
            };
            prop_assert_eq!(back, error);
        }
    }
}

fn pb_pairs(mapping: &SchemaMapping) -> &[MappingElement] {
    mapping.pairs()
}

#[test]
fn empty_and_overflow_responses_round_trip() {
    // No mappings at all (threshold excluded everything)...
    let empty = MatchResponse {
        fingerprint: String::new(),
        strategy: PlannedStrategy::IndexPruned,
        cache_hit: true,
        mappings: Vec::new(),
        candidate_count: 0,
        total_matches: 0,
        incomplete: false,
        failed_shards: Vec::new(),
        generation: 0,
        latency: std::time::Duration::ZERO,
    };
    let (_, back) = reencode(&empty);
    assert_eq!(back.result_digest(), empty.result_digest());
    assert!(back.mappings.is_empty());

    // ...and a top_k far beyond the matches: the response just carries fewer
    // mappings than requested, and the wire must not invent or drop any.
    let overflow = MatchResponse {
        total_matches: 2,
        mappings: vec![SchemaMapping::with_score(
            vec![MappingElement::new(
                NodeId(0),
                GlobalNodeId::new(TreeId(0), NodeId(1)),
                0.75,
            )],
            0.75,
        )],
        ..empty
    };
    let (_, back) = reencode(&overflow);
    assert_eq!(back.mappings.len(), 1);
    assert_eq!(back.total_matches, 2);
    assert_eq!(back.result_digest(), overflow.result_digest());
}

#[test]
fn golden_frames_pin_the_wire_format() {
    // The handshake bytes, exactly. If either golden breaks, PROTOCOL_VERSION
    // must be bumped — both sides of a mixed-version fleet read these bytes.
    assert_eq!(
        encode(&Hello {
            protocol_version: PROTOCOL_VERSION
        })
        .unwrap(),
        br#"{"protocol_version":1}"#
    );
    assert_eq!(
        encode(&HelloOk {
            protocol_version: PROTOCOL_VERSION
        })
        .unwrap(),
        br#"{"protocol_version":1}"#
    );

    // Externally-tagged enum layout: unit variants are bare strings, payload
    // variants single-key maps.
    assert_eq!(encode(&WireRequest::Ping).unwrap(), br#""Ping""#);
    assert_eq!(encode(&WireRequest::Metrics).unwrap(), br#""Metrics""#);
    assert_eq!(encode(&WireResponse::Pong).unwrap(), br#""Pong""#);
    assert_eq!(
        encode(&WireResponse::Error(ServiceError::QueueFull)).unwrap(),
        br#"{"Error":"QueueFull"}"#
    );
    assert_eq!(
        encode(&WireResponse::Error(ServiceError::ProtocolMismatch {
            expected: 1,
            actual: 2
        }))
        .unwrap(),
        br#"{"Error":{"ProtocolMismatch":{"expected":1,"actual":2}}}"#
    );
    assert_eq!(
        encode(&WireResponse::Error(ServiceError::ShardUnavailable {
            shard: 3
        }))
        .unwrap(),
        br#"{"Error":{"ShardUnavailable":{"shard":3}}}"#
    );

    // And back: a frame written by this golden layout decodes to the value.
    match decode::<WireResponse>(br#"{"Error":{"BadRequest":{"reason":"nope"}}}"#).unwrap() {
        WireResponse::Error(error) => assert_eq!(error, ServiceError::bad_request("nope")),
        other => panic!("golden frame decoded to the wrong variant: {other:?}"),
    }
}
