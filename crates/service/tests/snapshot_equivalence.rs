//! The snapshot contract: an engine reconstructed from a snapshot file answers
//! every query **byte-identically** to an engine freshly built from the same
//! repository at the same generation — single-engine and sharded, across
//! strategies, placements and shard counts.
//!
//! The property suite draws seeded generator corpora, writes them to disk,
//! loads them back and compares the *entire serialized response* (the same
//! comparison `shard_equivalence.rs` uses). Deterministic tests cover the
//! startup metrics tag, generation enforcement across a shard fleet, and the
//! bootstrap config validation.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::snapshot::SnapshotError;
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository, ShardPlacement};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{
    write_shard_snapshots, EngineConfig, MatchEngine, MatchQuery, MatchResponse, QueryStrategy,
    ShardedEngine, ShardedEngineConfig, SnapshotServeError, StartupSource,
};

/// A fresh scratch directory per call, cleaned up by the returned guard.
fn scratch_dir(tag: &str) -> (PathBuf, impl Drop) {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "xsm-snapshot-eq-{}-{tag}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    (dir.clone(), Cleanup(dir))
}

fn engine_config() -> EngineConfig {
    EngineConfig::default()
        .with_workers(1)
        .with_element_config(ElementMatchConfig::default().with_min_similarity(0.5))
}

fn sharded_config(shards: usize, placement: ShardPlacement) -> ShardedEngineConfig {
    ShardedEngineConfig::default()
        .with_shards(shards)
        .with_placement(placement)
        .with_router_workers(1)
        .with_engine_config(engine_config())
}

fn assert_identical(fresh: &MatchResponse, loaded: &MatchResponse, context: &str) {
    assert_eq!(
        fresh.result_digest(),
        loaded.result_digest(),
        "digest diverged: {context}"
    );
    assert_eq!(
        serde_json::to_string(fresh).unwrap(),
        serde_json::to_string(loaded).unwrap(),
        "serialized response diverged: {context}"
    );
}

fn queries_for(repo: &SchemaRepository, top_k: usize, threshold: f64) -> Vec<MatchQuery> {
    let mut schemas = seeded_personal_schemas(repo, 2);
    let second = schemas.pop().unwrap();
    let first = schemas.pop().unwrap();
    [
        QueryStrategy::Auto,
        QueryStrategy::IndexPruned,
        QueryStrategy::Exhaustive,
    ]
    .into_iter()
    .flat_map(|strategy| {
        [first.clone(), second.clone()].into_iter().map(move |p| {
            MatchQuery::new(p)
                .with_top_k(top_k)
                .with_threshold(threshold)
                .with_strategy(strategy)
        })
    })
    .collect()
}

proptest! {
    #[test]
    fn single_engine_snapshot_answers_identically(
        seed in 1u64..5_000,
        elements in 80usize..220,
        top_k in 1usize..12,
        threshold in 0.0f64..1.0,
        generation in 0u64..u64::MAX,
    ) {
        let repo = RepositoryGenerator::new(
            GeneratorConfig::small(seed).with_target_elements(elements),
        )
        .generate();
        let fresh = MatchEngine::new(repo.clone(), engine_config());

        let (dir, _cleanup) = scratch_dir("single");
        let path = dir.join("repo.xsmsnap");
        fresh.write_snapshot(&path, generation).unwrap();
        let loaded = MatchEngine::from_snapshot_expecting(&path, engine_config(), generation)
            .unwrap();
        prop_assert_eq!(loaded.metrics().startup_source, StartupSource::SnapshotLoad);

        for query in queries_for(&repo, top_k, threshold) {
            let a = fresh.answer_inline(&query);
            let mut b = loaded.answer_inline(&query);
            b.cache_hit = a.cache_hit;
            // Serving metadata, not result content: the loaded engine stamps
            // its snapshot generation where the fresh build stamps 0.
            prop_assert_eq!(b.generation, generation);
            b.generation = a.generation;
            assert_identical(&a, &b, &format!("seed {seed}, fp {}", query.fingerprint()));
        }
    }

    #[test]
    fn sharded_snapshot_fleet_answers_identically(
        seed in 1u64..5_000,
        elements in 80usize..200,
        top_k in 1usize..10,
        threshold in 0.0f64..1.0,
        shard_pick in 0usize..4,
        placement_pick in 0usize..2,
    ) {
        let shards = [1usize, 2, 3, 8][shard_pick];
        let placement = [ShardPlacement::Contiguous, ShardPlacement::TreeHash][placement_pick];
        let repo = RepositoryGenerator::new(
            GeneratorConfig::small(seed).with_target_elements(elements),
        )
        .generate();

        let (dir, _cleanup) = scratch_dir("sharded");
        let paths = write_shard_snapshots(&repo, shards, placement, &dir, seed).unwrap();
        prop_assert_eq!(paths.len(), shards);

        let cold = ShardedEngine::new(repo.clone(), sharded_config(shards, placement));
        let warm =
            ShardedEngine::from_snapshot_paths_expecting(&paths, sharded_config(shards, placement), seed)
                .unwrap();
        for (local, engine) in warm.shard_engines().iter().enumerate() {
            prop_assert_eq!(engine.metrics().startup_source, StartupSource::SnapshotLoad);
            prop_assert_eq!(warm.shard_trees(local), cold.shard_trees(local));
        }

        for query in queries_for(&repo, top_k, threshold) {
            let a = cold.answer_inline(&query).unwrap();
            let mut b = warm.answer_inline(&query).unwrap();
            b.cache_hit = a.cache_hit;
            // Serving metadata, not result content (see the single-engine test).
            prop_assert_eq!(b.generation, seed);
            b.generation = a.generation;
            assert_identical(
                &a,
                &b,
                &format!("seed {seed}, {shards} shards, {placement:?}, fp {}", query.fingerprint()),
            );
        }
    }
}

#[test]
fn startup_metrics_distinguish_cold_build_from_snapshot_load() {
    let repo =
        RepositoryGenerator::new(GeneratorConfig::small(11).with_target_elements(120)).generate();
    let cold = MatchEngine::new(repo, engine_config());
    let m = cold.metrics();
    assert_eq!(m.startup_source, StartupSource::ColdBuild);
    assert_eq!(m.startup_source.label(), "cold_build");

    let (dir, _cleanup) = scratch_dir("metrics");
    let path = dir.join("repo.xsmsnap");
    cold.write_snapshot(&path, 1).unwrap();
    let warm = MatchEngine::from_snapshot(&path, engine_config()).unwrap();
    let m = warm.metrics();
    assert_eq!(m.startup_source, StartupSource::SnapshotLoad);
    assert_eq!(m.startup_source.label(), "snapshot_load");
    // The tag survives the wire format (it is part of EngineMetrics).
    let json = serde_json::to_string(&m).unwrap();
    let back: xsm_service::EngineMetrics = serde_json::from_str(&json).unwrap();
    assert_eq!(back.startup_source, StartupSource::SnapshotLoad);
}

#[test]
fn a_mixed_generation_fleet_is_refused() {
    let repo =
        RepositoryGenerator::new(GeneratorConfig::small(13).with_target_elements(140)).generate();
    let (dir, _cleanup) = scratch_dir("mixed");
    let gen5 = write_shard_snapshots(&repo, 2, ShardPlacement::Contiguous, &dir, 5).unwrap();
    // Overwrite shard 1 with a generation-6 copy: same repository, wrong stamp.
    let dir6 = dir.join("g6");
    std::fs::create_dir_all(&dir6).unwrap();
    let gen6 = write_shard_snapshots(&repo, 2, ShardPlacement::Contiguous, &dir6, 6).unwrap();
    let mixed = vec![gen5[0].clone(), gen6[1].clone()];

    let err =
        ShardedEngine::from_snapshot_paths(&mixed, sharded_config(2, ShardPlacement::Contiguous))
            .err()
            .expect("mixed fleet must be refused");
    match err {
        SnapshotServeError::Snapshot(SnapshotError::GenerationMismatch { expected, found }) => {
            assert_eq!(expected, 5);
            assert_eq!(found, 6);
        }
        other => panic!("mixed fleet gave {other:?}"),
    }
    // The explicit-generation variant rejects a uniform fleet of the wrong one.
    let err = ShardedEngine::from_snapshot_paths_expecting(
        &gen5,
        sharded_config(2, ShardPlacement::Contiguous),
        9,
    )
    .err()
    .expect("wrong expected generation must be refused");
    match err {
        SnapshotServeError::Snapshot(SnapshotError::GenerationMismatch { expected, .. }) => {
            assert_eq!(expected, 9)
        }
        other => panic!("wrong expected generation gave {other:?}"),
    }
}

#[test]
fn snapshot_bootstrap_validates_the_config() {
    let empty: Vec<PathBuf> = Vec::new();
    let err =
        ShardedEngine::from_snapshot_paths(&empty, sharded_config(1, ShardPlacement::Contiguous))
            .err()
            .expect("empty path list must be refused");
    assert!(matches!(err, SnapshotServeError::Config(_)), "{err:?}");
    let config = sharded_config(1, ShardPlacement::Contiguous).with_engine_config(
        engine_config().with_element_config(ElementMatchConfig::default().with_max_candidates(3)),
    );
    let paths = vec![PathBuf::from("unused.xsmsnap")];
    let err = ShardedEngine::from_snapshot_paths(&paths, config)
        .err()
        .expect("capped config must be refused before any file is read");
    assert!(matches!(err, SnapshotServeError::Config(_)), "{err:?}");
}

#[test]
fn a_damaged_shard_file_fails_the_whole_bootstrap() {
    let repo =
        RepositoryGenerator::new(GeneratorConfig::small(17).with_target_elements(120)).generate();
    let (dir, _cleanup) = scratch_dir("damaged");
    let paths = write_shard_snapshots(&repo, 2, ShardPlacement::TreeHash, &dir, 1).unwrap();
    let mut bytes = std::fs::read(&paths[1]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&paths[1], &bytes).unwrap();
    let err =
        ShardedEngine::from_snapshot_paths(&paths, sharded_config(2, ShardPlacement::TreeHash))
            .err()
            .expect("damaged shard must fail the bootstrap");
    match err {
        SnapshotServeError::Snapshot(e) => {
            assert!(
                matches!(
                    e,
                    SnapshotError::SectionChecksum { .. } | SnapshotError::FooterChecksum
                ),
                "{e:?}"
            );
        }
        other => panic!("damaged shard gave {other:?}"),
    }
}
