//! The self-healing contract: a replicated sharded fleet under chaos —
//! killed replicas, flapping transports, suspended TCP servers — answers
//! every query **byte-identically** to a single engine, with zero
//! [`xsm_service::ServiceError`]s and zero `incomplete` responses. A dead
//! replica costs failovers and breaker trips (visible in the metrics), never
//! a failed or degraded query.
//!
//! The property suite draws fleet shapes (replicas 1–3 × shards 1/2/4) and a
//! per-replica chaos schedule (healthy, killed mid-batch, call-counted
//! flapping), keeping replica 0 of every shard healthy so the self-healing
//! invariant is actually satisfiable. Deterministic tests pin the individual
//! mechanisms: failover + breaker trips under flapping, hedging past a slow
//! replica, and the background prober redialing a suspended-then-resumed
//! [`xsm_service::ShardServer`].

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::{
    GeneratorConfig, RepositoryGenerator, RepositoryPartition, SchemaRepository, ShardPlacement,
};
use xsm_service::net::FaultyTransport;
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{
    BreakerState, EngineConfig, HealthConfig, HedgeConfig, MatchEngine, MatchQuery, MatchService,
    QueryStrategy, RemoteEngine, RemoteEngineConfig, ReplicaSet, ReplicaSetConfig, ShardServer,
    ShardedEngine, ShardedEngineConfig,
};

fn engine_config() -> EngineConfig {
    EngineConfig::default()
        .with_workers(1)
        .with_element_config(ElementMatchConfig::default().with_min_similarity(0.5))
}

fn router_config(shards: usize) -> ShardedEngineConfig {
    ShardedEngineConfig::default()
        .with_shards(shards)
        .with_router_workers(2)
        .with_engine_config(engine_config())
}

/// Breakers trip on the first failure and re-admit trials immediately; the
/// hedge fires fast. Aggressive on purpose: every chaos case should walk the
/// breaker through real transitions, not merely count failures.
fn replica_config() -> ReplicaSetConfig {
    ReplicaSetConfig::default()
        .with_health(
            HealthConfig::default()
                .with_failure_threshold(1)
                .with_open_cooldown(Duration::ZERO),
        )
        .with_hedge(
            HedgeConfig::default()
                .with_initial_delay(Duration::from_millis(10))
                .with_percentile(0.99),
        )
        // No prober thread: the tests drive probing explicitly (probe_now)
        // or, in the TCP test, configure a real interval.
        .with_probe_interval(None)
}

fn repo() -> SchemaRepository {
    RepositoryGenerator::new(GeneratorConfig::small(41).with_target_elements(200)).generate()
}

fn queries(repo: &SchemaRepository, n: usize) -> Vec<MatchQuery> {
    seeded_personal_schemas(repo, n)
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let strategy = if i % 2 == 0 {
                QueryStrategy::Auto
            } else {
                QueryStrategy::Exhaustive
            };
            MatchQuery::new(p)
                .with_top_k(5)
                .with_threshold(0.5)
                .with_strategy(strategy)
        })
        .collect()
}

/// The single-engine reference answers, computed once for the whole suite.
fn reference_digests() -> &'static Vec<String> {
    static REFERENCE: std::sync::OnceLock<Vec<String>> = std::sync::OnceLock::new();
    REFERENCE.get_or_init(|| {
        let repo = repo();
        let single = MatchEngine::new(repo.clone(), engine_config());
        queries(&repo, QUERY_COUNT)
            .iter()
            .map(|q| single.answer_inline(q).result_digest())
            .collect()
    })
}

const QUERY_COUNT: usize = 6;

/// One replica's chaos assignment for a case.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Chaos {
    Healthy,
    /// Kill switch flipped on right after the batch is submitted, off again
    /// after the batch completes.
    KilledMidBatch,
    /// Deterministic fail-K/succeed-M cycle from the start.
    Flapping(u64, u64),
}

fn chaos_for(seed: u64, shard: usize, replica: usize) -> Chaos {
    // Replica 0 stays healthy: the zero-failure invariant needs one live
    // replica per shard at all times.
    if replica == 0 {
        return Chaos::Healthy;
    }
    let mut h = seed ^ ((shard as u64) << 32) ^ (replica as u64);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    match h % 3 {
        0 => Chaos::Healthy,
        1 => Chaos::KilledMidBatch,
        _ => Chaos::Flapping(1 + h % 2, 1 + (h >> 8) % 2),
    }
}

proptest! {
    /// Replicated sharded fleets under drawn kill/flap schedules: byte-identical
    /// to the single engine, `incomplete == false` and zero errors throughout.
    #[test]
    fn chaotic_replicated_fleet_serves_like_a_single_engine(
        replicas in 1usize..4,
        shard_pick in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let shards = [1usize, 2, 4][shard_pick];
        let repo = repo();
        let reference = reference_digests();
        let partition = RepositoryPartition::build(&repo, shards, ShardPlacement::Contiguous);
        let (parts, tree_maps) = partition.into_parts();

        let mut kill_switches = Vec::new();
        let mut replica_sets = Vec::new();
        let mut services: Vec<Box<dyn MatchService>> = Vec::new();
        for (shard, part) in parts.into_iter().enumerate() {
            let mut backends: Vec<Box<dyn MatchService>> = Vec::new();
            for replica in 0..replicas {
                let engine = MatchEngine::new(part.clone(), engine_config());
                let transport = Arc::new(FaultyTransport::new(Box::new(engine)));
                match chaos_for(seed, shard, replica) {
                    Chaos::Healthy => {}
                    Chaos::KilledMidBatch => kill_switches.push(transport.kill_switch()),
                    Chaos::Flapping(fail, succeed) => transport.set_flapping(fail, succeed),
                }
                backends.push(Box::new(Arc::clone(&transport)));
            }
            let set = Arc::new(ReplicaSet::new(backends, replica_config()).unwrap());
            services.push(Box::new(Arc::clone(&set)));
            replica_sets.push(set);
        }
        let fleet =
            ShardedEngine::from_services(services, tree_maps, router_config(shards)).unwrap();

        let qs = queries(&repo, QUERY_COUNT);

        // Phase 1: flapping already active — every answer complete and exact.
        for (i, query) in qs.iter().take(QUERY_COUNT / 2).enumerate() {
            let response = fleet.answer_inline(query).unwrap();
            prop_assert!(!response.incomplete, "phase 1 query {i} degraded");
            prop_assert!(response.failed_shards.is_empty());
            prop_assert_eq!(&response.result_digest(), &reference[i]);
        }

        // Phase 2: kill the scheduled replicas *while* a batch is in flight.
        let pending: Vec<_> = qs
            .iter()
            .map(|q| fleet.submit(q.clone()).unwrap())
            .collect();
        for switch in &kill_switches {
            switch.store(true, Ordering::SeqCst);
        }
        for (i, handle) in pending.into_iter().enumerate() {
            let response = handle.wait().unwrap();
            prop_assert!(!response.incomplete, "mid-kill query {i} degraded");
            prop_assert!(response.failed_shards.is_empty());
            prop_assert_eq!(&response.result_digest(), &reference[i]);
        }

        // Phase 3: revive and probe — the sets fold dead replicas back in.
        for switch in &kill_switches {
            switch.store(false, Ordering::SeqCst);
        }
        for set in &replica_sets {
            set.probe_now();
        }
        for (i, query) in qs.iter().enumerate() {
            let response = fleet.answer_inline(query).unwrap();
            prop_assert!(!response.incomplete, "post-heal query {i} degraded");
            prop_assert_eq!(&response.result_digest(), &reference[i]);
            prop_assert_eq!(response.generation, 0);
        }
    }
}

#[test]
fn killed_replica_costs_failovers_and_breaker_trips_never_queries() {
    let repo = repo();
    let single = MatchEngine::new(repo.clone(), engine_config());
    let qs = queries(&repo, 4);

    let doomed = Arc::new(FaultyTransport::new(Box::new(MatchEngine::new(
        repo.clone(),
        engine_config(),
    ))));
    let healthy = MatchEngine::new(repo.clone(), engine_config());
    let set = ReplicaSet::new(
        vec![Box::new(Arc::clone(&doomed)), Box::new(healthy)],
        replica_config(),
    )
    .unwrap();
    assert_eq!(set.replica_count(), 2);

    doomed.kill_switch().store(true, Ordering::SeqCst);
    for query in &qs {
        let response = set.submit(query.clone()).unwrap().wait().unwrap();
        assert_eq!(
            response.result_digest(),
            single.answer_inline(query).result_digest(),
            "failover answer must be the answer"
        );
    }
    let metrics = set.metrics_snapshot().unwrap();
    assert_eq!(metrics.failed_queries, 0, "a dead replica fails no queries");
    assert_eq!(metrics.queries_served, qs.len() as u64);
    assert!(metrics.failovers >= 1, "the dead replica forced failovers");
    assert!(metrics.breaker_opens >= 1, "its breaker tripped");
    assert!(
        set.breaker_states().contains(&BreakerState::Open),
        "the dead replica's breaker stays open while it is down"
    );

    // Revive + probe: the breaker closes through the redial path and the
    // redial is counted.
    doomed.kill_switch().store(false, Ordering::SeqCst);
    set.probe_now();
    assert!(
        set.breaker_states()
            .iter()
            .all(|s| *s == BreakerState::Closed),
        "probe must close the healed breaker"
    );
    assert_eq!(set.metrics_snapshot().unwrap().probe_redials, 1);
}

#[test]
fn flapping_replica_walks_the_breaker_without_failing_queries() {
    let repo = repo();
    let single = MatchEngine::new(repo.clone(), engine_config());
    let qs = queries(&repo, 6);

    let flappy = Arc::new(FaultyTransport::new(Box::new(MatchEngine::new(
        repo.clone(),
        engine_config(),
    ))));
    flappy.set_flapping(2, 1);
    let set = ReplicaSet::new(
        vec![
            Box::new(Arc::clone(&flappy)) as Box<dyn MatchService>,
            Box::new(MatchEngine::new(repo.clone(), engine_config())),
        ],
        replica_config(),
    )
    .unwrap();

    for query in &qs {
        let response = set.submit(query.clone()).unwrap().wait().unwrap();
        assert_eq!(
            response.result_digest(),
            single.answer_inline(query).result_digest()
        );
    }
    let metrics = set.metrics_snapshot().unwrap();
    assert_eq!(metrics.failed_queries, 0);
    assert_eq!(metrics.queries_served, qs.len() as u64);
    assert!(
        metrics.failovers + metrics.breaker_opens >= 1,
        "a fail-2/succeed-1 flap schedule must trip something"
    );
}

#[test]
fn hedging_races_past_a_slow_replica() {
    let repo = repo();
    let single = MatchEngine::new(repo.clone(), engine_config());
    let qs = queries(&repo, 6);

    let slow = Arc::new(FaultyTransport::new(Box::new(MatchEngine::new(
        repo.clone(),
        engine_config(),
    ))));
    slow.set_slowdown(Some(Duration::from_millis(150)));
    let set = ReplicaSet::new(
        vec![
            Box::new(Arc::clone(&slow)) as Box<dyn MatchService>,
            Box::new(MatchEngine::new(repo.clone(), engine_config())),
        ],
        ReplicaSetConfig::default()
            .with_hedge(
                HedgeConfig::default()
                    .with_initial_delay(Duration::from_millis(10))
                    .with_percentile(0.99),
            )
            .with_probe_interval(None),
    )
    .unwrap();

    let started = Instant::now();
    for query in &qs {
        let response = set.submit(query.clone()).unwrap().wait().unwrap();
        assert_eq!(
            response.result_digest(),
            single.answer_inline(query).result_digest()
        );
    }
    let elapsed = started.elapsed();
    let metrics = set.metrics_snapshot().unwrap();
    assert_eq!(metrics.failed_queries, 0);
    assert!(
        metrics.hedged_queries >= 1,
        "the slow primary must trigger hedges (elapsed {elapsed:?})"
    );
    assert!(
        metrics.hedge_wins >= 1,
        "a 150ms-slow primary loses the race to a 10ms hedge"
    );
    assert!(metrics.hedge_wins <= metrics.hedged_queries);
}

#[test]
fn suspended_tcp_replica_heals_through_the_background_prober() {
    let repo = repo();
    let single = MatchEngine::new(repo.clone(), engine_config());
    let partition = RepositoryPartition::build(&repo, 2, ShardPlacement::Contiguous);
    let (parts, tree_maps) = partition.into_parts();

    let client_config = RemoteEngineConfig::default()
        .with_connect_timeout(Duration::from_millis(300))
        .with_io_timeout(Duration::from_millis(500))
        .with_request_deadline(Duration::from_secs(2))
        .with_retries(1)
        .with_backoff(Duration::from_millis(5));

    // 2 shards × 2 replicas, each replica a real ShardServer + RemoteEngine.
    let mut servers = Vec::new();
    let mut replica_sets = Vec::new();
    let mut services: Vec<Box<dyn MatchService>> = Vec::new();
    for part in parts {
        let mut backends: Vec<Box<dyn MatchService>> = Vec::new();
        for _ in 0..2 {
            let engine: Arc<dyn MatchService> =
                Arc::new(MatchEngine::new(part.clone(), engine_config()));
            let server = ShardServer::bind("127.0.0.1:0", engine).unwrap();
            let client =
                RemoteEngine::connect(server.local_addr().to_string(), client_config.clone())
                    .unwrap();
            backends.push(Box::new(client));
            servers.push(server);
        }
        let set = Arc::new(
            ReplicaSet::new(
                backends,
                replica_config().with_probe_interval(Some(Duration::from_millis(25))),
            )
            .unwrap(),
        );
        services.push(Box::new(Arc::clone(&set)));
        replica_sets.push(set);
    }
    let fleet = ShardedEngine::from_services(services, tree_maps, router_config(2)).unwrap();
    let qs = queries(&repo, 4);

    // Crash shard 0's replica 0 mid-fleet (port stays bound — the realistic
    // wedge). Every query still completes, byte-identical.
    servers[0].suspend();
    for query in &qs {
        let response = fleet.answer_inline(query).unwrap();
        assert!(!response.incomplete, "a replicated shard never degrades");
        assert!(response.failed_shards.is_empty());
        assert_eq!(
            response.result_digest(),
            single.answer_inline(query).result_digest()
        );
    }
    let tripped = replica_sets[0].metrics_snapshot().unwrap();
    assert_eq!(tripped.failed_queries, 0);
    assert!(tripped.failovers >= 1 || tripped.hedged_queries >= 1);

    // Resume the server: the *background* prober must redial and close the
    // breaker with no traffic at all. Bounded wait, generous margin.
    servers[0].resume();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let healed = replica_sets[0]
            .breaker_states()
            .iter()
            .all(|s| *s == BreakerState::Closed);
        if healed {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "prober did not redial the resumed server within 5s \
             (states: {:?})",
            replica_sets[0].breaker_states()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(replica_sets[0].metrics_snapshot().unwrap().probe_redials >= 1);

    // And the healed fleet still serves exactly.
    let response = fleet.answer_inline(&qs[0]).unwrap();
    assert!(!response.incomplete);
    assert_eq!(
        response.result_digest(),
        single.answer_inline(&qs[0]).result_digest()
    );
}

#[test]
fn replica_set_rejects_an_empty_backend_list() {
    assert!(ReplicaSet::new(Vec::new(), ReplicaSetConfig::default()).is_err());
}
