//! Degraded-mode serving under injected and real transport faults.
//!
//! The router's partial-failure policy has three clauses, and each gets pinned
//! here: a failed shard **degrades** the response (flagged `incomplete`, the
//! missing shards listed) rather than failing the query; a degraded answer is
//! exactly the surviving shards' merged top-k — proven by comparing against a
//! router built over only the survivors — and is never cached, so recovered
//! shards rejoin on the very next submission; and a *slow* shard is not a
//! failed shard. On the real-TCP side, a suspended server (crash simulation
//! that keeps the port) degrades the fleet and a resume heals it through the
//! client's redial path. Protocol abuse — version skew, garbage frames,
//! oversized headers — gets structured refusals, never hangs or panics.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::{
    GeneratorConfig, RepositoryGenerator, RepositoryPartition, SchemaRepository, ShardPlacement,
};
use xsm_schema::TreeId;
use xsm_service::net::frame::{read_frame, write_frame, MAX_FRAME_LEN};
use xsm_service::net::proto::{decode, encode, Hello, HelloOk, WireResponse};
use xsm_service::net::{Fault, FaultyTransport};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{
    EngineConfig, MatchEngine, MatchQuery, MatchService, QueryStrategy, RemoteEngine,
    RemoteEngineConfig, ServiceError, ShardServer, ShardedEngine, ShardedEngineConfig,
    PROTOCOL_VERSION,
};

fn engine_config() -> EngineConfig {
    EngineConfig::builder()
        .workers(1)
        .element(ElementMatchConfig::default().with_min_similarity(0.5))
        .build()
        .unwrap()
}

fn router_config(shards: usize) -> ShardedEngineConfig {
    ShardedEngineConfig::builder()
        .shards(shards)
        .router_workers(4)
        .engine(engine_config())
        .build()
        .unwrap()
}

fn repo() -> SchemaRepository {
    RepositoryGenerator::new(GeneratorConfig::small(29).with_target_elements(240)).generate()
}

/// Shard engines (shared via `Arc` so several routers can serve the same
/// backends) plus their global tree maps.
fn shard_backends(
    repo: &SchemaRepository,
    shards: usize,
) -> (Vec<Arc<MatchEngine>>, Vec<Vec<TreeId>>) {
    let partition = RepositoryPartition::build(repo, shards, ShardPlacement::Contiguous);
    let (parts, tree_maps) = partition.into_parts();
    let engines = parts
        .into_iter()
        .map(|p| Arc::new(MatchEngine::new(p, engine_config())))
        .collect();
    (engines, tree_maps)
}

fn queries(repo: &SchemaRepository, n: usize, strategy: QueryStrategy) -> Vec<MatchQuery> {
    seeded_personal_schemas(repo, n)
        .into_iter()
        .map(|p| {
            MatchQuery::new(p)
                .with_top_k(5)
                .with_threshold(0.5)
                .with_strategy(strategy)
        })
        .collect()
}

#[test]
fn never_answering_shard_degrades_to_the_exact_survivor_merge() {
    let repo = repo();
    let (engines, tree_maps) = shard_backends(&repo, 3);

    // The survivors-only reference: the same backends minus shard 1, with the
    // same global tree maps — so its answers are, by definition, "exactly the
    // surviving shards' merged top-k".
    let survivors = ShardedEngine::from_services(
        vec![
            Box::new(Arc::clone(&engines[0])) as Box<dyn MatchService>,
            Box::new(Arc::clone(&engines[2])),
        ],
        vec![tree_maps[0].clone(), tree_maps[2].clone()],
        router_config(2),
    )
    .unwrap();

    let faulty = FaultyTransport::new(Box::new(Arc::clone(&engines[1])));
    let dead = faulty.kill_switch();
    dead.store(true, std::sync::atomic::Ordering::SeqCst);
    let fleet = ShardedEngine::from_services(
        vec![
            Box::new(Arc::clone(&engines[0])) as Box<dyn MatchService>,
            Box::new(faulty),
            Box::new(Arc::clone(&engines[2])),
        ],
        tree_maps,
        router_config(3),
    )
    .unwrap();

    // Auto exercises the stats-stage exclusion, Exhaustive the scatter-stage.
    for strategy in [QueryStrategy::Auto, QueryStrategy::Exhaustive] {
        for query in queries(&repo, 3, strategy) {
            let expected = survivors.answer_inline(&query).unwrap();
            let degraded = fleet.answer_inline(&query).unwrap();
            assert!(degraded.incomplete, "missing shard must flag the response");
            assert_eq!(degraded.failed_shards, vec![1], "exactly shard 1 failed");
            assert_eq!(
                degraded.result_digest(),
                expected.result_digest(),
                "degraded answer must be exactly the survivors' merge ({strategy:?})"
            );
            // Deterministic: a repeat degrades identically (and was not cached).
            let again = fleet.answer_inline(&query).unwrap();
            assert!(again.incomplete && !again.cache_hit);
            assert_eq!(again.result_digest(), degraded.result_digest());
        }
        assert_eq!(
            fleet.result_cache_len(),
            0,
            "degraded responses never cache"
        );
    }
    let m = fleet.metrics();
    assert_eq!(m.router.degraded_responses, m.router.queries_served);
    assert_eq!(m.router.failed_queries, 0);

    // Recovery: flip the kill switch off and the shard rejoins immediately —
    // no cached degraded answer can shadow it.
    dead.store(false, std::sync::atomic::Ordering::SeqCst);
    let healed = fleet
        .answer_inline(&queries(&repo, 1, QueryStrategy::Auto)[0])
        .unwrap();
    assert!(!healed.incomplete && healed.failed_shards.is_empty());
    assert_eq!(fleet.result_cache_len(), 1, "complete answers cache again");
}

#[test]
fn scripted_submit_and_wait_failures_are_transient() {
    let repo = repo();
    let (engines, tree_maps) = shard_backends(&repo, 2);
    let clean = ShardedEngine::from_services(
        engines
            .iter()
            .map(|e| Box::new(Arc::clone(e)) as Box<dyn MatchService>)
            .collect(),
        tree_maps.clone(),
        router_config(2),
    )
    .unwrap();

    let faulty = FaultyTransport::new(Box::new(Arc::clone(&engines[1]))).with_script([
        Fault::FailSubmit(ServiceError::transport("injected: send failed")),
        Fault::FailWait(ServiceError::Timeout),
    ]);
    let fleet = ShardedEngine::from_services(
        vec![
            Box::new(Arc::clone(&engines[0])) as Box<dyn MatchService>,
            Box::new(faulty),
        ],
        tree_maps,
        router_config(2),
    )
    .unwrap();

    let qs = queries(&repo, 3, QueryStrategy::Exhaustive);
    // First fault: rejected at the submit stage.
    let r0 = fleet.answer_inline(&qs[0]).unwrap();
    assert!(r0.incomplete);
    assert_eq!(r0.failed_shards, vec![1]);
    // Second fault: accepted, but the reply is lost in flight.
    let r1 = fleet.answer_inline(&qs[1]).unwrap();
    assert!(r1.incomplete);
    assert_eq!(r1.failed_shards, vec![1]);
    // Script drained: the shard serves again, byte-identically to a clean fleet.
    let r2 = fleet.answer_inline(&qs[2]).unwrap();
    assert!(!r2.incomplete);
    assert_eq!(
        r2.result_digest(),
        clean.answer_inline(&qs[2]).unwrap().result_digest()
    );
}

#[test]
fn a_slow_shard_is_not_a_failed_shard() {
    let repo = repo();
    let (engines, tree_maps) = shard_backends(&repo, 2);
    let clean = ShardedEngine::from_services(
        engines
            .iter()
            .map(|e| Box::new(Arc::clone(e)) as Box<dyn MatchService>)
            .collect(),
        tree_maps.clone(),
        router_config(2),
    )
    .unwrap();
    let slow = FaultyTransport::new(Box::new(Arc::clone(&engines[0])))
        .with_script([Fault::Delay(Duration::from_millis(120))]);
    let fleet = ShardedEngine::from_services(
        vec![
            Box::new(slow) as Box<dyn MatchService>,
            Box::new(Arc::clone(&engines[1])),
        ],
        tree_maps,
        router_config(2),
    )
    .unwrap();
    let query = queries(&repo, 1, QueryStrategy::Exhaustive).pop().unwrap();
    let response = fleet.answer_inline(&query).unwrap();
    assert!(!response.incomplete, "slow must not mean failed");
    assert_eq!(
        response.result_digest(),
        clean.answer_inline(&query).unwrap().result_digest()
    );
}

#[test]
fn coalesced_degraded_queries_share_the_leaders_fate_with_exact_accounting() {
    let repo = repo();
    let (engines, tree_maps) = shard_backends(&repo, 2);
    let faulty = FaultyTransport::new(Box::new(Arc::clone(&engines[1])));
    faulty
        .kill_switch()
        .store(true, std::sync::atomic::Ordering::SeqCst);
    let fleet = ShardedEngine::from_services(
        vec![
            Box::new(Arc::clone(&engines[0])) as Box<dyn MatchService>,
            Box::new(faulty),
        ],
        tree_maps,
        router_config(2),
    )
    .unwrap();

    let query = queries(&repo, 1, QueryStrategy::Exhaustive).pop().unwrap();
    let responses = fleet.submit_batch(vec![query; 8]).unwrap();
    let digest = responses[0].result_digest();
    for response in &responses {
        assert!(
            response.incomplete,
            "every duplicate shares the degradation"
        );
        assert_eq!(response.failed_shards, vec![1]);
        assert_eq!(response.result_digest(), digest);
    }
    let m = fleet.metrics().router;
    // Exact accounting: every response was served and flagged; none came from
    // the cache (degraded answers never cache), so every query either ran a
    // scatter or coalesced onto one — nothing double-counted, nothing lost.
    assert_eq!(m.queries_served, 8);
    assert_eq!(m.degraded_responses, 8);
    assert_eq!(m.result_cache_hits, 0);
    assert_eq!(m.failed_queries, 0);
    assert_eq!(
        m.index_pruned_queries + m.exhaustive_queries + m.coalesced_queries,
        8,
        "scatters + coalesces must cover the whole batch exactly"
    );
    assert_eq!(fleet.result_cache_len(), 0);
}

/// Client config tuned for fast failure detection in tests: one retry, short
/// backoff, and a deadline far below the suite timeout.
fn fast_client() -> RemoteEngineConfig {
    RemoteEngineConfig::default()
        .with_connect_timeout(Duration::from_millis(500))
        .with_io_timeout(Duration::from_millis(500))
        .with_request_deadline(Duration::from_secs(3))
        .with_retries(1)
        .with_backoff(Duration::from_millis(10))
}

#[test]
fn suspended_tcp_shard_degrades_and_resume_heals_through_redial() {
    let repo = repo();
    let (engines, tree_maps) = shard_backends(&repo, 2);
    let single_reference = ShardedEngine::from_services(
        engines
            .iter()
            .map(|e| Box::new(Arc::clone(e)) as Box<dyn MatchService>)
            .collect(),
        tree_maps.clone(),
        router_config(2),
    )
    .unwrap();

    let mut servers = Vec::new();
    let mut services: Vec<Box<dyn MatchService>> = Vec::new();
    for engine in &engines {
        let backend: Arc<dyn MatchService> = Arc::new(Arc::clone(engine));
        let server = ShardServer::bind("127.0.0.1:0", backend).unwrap();
        let client = RemoteEngine::connect(server.local_addr().to_string(), fast_client()).unwrap();
        services.push(Box::new(client));
        servers.push(server);
    }
    let fleet = ShardedEngine::from_services(services, tree_maps, router_config(2)).unwrap();
    let qs = queries(&repo, 3, QueryStrategy::Auto);

    // Healthy: byte-identical to the in-process fleet.
    let healthy = fleet.answer_inline(&qs[0]).unwrap();
    assert!(!healthy.incomplete);
    assert_eq!(
        healthy.result_digest(),
        single_reference
            .answer_inline(&qs[0])
            .unwrap()
            .result_digest()
    );

    // Crash shard 1 (port stays bound): the fleet degrades around it after the
    // client's retries run dry.
    servers[1].suspend();
    let degraded = fleet.answer_inline(&qs[1]).unwrap();
    assert!(degraded.incomplete);
    assert_eq!(degraded.failed_shards, vec![1]);
    assert_eq!(
        degraded.result_digest(),
        // Survivors-only reference: shard 0 alone.
        ShardedEngine::from_services(
            vec![Box::new(Arc::clone(&engines[0])) as Box<dyn MatchService>],
            vec![fleet.shard_trees(0).to_vec()],
            router_config(1),
        )
        .unwrap()
        .answer_inline(&qs[1])
        .unwrap()
        .result_digest()
    );

    // Restart: the client redials on its next call and the shard rejoins. The
    // degraded answer was never cached, so even the *same* fingerprint heals.
    servers[1].resume();
    let healed = fleet.answer_inline(&qs[1]).unwrap();
    assert!(!healed.incomplete, "resume must heal the same fingerprint");
    assert_eq!(
        healed.result_digest(),
        single_reference
            .answer_inline(&qs[1])
            .unwrap()
            .result_digest()
    );
    let fresh = fleet.answer_inline(&qs[2]).unwrap();
    assert!(!fresh.incomplete);
}

#[test]
fn version_skew_and_garbage_get_structured_refusals() {
    let repo = repo();
    let engine: Arc<dyn MatchService> = Arc::new(MatchEngine::new(repo, engine_config()));
    let server = ShardServer::bind("127.0.0.1:0", engine).unwrap();
    let addr = server.local_addr();

    // A client from the future: the server refuses with ProtocolMismatch.
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        &encode(&Hello {
            protocol_version: 99,
        })
        .unwrap(),
    )
    .unwrap();
    let reply: WireResponse = decode(&read_frame(&mut stream).unwrap()).unwrap();
    assert!(matches!(
        reply,
        WireResponse::Error(ServiceError::ProtocolMismatch {
            expected: PROTOCOL_VERSION,
            actual: 99
        })
    ));
    // ...and closes the connection.
    assert!(read_frame(&mut stream).is_err());

    // Garbage instead of a handshake: BadRequest, then close.
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(&mut stream, b"\xff\xfenot a handshake").unwrap();
    let reply: WireResponse = decode(&read_frame(&mut stream).unwrap()).unwrap();
    assert!(matches!(
        reply,
        WireResponse::Error(ServiceError::BadRequest { .. })
    ));
    assert!(read_frame(&mut stream).is_err());

    // Garbage after a valid handshake: same structured refusal.
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        &encode(&Hello {
            protocol_version: PROTOCOL_VERSION,
        })
        .unwrap(),
    )
    .unwrap();
    let ok: HelloOk = decode(&read_frame(&mut stream).unwrap()).unwrap();
    assert_eq!(ok.protocol_version, PROTOCOL_VERSION);
    write_frame(&mut stream, b"{\"NotARequest\":[]}").unwrap();
    let reply: WireResponse = decode(&read_frame(&mut stream).unwrap()).unwrap();
    assert!(matches!(
        reply,
        WireResponse::Error(ServiceError::BadRequest { .. })
    ));
    assert!(read_frame(&mut stream).is_err());

    // An oversized frame header: the server drops the connection without
    // reading (or allocating) the claimed payload.
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        &encode(&Hello {
            protocol_version: PROTOCOL_VERSION,
        })
        .unwrap(),
    )
    .unwrap();
    let _: HelloOk = decode(&read_frame(&mut stream).unwrap()).unwrap();
    use std::io::Write;
    stream
        .write_all(&((MAX_FRAME_LEN as u32) + 1).to_be_bytes())
        .unwrap();
    stream.flush().unwrap();
    assert!(read_frame(&mut stream).is_err(), "server must hang up");
}

#[test]
fn client_refuses_a_version_skewed_server() {
    // A fake server that answers every handshake with a future version.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        if let Ok((mut stream, _)) = listener.accept() {
            let _ = read_frame(&mut stream);
            let _ = write_frame(
                &mut stream,
                &encode(&HelloOk {
                    protocol_version: 2,
                })
                .unwrap(),
            );
        }
    });
    let err = RemoteEngine::connect(addr.to_string(), fast_client()).unwrap_err();
    assert_eq!(
        err,
        ServiceError::ProtocolMismatch {
            expected: PROTOCOL_VERSION,
            actual: 2
        }
    );
    fake.join().unwrap();
}

#[test]
fn a_server_can_front_a_whole_sharded_engine() {
    // Router-of-routers: the MatchService seam composes — a ShardedEngine is
    // itself servable, and a remote client sees the same answers.
    let repo = repo();
    let single = MatchEngine::new(repo.clone(), engine_config());
    let sharded: Arc<dyn MatchService> = Arc::new(ShardedEngine::new(
        repo.clone(),
        router_config(2).with_shards(2),
    ));
    let server = ShardServer::bind("127.0.0.1:0", sharded).unwrap();
    let client = RemoteEngine::connect(server.local_addr().to_string(), fast_client()).unwrap();
    client.ping().unwrap();
    let query = queries(&repo, 1, QueryStrategy::Auto).pop().unwrap();
    let over_wire = client.submit(query.clone()).unwrap().wait().unwrap();
    assert_eq!(
        over_wire.result_digest(),
        single.answer_inline(&query).result_digest()
    );
    let metrics = client.metrics_snapshot().unwrap();
    assert_eq!(metrics.queries_served, 1);

    // The WireRequest::Query round trip also lost nothing to the wire: ask the
    // same engine twice and the second answer is the cached first.
    let again = client.submit(query).unwrap().wait().unwrap();
    assert!(again.cache_hit);
    assert_eq!(again.result_digest(), over_wire.result_digest());
}
