//! Concurrency contract of the [`ShardedEngine`] router: batches preserve input
//! order, duplicate in-flight queries coalesce onto **one** scatter (counted by
//! `coalesced_queries`), and neither worker count nor coalescing changes content.

use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{EngineConfig, MatchQuery, QueryStrategy, ShardedEngine, ShardedEngineConfig};

fn repository() -> SchemaRepository {
    RepositoryGenerator::new(GeneratorConfig::small(29).with_target_elements(500)).generate()
}

fn config(shards: usize, router_workers: usize) -> ShardedEngineConfig {
    ShardedEngineConfig::default()
        .with_shards(shards)
        .with_router_workers(router_workers)
        .with_router_queue_capacity(4) // smaller than the batches: backpressure
        .with_engine_config(
            EngineConfig::default()
                .with_workers(2)
                .with_element_config(ElementMatchConfig::default().with_min_similarity(0.5)),
        )
}

fn query_batch(repo: &SchemaRepository, n: usize) -> Vec<MatchQuery> {
    seeded_personal_schemas(repo, n)
        .into_iter()
        .enumerate()
        .map(|(i, personal)| {
            let strategy = match i % 3 {
                0 => QueryStrategy::Auto,
                1 => QueryStrategy::IndexPruned,
                _ => QueryStrategy::Exhaustive,
            };
            MatchQuery::new(personal)
                .with_top_k(1 + i % 5)
                .with_threshold(0.55)
                .with_strategy(strategy)
        })
        .collect()
}

#[test]
fn batches_preserve_order_and_router_worker_count_is_invisible() {
    let repo = repository();
    let batch = query_batch(&repo, 40);
    let one = ShardedEngine::new(repo.clone(), config(3, 1));
    let many = ShardedEngine::new(repo, config(3, 4));
    let a = one.submit_batch(batch.clone()).unwrap();
    let b = many.submit_batch(batch.clone()).unwrap();
    assert_eq!(a.len(), batch.len());
    for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(ra.fingerprint, batch[i].fingerprint(), "order broke at {i}");
        assert_eq!(rb.fingerprint, batch[i].fingerprint(), "order broke at {i}");
        assert_eq!(
            ra.result_digest(),
            rb.result_digest(),
            "query {i} diverged between 1 and 4 router workers"
        );
    }
    assert_eq!(one.metrics().router.queries_served, batch.len() as u64);
    assert_eq!(many.metrics().router.queries_served, batch.len() as u64);
}

#[test]
fn duplicate_in_flight_queries_coalesce_exactly_once() {
    // 12 copies of one query against 4 router workers: exactly one scatter runs;
    // every other copy is served by the router's result cache or coalesces onto
    // the leader's in-flight merge. The split between the two depends on timing,
    // the accounting invariant does not.
    let repo = repository();
    let sharded = ShardedEngine::new(repo.clone(), config(3, 4));
    let query = MatchQuery::new(seeded_personal_schemas(&repo, 1).swap_remove(0))
        .with_top_k(4)
        .with_threshold(0.55)
        .with_strategy(QueryStrategy::Exhaustive);
    let responses = sharded.submit_batch(vec![query; 12]).unwrap();

    let digest = responses[0].result_digest();
    for r in &responses {
        assert_eq!(r.result_digest(), digest, "duplicates must not diverge");
    }
    let m = sharded.metrics();
    assert_eq!(m.router.queries_served, 12);
    assert_eq!(
        m.router.exhaustive_queries + m.router.index_pruned_queries,
        1,
        "one scatter for 12 identical queries"
    );
    assert_eq!(m.router.result_cache_hits + m.router.coalesced_queries, 11);
    // The single scatter reached every shard exactly once.
    for (i, shard) in m.per_shard.iter().enumerate() {
        assert_eq!(shard.queries_served, 1, "shard {i} saw a duplicate scatter");
    }
}

#[test]
fn mixed_duplicates_account_consistently() {
    let repo = repository();
    let sharded = ShardedEngine::new(repo.clone(), config(2, 4));
    let base = query_batch(&repo, 6);
    // Each distinct query three times, interleaved.
    let mut batch = Vec::new();
    for _ in 0..3 {
        batch.extend(base.clone());
    }
    let responses = sharded.submit_batch(batch.clone()).unwrap();
    for (query, response) in batch.iter().zip(&responses) {
        assert_eq!(response.fingerprint, query.fingerprint());
    }
    let m = sharded.metrics().router;
    assert_eq!(m.queries_served, 18);
    // 6 distinct fingerprints → exactly 6 scatters, 12 hits/coalesces.
    assert_eq!(m.exhaustive_queries + m.index_pruned_queries, 6);
    assert_eq!(m.result_cache_hits + m.coalesced_queries, 12);
    // Every shard saw each distinct query exactly once.
    for shard in sharded.metrics().per_shard {
        assert_eq!(shard.queries_served, 6);
    }
}
