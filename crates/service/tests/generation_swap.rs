//! The zero-downtime swap contract: flipping a snapshot-served fleet to a new
//! repository generation under concurrent traffic never errors a query, never
//! returns a mixed-generation response, and leaves the fleet serving the new
//! generation exactly. Refusals fail closed: a mixed-generation snapshot set,
//! a wrong shard count, a moved tree placement or a fixed (non-swappable)
//! fleet all leave the old generation serving untouched.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::snapshot::SnapshotError;
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository, ShardPlacement};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{
    write_shard_snapshots, EngineConfig, MatchEngine, MatchQuery, MatchService, QueryStrategy,
    ShardedEngine, ShardedEngineConfig, SnapshotServeError, SwappableEngine,
};

/// A fresh scratch directory per call, cleaned up by the returned guard.
fn scratch_dir(tag: &str) -> (PathBuf, impl Drop) {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "xsm-genswap-{}-{tag}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir creates");
    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    (dir.clone(), Cleanup(dir))
}

fn engine_config() -> EngineConfig {
    EngineConfig::default()
        .with_workers(1)
        .with_element_config(ElementMatchConfig::default().with_min_similarity(0.5))
}

fn router_config(shards: usize) -> ShardedEngineConfig {
    ShardedEngineConfig::default()
        .with_shards(shards)
        .with_router_workers(2)
        .with_engine_config(engine_config())
}

fn repo() -> SchemaRepository {
    RepositoryGenerator::new(GeneratorConfig::small(53).with_target_elements(200)).generate()
}

fn queries(repo: &SchemaRepository, n: usize) -> Vec<MatchQuery> {
    seeded_personal_schemas(repo, n)
        .into_iter()
        .map(|p| {
            MatchQuery::new(p)
                .with_top_k(5)
                .with_threshold(0.5)
                .with_strategy(QueryStrategy::Auto)
        })
        .collect()
}

#[test]
fn single_swappable_engine_flips_generations_in_place() {
    let (dir, _cleanup) = scratch_dir("single");
    let repo = repo();
    let engine = MatchEngine::new(repo.clone(), engine_config());
    let gen1 = dir.join("gen1.xsmsnap");
    let gen2 = dir.join("gen2.xsmsnap");
    engine.write_snapshot(&gen1, 1).unwrap();
    engine.write_snapshot(&gen2, 2).unwrap();

    let swappable = SwappableEngine::from_snapshot(&gen1, engine_config()).unwrap();
    assert_eq!(swappable.generation(), 1);
    assert_eq!(swappable.swap_count(), 0);

    let query = queries(&repo, 1).pop().unwrap();
    let before = swappable.submit(query.clone()).unwrap().wait().unwrap();
    assert_eq!(before.generation, 1);

    // A held handle pins the old generation across the swap.
    let old_handle = swappable.current();
    assert_eq!(swappable.swap_to_snapshot(&gen2).unwrap(), 2);
    assert_eq!(swappable.generation(), 2);
    assert_eq!(swappable.swap_count(), 1);
    assert_eq!(old_handle.generation(), 1, "pinned generation stays alive");
    drop(old_handle);

    let after = swappable.submit(query.clone()).unwrap().wait().unwrap();
    assert_eq!(after.generation, 2);
    assert_eq!(
        after.result_digest(),
        before.result_digest(),
        "same repository content, different generation stamp"
    );
    assert_eq!(swappable.metrics_snapshot().unwrap().generation_swaps, 1);

    // Wrong expected generation refuses before any load.
    assert!(matches!(
        swappable.swap_to_snapshot_expecting(&gen1, 9),
        Err(SnapshotError::GenerationMismatch {
            expected: 9,
            found: 1
        })
    ));
    assert_eq!(
        swappable.generation(),
        2,
        "refusal leaves serving untouched"
    );
}

#[test]
fn fleet_swap_under_concurrent_traffic_is_atomic_and_errorless() {
    let (dir, _cleanup) = scratch_dir("fleet");
    let repo = repo();
    let gen1_dir = dir.join("gen1");
    let gen2_dir = dir.join("gen2");
    std::fs::create_dir_all(&gen1_dir).unwrap();
    std::fs::create_dir_all(&gen2_dir).unwrap();
    let gen1 = write_shard_snapshots(&repo, 2, ShardPlacement::Contiguous, &gen1_dir, 1).unwrap();
    let gen2 = write_shard_snapshots(&repo, 2, ShardPlacement::Contiguous, &gen2_dir, 2).unwrap();

    let fleet =
        Arc::new(ShardedEngine::from_swappable_snapshot_paths(&gen1, router_config(2)).unwrap());
    assert_eq!(fleet.serving_generation(), Some(1));

    let qs = queries(&repo, 4);
    let reference = MatchEngine::new(repo.clone(), engine_config());
    let digests: Vec<String> = qs
        .iter()
        .map(|q| reference.answer_inline(q).result_digest())
        .collect();

    // Hammer the fleet from worker threads while the main thread swaps.
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..3)
        .map(|worker| {
            let fleet = Arc::clone(&fleet);
            let stop = Arc::clone(&stop);
            let qs = qs.clone();
            let digests = digests.clone();
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut saw = [false, false];
                while !stop.load(Ordering::Relaxed) {
                    let i = (worker + served as usize) % qs.len();
                    let response = fleet
                        .submit(qs[i].clone())
                        .expect("submission never fails during a swap")
                        .wait()
                        .expect("no query errors during a swap");
                    assert!(!response.incomplete, "no degraded response during a swap");
                    assert!(
                        response.generation == 1 || response.generation == 2,
                        "a response must come from exactly one generation, got {}",
                        response.generation
                    );
                    saw[(response.generation - 1) as usize] = true;
                    assert_eq!(response.result_digest(), digests[i]);
                    served += 1;
                }
                (served, saw)
            })
        })
        .collect();

    // Let traffic flow on generation 1, flip, let it flow on generation 2.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(fleet.swap_generation(&gen2).unwrap(), 2);
    assert_eq!(fleet.serving_generation(), Some(2));
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);

    let mut total = 0;
    for hammer in hammers {
        let (served, _saw) = hammer.join().unwrap();
        assert!(served > 0, "every hammer thread made progress");
        total += served;
    }
    assert!(total > 0);

    // After the flip every fresh answer is generation 2 — including repeats
    // of fingerprints served (and cached) before the swap: the swap cleared
    // the router cache under the gate.
    for (query, digest) in qs.iter().zip(&digests) {
        let response = fleet.answer_inline(query).unwrap();
        assert_eq!(response.generation, 2, "stale generation served post-swap");
        assert_eq!(&response.result_digest(), digest);
    }
    let router_metrics = fleet.metrics().router;
    assert_eq!(router_metrics.generation_swaps, 1);
    assert_eq!(router_metrics.failed_queries, 0);
}

#[test]
fn swap_refusals_fail_closed() {
    let (dir, _cleanup) = scratch_dir("refusals");
    let repo = repo();
    let gen1_dir = dir.join("gen1");
    let gen2_dir = dir.join("gen2");
    let gen3_dir = dir.join("gen3");
    let moved_dir = dir.join("moved");
    for d in [&gen1_dir, &gen2_dir, &gen3_dir, &moved_dir] {
        std::fs::create_dir_all(d).unwrap();
    }
    let gen1 = write_shard_snapshots(&repo, 2, ShardPlacement::Contiguous, &gen1_dir, 1).unwrap();
    let gen2 = write_shard_snapshots(&repo, 2, ShardPlacement::Contiguous, &gen2_dir, 2).unwrap();
    let gen3 = write_shard_snapshots(&repo, 2, ShardPlacement::Contiguous, &gen3_dir, 3).unwrap();
    // Same shard count, different tree placement.
    let moved = write_shard_snapshots(&repo, 2, ShardPlacement::TreeHash, &moved_dir, 2).unwrap();

    let fleet = ShardedEngine::from_swappable_snapshot_paths(&gen1, router_config(2)).unwrap();
    let query = queries(&repo, 1).pop().unwrap();
    let baseline = fleet.answer_inline(&query).unwrap();
    assert_eq!(baseline.generation, 1);

    // A mixed-generation snapshot set is refused before any flip.
    let mixed = vec![gen2[0].clone(), gen3[1].clone()];
    assert!(matches!(
        fleet.swap_generation(&mixed),
        Err(SnapshotServeError::Snapshot(
            SnapshotError::GenerationMismatch {
                expected: 2,
                found: 3
            }
        ))
    ));

    // Wrong shard count.
    assert!(matches!(
        fleet.swap_generation(&gen2[..1]),
        Err(SnapshotServeError::Config(_))
    ));

    // A snapshot set that moves trees between shards.
    assert!(matches!(
        fleet.swap_generation(&moved),
        Err(SnapshotServeError::Config(_))
    ));

    // All refusals left generation 1 serving, byte-identically.
    let still = fleet.answer_inline(&query).unwrap();
    assert_eq!(still.generation, 1);
    assert_eq!(still.result_digest(), baseline.result_digest());

    // A fixed fleet (no swappable shards) cannot swap at all.
    let fixed = ShardedEngine::from_snapshot_paths(&gen1, router_config(2)).unwrap();
    assert!(matches!(
        fixed.swap_generation(&gen2),
        Err(SnapshotServeError::Config(_))
    ));
    assert_eq!(fixed.serving_generation(), None);

    // The valid swap still goes through after all those refusals.
    assert_eq!(fleet.swap_generation(&gen2).unwrap(), 2);
    assert_eq!(fleet.answer_inline(&query).unwrap().generation, 2);

    // And the mixed-generation *merge* guard is independent of swapping:
    // a fleet accidentally built half-and-half refuses to construct.
    let half = vec![gen1[0].clone(), gen2[1].clone()];
    assert!(matches!(
        ShardedEngine::from_swappable_snapshot_paths(&half, router_config(2)),
        Err(SnapshotServeError::Snapshot(
            SnapshotError::GenerationMismatch { .. }
        ))
    ));
}
