//! Kernel-swap replay: the engine (which scores through the precomputed feature
//! store and the bit-parallel kernels) must produce responses **byte-identical** to
//! the pre-refactor pipeline, reconstructed here with the original string-path
//! element matcher (`match_elements` / `match_elements_with_index` over
//! `NameElementMatcher`, i.e. `compare_string_fuzzy` per pair).
//!
//! This is the end-to-end counterpart of the per-kernel property suite in
//! `xsm-similarity/tests/feature_equivalence.rs`: scores, candidate counts, ranked
//! mappings and planner decisions all replay exactly, so the feature-store rewrite
//! is a pure optimisation.

use xsm_core::{ClusteredMatcher, ClusteringVariant};
use xsm_matcher::element::{
    match_elements, match_elements_with_index, ElementMatchConfig, NameElementMatcher,
};
use xsm_matcher::generator::branch_and_bound::BranchAndBoundGenerator;
use xsm_matcher::{MatchingProblem, ObjectiveConfig};
use xsm_repo::{GeneratorConfig, NameIndex, RepositoryGenerator, SchemaRepository};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{
    EngineConfig, MatchEngine, MatchQuery, PlannedStrategy, PlannerConfig, QueryPlanner,
    QueryStrategy,
};

const MIN_SIMILARITY: f64 = 0.5;

fn repository() -> SchemaRepository {
    RepositoryGenerator::new(GeneratorConfig::small(23).with_target_elements(500)).generate()
}

/// The serving pipeline exactly as it existed before the feature-store rewrite:
/// planner decision, string-path candidate generation, clustered matching, top-k
/// cut — returning the same digest string the engine's responses produce.
fn string_path_digest(
    query: &MatchQuery,
    repo: &SchemaRepository,
    index: &NameIndex,
    matcher: &ClusteredMatcher,
) -> String {
    let planner = QueryPlanner::new(PlannerConfig::default());
    let plan = planner.plan(&query.personal, query.strategy, index, MIN_SIMILARITY);
    let threshold = if query.threshold.is_nan() {
        1.0
    } else {
        query.threshold.clamp(0.0, 1.0)
    };
    let problem = MatchingProblem::new(
        query.personal.clone(),
        ObjectiveConfig::default(),
        threshold,
    );
    let candidates = match plan.strategy {
        PlannedStrategy::IndexPruned => match_elements_with_index(
            &problem.personal,
            repo,
            index,
            &NameElementMatcher,
            matcher.element_config(),
            planner.config().min_overlap,
        ),
        PlannedStrategy::Exhaustive => match_elements(
            &problem.personal,
            repo,
            &NameElementMatcher,
            matcher.element_config(),
        ),
    };
    let candidate_count = candidates.total_candidates();
    let generator = BranchAndBoundGenerator::new();
    let report = matcher.run_on_candidates(&problem, repo, &candidates, &generator);
    let total_matches = report.mappings.len();
    let mut mappings = report.mappings;
    mappings.truncate(query.top_k);

    // Rebuild the digest exactly as MatchResponse::result_digest does.
    let mut out = format!(
        "{}|me={candidate_count}|n={total_matches}",
        match plan.strategy {
            PlannedStrategy::IndexPruned => "index-pruned",
            PlannedStrategy::Exhaustive => "exhaustive",
        }
    );
    for m in &mappings {
        out.push_str(&format!("|{:016x}", m.score.to_bits()));
        for id in m.repo_nodes() {
            out.push_str(&format!(",{id}"));
        }
    }
    out
}

#[test]
fn engine_responses_replay_the_string_pipeline_byte_identically() {
    let repo = repository();
    let engine = MatchEngine::new(
        repo.clone(),
        EngineConfig::default()
            .with_workers(2)
            .with_element_config(ElementMatchConfig::default().with_min_similarity(MIN_SIMILARITY)),
    );
    let reference_index = NameIndex::build(&repo);
    let reference_matcher = ClusteredMatcher::for_variant(ClusteringVariant::Medium)
        .with_element_config(ElementMatchConfig::default().with_min_similarity(MIN_SIMILARITY));

    let queries: Vec<MatchQuery> = seeded_personal_schemas(&repo, 36)
        .into_iter()
        .enumerate()
        .map(|(i, personal)| {
            let strategy = match i % 3 {
                0 => QueryStrategy::Auto,
                1 => QueryStrategy::IndexPruned,
                _ => QueryStrategy::Exhaustive,
            };
            MatchQuery::new(personal)
                .with_top_k(1 + i % 5)
                .with_threshold(0.55 + 0.1 * (i % 3) as f64)
                .with_strategy(strategy)
        })
        .collect();

    let responses = engine.submit_batch(queries.clone()).unwrap();
    let mut non_trivial = 0usize;
    for (i, (query, response)) in queries.iter().zip(&responses).enumerate() {
        let expected = string_path_digest(query, &repo, &reference_index, &reference_matcher);
        assert_eq!(
            response.result_digest(),
            expected,
            "query {i} diverged from the pre-refactor string pipeline"
        );
        if !response.mappings.is_empty() {
            non_trivial += 1;
        }
    }
    assert!(
        non_trivial > 0,
        "replay proved nothing: no query produced mappings"
    );
}
