//! Concurrency-determinism contract of the [`MatchEngine`]: the same query batch run
//! through a 1-worker and an 8-worker engine yields identical top-k mappings and
//! scores, and cache hits never change result content.

use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{EngineConfig, MatchEngine, MatchQuery, QueryStrategy};

fn repository() -> SchemaRepository {
    RepositoryGenerator::new(GeneratorConfig::small(11).with_target_elements(700)).generate()
}

fn config() -> EngineConfig {
    EngineConfig::default()
        .with_element_config(ElementMatchConfig::default().with_min_similarity(0.5))
        .with_queue_capacity(8) // smaller than the batch: exercises backpressure
}

/// A deterministic batch over the shared seeded workload, cycling every strategy.
fn query_batch(repo: &SchemaRepository, n: usize) -> Vec<MatchQuery> {
    seeded_personal_schemas(repo, n)
        .into_iter()
        .enumerate()
        .map(|(i, personal)| {
            let strategy = match i % 3 {
                0 => QueryStrategy::Auto,
                1 => QueryStrategy::IndexPruned,
                _ => QueryStrategy::Exhaustive,
            };
            MatchQuery::new(personal)
                .with_top_k(1 + i % 7)
                .with_threshold(0.55)
                .with_strategy(strategy)
        })
        .collect()
}

#[test]
fn one_and_eight_workers_serve_identical_batches() {
    let repo = repository();
    let batch = query_batch(&repo, 100);

    let sequential = MatchEngine::new(repo.clone(), config().with_workers(1));
    let concurrent = MatchEngine::new(repo, config().with_workers(8));
    assert_eq!(sequential.workers(), 1);
    assert_eq!(concurrent.workers(), 8);

    let a = sequential.submit_batch(batch.clone()).unwrap();
    let b = concurrent.submit_batch(batch.clone()).unwrap();
    assert_eq!(a.len(), batch.len());

    for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(ra.fingerprint, batch[i].fingerprint(), "order broke at {i}");
        assert_eq!(rb.fingerprint, batch[i].fingerprint(), "order broke at {i}");
        assert_eq!(
            ra.result_digest(),
            rb.result_digest(),
            "query {i} diverged between 1 and 8 workers"
        );
        for m in &ra.mappings {
            assert!(m.score >= 0.55);
            assert!(m.is_structurally_valid());
        }
    }

    // Both engines did real work and the metrics saw every query.
    assert_eq!(sequential.metrics().queries_served, batch.len() as u64);
    assert_eq!(concurrent.metrics().queries_served, batch.len() as u64);
    assert!(a.iter().any(|r| !r.mappings.is_empty()));
}

#[test]
fn cache_hits_do_not_change_results() {
    let repo = repository();
    let batch = query_batch(&repo, 30);
    let engine = MatchEngine::new(repo, config().with_workers(4));

    let cold = engine.submit_batch(batch.clone()).unwrap();
    let warm = engine.submit_batch(batch.clone()).unwrap();

    // Batches can repeat a fingerprint, so even the first pass may hit; the second
    // pass must be all hits.
    assert!(warm.iter().all(|r| r.cache_hit));
    for (i, (c, w)) in cold.iter().zip(&warm).enumerate() {
        assert_eq!(
            c.result_digest(),
            w.result_digest(),
            "cache changed the content of query {i}"
        );
    }
    let metrics = engine.metrics();
    assert_eq!(metrics.queries_served, 60);
    assert!(metrics.result_cache_hits >= 30);
    assert!(metrics.result_cache_hit_rate >= 0.5);
}
