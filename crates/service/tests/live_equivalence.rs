//! The live-repository contract: an engine mutated **incrementally** — trees
//! appended, trees tombstone-deleted, the posting arena compacted, in any
//! order — answers every query **byte-identically** to an engine rebuilt from
//! scratch over the same logical content.
//!
//! The property suite draws a seeded base corpus, a pool of extra trees and a
//! random interleaving of append / delete / compact / query operations, then
//! applies the interleaving simultaneously to a single live [`MatchEngine`]
//! and to live [`ShardedEngine`] fleets (shard counts 1/2/4, the placement
//! drawn per case) while tracking the logical content in a plain `Vec`. Every
//! query op — plus one final check per case — compares the *entire serialized
//! response* (strategy, counts, every pair, every score bit, the generation
//! stamp) against a from-scratch oracle in which deleted trees are empty
//! positional placeholders.
//!
//! Deterministic edge-case tests cover what random draws hit rarely: deleting
//! every tree, appending to an emptied repository, compaction idempotence and
//! cache survival across compaction, and snapshot round trips of a mutated
//! engine that keeps mutating after the reload.

use proptest::prelude::*;
use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository, ShardPlacement};
use xsm_schema::{SchemaTree, TreeId};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{
    EngineConfig, MatchEngine, MatchQuery, MatchResponse, QueryStrategy, ShardedEngine,
    ShardedEngineConfig,
};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn engine_config() -> EngineConfig {
    EngineConfig::default()
        .with_workers(1)
        .with_element_config(ElementMatchConfig::default().with_min_similarity(0.5))
}

fn sharded_config(shards: usize, placement: ShardPlacement) -> ShardedEngineConfig {
    ShardedEngineConfig::default()
        .with_shards(shards)
        .with_placement(placement)
        .with_router_workers(1)
        .with_engine_config(engine_config())
}

/// Full byte-level response comparison (`latency` is `#[serde(skip)]`; the
/// caller normalises `cache_hit`, which is serving metadata outside the
/// contract — everything else, the generation stamp included, must agree).
fn assert_identical(oracle: &MatchResponse, live: &MatchResponse, context: &str) {
    assert_eq!(
        oracle.result_digest(),
        live.result_digest(),
        "digest diverged: {context}"
    );
    assert_eq!(
        serde_json::to_string(oracle).unwrap(),
        serde_json::to_string(live).unwrap(),
        "serialized response diverged: {context}"
    );
}

/// The live engines under test plus the logical model they must track.
struct Harness {
    single: MatchEngine,
    fleets: Vec<ShardedEngine>,
    placement: ShardPlacement,
    /// Logical content: every tree ever added, in global id order, deleted
    /// trees replaced by an empty positional placeholder — exactly what a
    /// from-scratch rebuild at the same logical content sees.
    logical: Vec<SchemaTree>,
    /// Global ids currently alive (ascending).
    alive: Vec<TreeId>,
}

impl Harness {
    fn new(repo: SchemaRepository, placement: ShardPlacement) -> Self {
        let logical: Vec<SchemaTree> = repo.trees().map(|(_, t)| t.clone()).collect();
        let alive = (0..repo.tree_count() as u32).map(TreeId).collect();
        Harness {
            single: MatchEngine::new(repo.clone(), engine_config()),
            fleets: SHARD_COUNTS
                .iter()
                .map(|&shards| ShardedEngine::new(repo.clone(), sharded_config(shards, placement)))
                .collect(),
            placement,
            logical,
            alive,
        }
    }

    fn append(&mut self, trees: Vec<SchemaTree>) {
        let expected: Vec<TreeId> = (0..trees.len())
            .map(|i| TreeId((self.logical.len() + i) as u32))
            .collect();
        let ids = self.single.append_trees(trees.clone()).unwrap();
        assert_eq!(ids, expected, "single engine assigns sequential ids");
        for fleet in &self.fleets {
            let ids = fleet.append_trees(trees.clone()).unwrap();
            assert_eq!(
                ids,
                expected,
                "{} shards assign the same global ids ({:?})",
                fleet.shard_count(),
                self.placement
            );
        }
        self.alive.extend(expected);
        self.logical.extend(trees);
    }

    fn delete(&mut self, victims: &[TreeId]) {
        let dropped = self.single.delete_trees(victims).unwrap();
        for fleet in &self.fleets {
            let fleet_dropped = fleet.delete_trees(victims).unwrap();
            assert_eq!(
                dropped,
                fleet_dropped,
                "{} shards drop the same posting count",
                fleet.shard_count()
            );
        }
        for &victim in victims {
            let name = self.logical[victim.index()].name().to_string();
            self.logical[victim.index()] = SchemaTree::new(name);
            self.alive.retain(|&t| t != victim);
        }
    }

    fn compact(&mut self) {
        self.single.compact();
        for fleet in &self.fleets {
            fleet.compact();
        }
    }

    /// Compare every live engine's answer against a from-scratch rebuild of
    /// the logical content, stepped to the live generation.
    fn check(&self, query: &MatchQuery) {
        let oracle = MatchEngine::new(
            SchemaRepository::from_trees(self.logical.clone()),
            engine_config(),
        );
        let generation = self.single.generation();
        if generation > 0 {
            oracle.advance_generation(generation).unwrap();
        }
        let reference = oracle.answer_inline(query);
        let mut live = self.single.answer_inline(query);
        live.cache_hit = reference.cache_hit;
        assert_identical(&reference, &live, "single live engine vs rebuild");
        for fleet in &self.fleets {
            assert_eq!(fleet.generation(), Some(generation));
            let mut response = fleet.answer_inline(query).unwrap();
            response.cache_hit = reference.cache_hit;
            assert_identical(
                &reference,
                &response,
                &format!(
                    "{} shards ({:?}) vs rebuild",
                    fleet.shard_count(),
                    self.placement
                ),
            );
        }
    }
}

proptest! {
    /// The tentpole property: random interleavings of append / delete /
    /// compact / query over a single live engine and sharded live fleets all
    /// answer byte-identically to a from-scratch rebuild at every step.
    #[test]
    fn live_mutation_interleavings_match_a_rebuilt_oracle(
        seed in 1u64..4_000,
        elements in 60usize..160,
        placement_pick in 0usize..2,
        ops in proptest::collection::vec(0usize..4_000, 3..9),
    ) {
        let repo = RepositoryGenerator::new(
            GeneratorConfig::small(seed).with_target_elements(elements),
        )
        .generate();
        // Extra trees to append, and personal schemas to query with, are all
        // derived deterministically from the same draw.
        let mut pool: Vec<SchemaTree> = RepositoryGenerator::new(
            GeneratorConfig::small(seed ^ 0x9e37_79b9).with_target_elements(120),
        )
        .generate()
        .trees()
        .map(|(_, t)| t.clone())
        .collect();
        let personals = seeded_personal_schemas(&repo, 6);
        let placement = [ShardPlacement::Contiguous, ShardPlacement::TreeHash][placement_pick];

        let mut harness = Harness::new(repo, placement);
        for code in ops {
            let param = code / 4;
            match code % 4 {
                0 => {
                    let count = (1 + param % 3).min(pool.len());
                    if count > 0 {
                        harness.append(pool.drain(..count).collect());
                    }
                }
                1 => {
                    if !harness.alive.is_empty() {
                        let first = harness.alive[param % harness.alive.len()];
                        let mut victims = vec![first];
                        if param % 2 == 0 && harness.alive.len() > 1 {
                            let second = harness.alive[(param / 7) % harness.alive.len()];
                            if second != first {
                                victims.push(second);
                            }
                        }
                        harness.delete(&victims);
                    }
                }
                2 => harness.compact(),
                _ => {
                    let query = MatchQuery::new(personals[param % personals.len()].clone())
                        .with_top_k(1 + param % 8)
                        .with_threshold((param % 20) as f64 / 20.0)
                        .with_strategy(
                            [
                                QueryStrategy::Auto,
                                QueryStrategy::IndexPruned,
                                QueryStrategy::Exhaustive,
                            ][param % 3],
                        );
                    harness.check(&query);
                }
            }
        }
        // Every interleaving ends with a full check even when the draw held
        // no query op.
        let final_query = MatchQuery::new(personals[0].clone())
            .with_top_k(5)
            .with_threshold(0.5);
        harness.check(&final_query);
    }
}

fn base_repo(seed: u64, elements: usize) -> SchemaRepository {
    RepositoryGenerator::new(GeneratorConfig::small(seed).with_target_elements(elements)).generate()
}

#[test]
fn deleting_every_tree_then_appending_revives_the_engine() {
    let repo = base_repo(31, 120);
    let all: Vec<TreeId> = (0..repo.tree_count() as u32).map(TreeId).collect();
    let mut harness = Harness::new(repo.clone(), ShardPlacement::TreeHash);
    let query = MatchQuery::new(seeded_personal_schemas(&repo, 1).swap_remove(0))
        .with_top_k(5)
        .with_threshold(0.4);

    harness.delete(&all);
    harness.check(&query);
    let emptied = harness.single.answer_inline(&query);
    assert!(
        emptied.mappings.is_empty(),
        "a fully deleted forest matches nothing"
    );
    assert_eq!(emptied.total_matches, 0);

    // Appends continue the global id sequence past the tombstones.
    let extra: Vec<SchemaTree> = base_repo(32, 80).trees().map(|(_, t)| t.clone()).collect();
    harness.append(extra);
    harness.check(&query);
    assert!(
        !harness.single.answer_inline(&query).mappings.is_empty()
            || harness.single.answer_inline(&query).total_matches == 0,
        "the revived engine serves the appended content"
    );
}

#[test]
fn compaction_changes_no_answer_and_keeps_the_cache() {
    let repo = base_repo(33, 150);
    // A threshold of 1.0 disables auto-compaction so the test controls it.
    let engine = MatchEngine::new(repo.clone(), engine_config().with_compaction_threshold(1.0));
    let query = MatchQuery::new(seeded_personal_schemas(&repo, 1).swap_remove(0))
        .with_top_k(6)
        .with_threshold(0.4);
    engine
        .delete_trees(&[TreeId(0), TreeId(2), TreeId(4)])
        .unwrap();
    assert!(engine.dead_posting_fraction() > 0.0);
    let before = engine.answer_inline(&query);
    let cached = engine.answer_inline(&query);
    assert!(cached.cache_hit, "second serve hits the result cache");

    let generation = engine.generation();
    let reclaimed = engine.compact();
    assert!(reclaimed > 0, "compaction reclaims the tombstoned postings");
    assert_eq!(engine.dead_posting_fraction(), 0.0);
    assert_eq!(
        engine.generation(),
        generation,
        "compaction is physical-only: no generation step"
    );
    let after = engine.answer_inline(&query);
    assert!(
        after.cache_hit,
        "compaction must not invalidate the result cache"
    );
    assert_eq!(before.result_digest(), after.result_digest());
    assert_eq!(engine.compact(), 0, "compaction is idempotent");
}

#[test]
fn auto_compaction_triggers_at_the_configured_threshold() {
    let repo = base_repo(34, 150);
    let engine = MatchEngine::new(
        repo.clone(),
        engine_config().with_compaction_threshold(0.05),
    );
    // Deleting a third of the forest comfortably crosses a 5% dead fraction.
    let victims: Vec<TreeId> = (0..repo.tree_count() as u32 / 3).map(TreeId).collect();
    engine.delete_trees(&victims).unwrap();
    assert_eq!(
        engine.dead_posting_fraction(),
        0.0,
        "delete_trees compacts once the dead fraction crosses the threshold"
    );
    assert_eq!(
        engine.tombstoned_trees(),
        victims,
        "compaction reclaims postings but keeps the tombstone set"
    );
}

#[test]
fn snapshot_round_trip_preserves_and_continues_live_state() {
    let dir = std::env::temp_dir().join(format!("xsm-live-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("live.snap");

    let repo = base_repo(35, 140);
    let engine = MatchEngine::new(repo.clone(), engine_config());
    let extra: Vec<SchemaTree> = base_repo(36, 60)
        .trees()
        .map(|(_, t)| t.clone())
        .take(3)
        .collect();
    engine.append_trees(extra).unwrap();
    engine.delete_trees(&[TreeId(1), TreeId(3)]).unwrap();
    let generation = engine.generation();
    let query = MatchQuery::new(seeded_personal_schemas(&repo, 1).swap_remove(0))
        .with_top_k(5)
        .with_threshold(0.4);
    let before = engine.answer_inline(&query);

    engine.write_snapshot(&path, generation).unwrap();
    let warm = MatchEngine::from_snapshot(&path, engine_config()).unwrap();
    assert_eq!(warm.generation(), generation);
    assert_eq!(warm.tombstoned_trees(), engine.tombstoned_trees());
    let mut warmed = warm.answer_inline(&query);
    warmed.cache_hit = before.cache_hit;
    assert_identical(&before, &warmed, "snapshot round trip of a mutated engine");

    // The reloaded engine keeps mutating from where the writer stopped.
    warm.delete_trees(&[TreeId(0)]).unwrap();
    engine.delete_trees(&[TreeId(0)]).unwrap();
    assert_eq!(warm.generation(), engine.generation());
    let a = engine.answer_inline(&query);
    let mut b = warm.answer_inline(&query);
    b.cache_hit = a.cache_hit;
    assert_identical(&a, &b, "post-reload mutations stay in lockstep");

    std::fs::remove_dir_all(&dir).ok();
}
