//! The networked-serving contract: a [`ShardedEngine`] whose shards live behind
//! loopback TCP — real sockets, real frames, real handshakes — answers every
//! query **byte-identically** to a single in-process [`MatchEngine`] over the
//! whole repository.
//!
//! This is `tests/shard_equivalence.rs` lifted one transport layer up: the
//! deterministic sweep covers shard counts {1, 2, 4} × both placements × all
//! three strategies with whole-response serde comparison, and the property test
//! fires randomized queries (shape, `top_k`, threshold bits, strategy) at one
//! long-lived TCP fleet. If the frame codec, the DTOs, the planner-stats
//! aggregation or the merge lost a single bit anywhere, the serialized
//! responses would diverge.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use proptest::prelude::*;
use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::{
    GeneratorConfig, RepositoryGenerator, RepositoryPartition, SchemaRepository, ShardPlacement,
};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{
    EngineConfig, MatchEngine, MatchQuery, MatchResponse, MatchService, QueryStrategy,
    RemoteEngine, RemoteEngineConfig, ShardServer, ShardedEngine, ShardedEngineConfig,
};

fn engine_config() -> EngineConfig {
    EngineConfig::builder()
        .workers(1)
        .element(ElementMatchConfig::default().with_min_similarity(0.5))
        .build()
        .unwrap()
}

fn client_config() -> RemoteEngineConfig {
    RemoteEngineConfig::default()
        .with_connect_timeout(Duration::from_secs(5))
        .with_request_deadline(Duration::from_secs(120))
}

/// A router whose every shard is served over loopback TCP. The servers must
/// outlive the router, so they ride along.
struct TcpFleet {
    router: ShardedEngine,
    _servers: Vec<ShardServer>,
}

fn tcp_fleet(repo: &SchemaRepository, shards: usize, placement: ShardPlacement) -> TcpFleet {
    let partition = RepositoryPartition::build(repo, shards, placement);
    let (parts, tree_maps) = partition.into_parts();
    let mut servers = Vec::new();
    let mut services: Vec<Box<dyn MatchService>> = Vec::new();
    for part in parts {
        let backend: Arc<dyn MatchService> = Arc::new(MatchEngine::new(part, engine_config()));
        let server = ShardServer::bind("127.0.0.1:0", backend).expect("bind loopback");
        let client = RemoteEngine::connect(server.local_addr().to_string(), client_config())
            .expect("handshake with own server");
        services.push(Box::new(client));
        servers.push(server);
    }
    let config = ShardedEngineConfig::builder()
        .shards(shards)
        .placement(placement)
        .router_workers(1)
        .engine(engine_config())
        .build()
        .unwrap();
    let router = ShardedEngine::from_services(services, tree_maps, config).expect("wire fleet");
    TcpFleet {
        router,
        _servers: servers,
    }
}

/// Whole-response comparison via serde: strategy, every mapping's pairs and
/// score bits, the counts, the degraded-mode fields — everything except
/// latency (`#[serde(skip)]`) and the normalised `cache_hit`.
fn assert_identical(single: &MatchResponse, networked: &MatchResponse, context: &str) {
    assert_eq!(
        single.result_digest(),
        networked.result_digest(),
        "digest diverged: {context}"
    );
    assert_eq!(
        serde_json::to_string(single).unwrap(),
        serde_json::to_string(networked).unwrap(),
        "serialized response diverged: {context}"
    );
}

fn assert_tcp_equivalence(repo: &SchemaRepository, queries: &[MatchQuery]) {
    let single = MatchEngine::new(repo.clone(), engine_config());
    let references: Vec<MatchResponse> = queries.iter().map(|q| single.answer_inline(q)).collect();
    for shards in [1usize, 2, 4] {
        for placement in [ShardPlacement::Contiguous, ShardPlacement::TreeHash] {
            let fleet = tcp_fleet(repo, shards, placement);
            for (query, reference) in queries.iter().zip(&references) {
                let mut response = fleet.router.answer_inline(query).unwrap();
                assert!(!response.incomplete, "healthy fleet must never degrade");
                response.cache_hit = reference.cache_hit;
                assert_identical(
                    reference,
                    &response,
                    &format!(
                        "{shards} TCP shards, {placement:?}, fingerprint {}",
                        query.fingerprint()
                    ),
                );
            }
        }
    }
}

#[test]
fn loopback_tcp_sharding_is_byte_identical_across_strategies() {
    let repo =
        RepositoryGenerator::new(GeneratorConfig::small(41).with_target_elements(260)).generate();
    let mut queries = Vec::new();
    for (i, personal) in seeded_personal_schemas(&repo, 3).into_iter().enumerate() {
        for strategy in [
            QueryStrategy::Auto,
            QueryStrategy::IndexPruned,
            QueryStrategy::Exhaustive,
        ] {
            queries.push(
                MatchQuery::new(personal.clone())
                    .with_top_k(2 + i)
                    .with_threshold(0.45 + 0.1 * i as f64)
                    .with_strategy(strategy),
            );
        }
    }
    assert_tcp_equivalence(&repo, &queries);
}

#[test]
fn batches_over_tcp_preserve_order_and_content() {
    let repo =
        RepositoryGenerator::new(GeneratorConfig::small(43).with_target_elements(200)).generate();
    let single = MatchEngine::new(repo.clone(), engine_config());
    let batch: Vec<MatchQuery> = seeded_personal_schemas(&repo, 6)
        .into_iter()
        .map(|p| MatchQuery::new(p).with_top_k(4).with_threshold(0.5))
        .collect();
    let references = single.submit_batch(batch.clone()).unwrap();
    let fleet = tcp_fleet(&repo, 2, ShardPlacement::Contiguous);
    let responses = fleet.router.submit_batch(batch.clone()).unwrap();
    assert_eq!(responses.len(), batch.len());
    for (i, ((query, reference), mut response)) in
        batch.iter().zip(references).zip(responses).enumerate()
    {
        assert_eq!(
            response.fingerprint,
            query.fingerprint(),
            "order broke at {i}"
        );
        response.cache_hit = reference.cache_hit;
        assert_identical(&reference, &response, &format!("batch query {i}"));
    }
}

/// The long-lived fleet the property test fires at: building a TCP fleet per
/// proptest case would dominate the runtime without testing anything new.
fn shared_fleet() -> &'static (SchemaRepository, MatchEngine, TcpFleet) {
    static FLEET: OnceLock<(SchemaRepository, MatchEngine, TcpFleet)> = OnceLock::new();
    FLEET.get_or_init(|| {
        let repo = RepositoryGenerator::new(GeneratorConfig::small(47).with_target_elements(220))
            .generate();
        let single = MatchEngine::new(repo.clone(), engine_config());
        let fleet = tcp_fleet(&repo, 2, ShardPlacement::TreeHash);
        (repo, single, fleet)
    })
}

proptest! {
    #[test]
    fn random_queries_survive_the_wire_bit_for_bit(
        pick in 0usize..6,
        top_k in 1usize..10,
        threshold in 0.0f64..1.0,
        strategy_pick in 0usize..3,
    ) {
        let (repo, single, fleet) = shared_fleet();
        let personal = seeded_personal_schemas(repo, pick + 1).swap_remove(pick);
        let strategy = [
            QueryStrategy::Auto,
            QueryStrategy::IndexPruned,
            QueryStrategy::Exhaustive,
        ][strategy_pick];
        let query = MatchQuery::new(personal)
            .with_top_k(top_k)
            .with_threshold(threshold)
            .with_strategy(strategy);
        let reference = single.answer_inline(&query);
        let mut response = fleet.router.answer_inline(&query).unwrap();
        prop_assert!(!response.incomplete);
        response.cache_hit = reference.cache_hit;
        prop_assert_eq!(
            serde_json::to_string(&reference).unwrap(),
            serde_json::to_string(&response).unwrap()
        );
    }
}
