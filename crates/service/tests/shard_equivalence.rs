//! The sharded-serving contract: a [`ShardedEngine`] over any partition of the
//! repository answers every query **byte-identically** to a single [`MatchEngine`]
//! over the whole repository.
//!
//! The property suite draws random repositories (seeded generator corpora and
//! hand-assembled forests of random names), random personal schemas, every
//! strategy (`Auto`, forced index-pruned, forced exhaustive), both placements and
//! shard counts 1/2/3/8, and compares the *entire serialized response* — strategy,
//! candidate counts, total matches, every mapping's pairs and score bits.
//! Deterministic edge-case tests cover what random draws hit rarely: empty shards,
//! all-equal scores across shards at a top-k tie boundary, `top_k` beyond the total
//! match count, thresholds excluding every candidate, and the empty repository.

use proptest::prelude::*;
use xsm_matcher::element::ElementMatchConfig;
use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository, ShardPlacement};
use xsm_schema::{SchemaNode, SchemaTree, TreeBuilder};
use xsm_service::workload::seeded_personal_schemas;
use xsm_service::{
    EngineConfig, MatchEngine, MatchQuery, MatchResponse, QueryStrategy, ShardedEngine,
    ShardedEngineConfig,
};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn engine_config() -> EngineConfig {
    EngineConfig::default()
        .with_workers(1)
        .with_element_config(ElementMatchConfig::default().with_min_similarity(0.5))
}

fn sharded_config(shards: usize, placement: ShardPlacement) -> ShardedEngineConfig {
    ShardedEngineConfig::default()
        .with_shards(shards)
        .with_placement(placement)
        .with_router_workers(1)
        .with_engine_config(engine_config())
}

/// Full byte-level response comparison. `result_digest` alone already covers the
/// ranked content; serializing the whole response additionally pins the pairs
/// (personal node, repo node, similarity bits), the counts and the strategy.
fn assert_identical(single: &MatchResponse, sharded: &MatchResponse, context: &str) {
    assert_eq!(
        single.result_digest(),
        sharded.result_digest(),
        "digest diverged: {context}"
    );
    assert_eq!(
        serde_json::to_string(single).unwrap(),
        serde_json::to_string(sharded).unwrap(),
        "serialized response diverged: {context}"
    );
}

/// Serve `queries` through a fresh single engine and fresh sharded engines for
/// every shard count, asserting byte-identical responses throughout.
fn assert_equivalence(repo: &SchemaRepository, placement: ShardPlacement, queries: &[MatchQuery]) {
    let single = MatchEngine::new(repo.clone(), engine_config());
    let references: Vec<MatchResponse> = queries.iter().map(|q| single.answer_inline(q)).collect();
    for &shards in &SHARD_COUNTS {
        let sharded = ShardedEngine::new(repo.clone(), sharded_config(shards, placement));
        for (query, reference) in queries.iter().zip(&references) {
            let mut response = sharded.answer_inline(query).unwrap();
            // The single engine may have served a repeat from its own cache;
            // normalise the serving metadata, which is outside the contract.
            response.cache_hit = reference.cache_hit;
            assert_identical(
                reference,
                &response,
                &format!(
                    "{shards} shards, {placement:?}, fingerprint {}",
                    query.fingerprint()
                ),
            );
        }
    }
}

proptest! {
    #[test]
    fn generated_corpora_serve_identically_sharded(
        seed in 1u64..5_000,
        elements in 80usize..220,
        top_k in 1usize..12,
        threshold in 0.0f64..1.0,
        strategy_pick in 0usize..3,
        placement_pick in 0usize..2,
        query_pick in 0usize..6,
    ) {
        let repo = RepositoryGenerator::new(
            GeneratorConfig::small(seed).with_target_elements(elements),
        )
        .generate();
        let strategy = [
            QueryStrategy::Auto,
            QueryStrategy::IndexPruned,
            QueryStrategy::Exhaustive,
        ][strategy_pick];
        let placement = [ShardPlacement::Contiguous, ShardPlacement::TreeHash][placement_pick];
        let personal = seeded_personal_schemas(&repo, query_pick + 1)
            .swap_remove(query_pick);
        let query = MatchQuery::new(personal)
            .with_top_k(top_k)
            .with_threshold(threshold)
            .with_strategy(strategy);
        assert_equivalence(&repo, placement, &[query]);
    }

    #[test]
    fn random_forests_of_random_names_serve_identically_sharded(
        names in proptest::collection::vec("[a-d]{1,6}", 4..28),
        personal_names in proptest::collection::vec("[a-d]{1,6}", 1..4),
        top_k in 1usize..9,
        threshold in 0.0f64..1.0,
        placement_pick in 0usize..2,
    ) {
        // A tiny alphabet makes name collisions — and therefore score ties that
        // cross shard boundaries — common rather than exceptional.
        let mut repo = SchemaRepository::new();
        for chunk in names.chunks(5) {
            let mut b = TreeBuilder::new("t").root(SchemaNode::element(chunk[0].as_str()));
            for (i, name) in chunk[1..].iter().enumerate() {
                b = if i % 2 == 0 {
                    b.child(SchemaNode::element(name.as_str()))
                } else {
                    b.sibling(SchemaNode::element(name.as_str()))
                };
            }
            repo.add_tree(b.build());
        }
        let mut pb = TreeBuilder::new("personal")
            .root(SchemaNode::element(personal_names[0].as_str()));
        for name in &personal_names[1..] {
            pb = pb.sibling(SchemaNode::element(name.as_str()));
        }
        let personal = pb.build();
        let placement = [ShardPlacement::Contiguous, ShardPlacement::TreeHash][placement_pick];
        // Auto exercises the aggregated router planner on every case here.
        let query = MatchQuery::new(personal)
            .with_top_k(top_k)
            .with_threshold(threshold)
            .with_strategy(QueryStrategy::Auto);
        assert_equivalence(&repo, placement, &[query]);
    }
}

/// One tree of `person/name/email/address` records, repeated to force exact score
/// ties across trees (and, sharded, across shards).
fn identical_tree(label: &str) -> SchemaTree {
    TreeBuilder::new(label)
        .root(SchemaNode::element("person"))
        .child(SchemaNode::element("name"))
        .sibling(SchemaNode::element("email"))
        .sibling(SchemaNode::element("address"))
        .build()
}

fn tie_personal() -> SchemaTree {
    TreeBuilder::new("personal")
        .root(SchemaNode::element("person"))
        .child(SchemaNode::element("name"))
        .build()
}

#[test]
fn top_k_tie_boundary_across_identical_trees() {
    // Six identical trees → six mappings with bit-equal scores. Any top_k below six
    // cuts through the tie group, so the merge's id tie-break must match the single
    // engine's exactly; node-id order must also survive the shard-local→global
    // translation under both placements.
    let repo =
        SchemaRepository::from_trees((0..6).map(|i| identical_tree(&format!("t{i}"))).collect());
    for placement in [ShardPlacement::Contiguous, ShardPlacement::TreeHash] {
        let queries: Vec<MatchQuery> = (1..=7)
            .map(|k| {
                MatchQuery::new(tie_personal())
                    .with_top_k(k)
                    .with_threshold(0.9)
                    .with_strategy(QueryStrategy::Exhaustive)
            })
            .collect();
        assert_equivalence(&repo, placement, &queries);
    }
    // Sanity: the scenario really produces the tie group it claims to.
    let single = MatchEngine::new(repo, engine_config());
    let all = single.query(
        MatchQuery::new(tie_personal())
            .with_top_k(3)
            .with_threshold(0.9),
    );
    assert_eq!(all.total_matches, 6);
    assert_eq!(all.mappings.len(), 3);
    let bits: Vec<u64> = all.mappings.iter().map(|m| m.score.to_bits()).collect();
    assert!(bits.windows(2).all(|w| w[0] == w[1]), "scores must tie");
    // Equal scores are ordered by repository node id.
    let trees: Vec<_> = all
        .mappings
        .iter()
        .map(|m| m.repo_tree().unwrap())
        .collect();
    assert!(trees.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn empty_shards_contribute_nothing_and_break_nothing() {
    // Two trees over eight shards: six shard engines hold empty repositories.
    let repo = SchemaRepository::from_trees(vec![identical_tree("a"), identical_tree("b")]);
    let query = MatchQuery::new(tie_personal())
        .with_top_k(10)
        .with_threshold(0.8);
    assert_equivalence(
        &repo,
        ShardPlacement::Contiguous,
        std::slice::from_ref(&query),
    );
    let sharded = ShardedEngine::new(repo, sharded_config(8, ShardPlacement::Contiguous));
    let non_empty = (0..8)
        .filter(|&s| !sharded.shard_trees(s).is_empty())
        .count();
    assert_eq!(non_empty, 2);
    let response = sharded.query(query);
    assert_eq!(response.total_matches, 2);
    assert_eq!(response.mappings.len(), 2);
}

#[test]
fn top_k_larger_than_total_matches_returns_everything() {
    let repo = SchemaRepository::from_trees(vec![identical_tree("a"), identical_tree("b")]);
    let query = MatchQuery::new(tie_personal())
        .with_top_k(500)
        .with_threshold(0.7);
    assert_equivalence(
        &repo,
        ShardPlacement::TreeHash,
        std::slice::from_ref(&query),
    );
    let sharded = ShardedEngine::new(repo, sharded_config(3, ShardPlacement::TreeHash));
    let response = sharded.query(query);
    assert_eq!(response.mappings.len(), response.total_matches);
    assert!(response.total_matches < 500);
}

#[test]
fn threshold_excluding_every_candidate_yields_empty_mappings() {
    let repo = SchemaRepository::from_trees(vec![identical_tree("a"), identical_tree("b")]);
    // `zzz`-ish personal names relate to nothing at δ = 1.0.
    let personal = TreeBuilder::new("personal")
        .root(SchemaNode::element("zzzqqq"))
        .child(SchemaNode::element("wwwvvv"))
        .build();
    let query = MatchQuery::new(personal)
        .with_top_k(5)
        .with_threshold(1.0)
        .with_strategy(QueryStrategy::Exhaustive);
    assert_equivalence(
        &repo,
        ShardPlacement::Contiguous,
        std::slice::from_ref(&query),
    );
    let sharded = ShardedEngine::new(repo, sharded_config(2, ShardPlacement::Contiguous));
    let response = sharded.query(query);
    assert!(response.mappings.is_empty());
    assert_eq!(response.total_matches, 0);
}

#[test]
fn empty_repository_serves_empty_answers_sharded() {
    let query = MatchQuery::new(tie_personal()).with_top_k(3);
    assert_equivalence(
        &SchemaRepository::new(),
        ShardPlacement::Contiguous,
        std::slice::from_ref(&query),
    );
    let sharded = ShardedEngine::new(
        SchemaRepository::new(),
        sharded_config(4, ShardPlacement::TreeHash),
    );
    let response = sharded.query(query);
    assert!(response.mappings.is_empty());
    assert_eq!(response.candidate_count, 0);
    assert_eq!(response.total_matches, 0);
}

#[test]
fn forced_strategies_round_trip_through_the_router() {
    let repo =
        RepositoryGenerator::new(GeneratorConfig::small(23).with_target_elements(150)).generate();
    let personal = seeded_personal_schemas(&repo, 1).swap_remove(0);
    let sharded = ShardedEngine::new(repo.clone(), sharded_config(2, ShardPlacement::Contiguous));
    let single = MatchEngine::new(repo, engine_config());
    for strategy in [
        QueryStrategy::IndexPruned,
        QueryStrategy::Exhaustive,
        QueryStrategy::Auto,
    ] {
        let query = MatchQuery::new(personal.clone())
            .with_top_k(5)
            .with_threshold(0.6)
            .with_strategy(strategy);
        let a = single.answer_inline(&query);
        let b = sharded.answer_inline(&query).unwrap();
        assert_eq!(a.strategy, b.strategy, "{strategy:?}");
        assert_identical(&a, &b, &format!("{strategy:?}"));
    }
}
