//! The [`ShardedEngine`]: one repository served by N independent [`MatchEngine`]s.
//!
//! A repository that outgrows a single host is partitioned **by tree**
//! ([`xsm_repo::RepositoryPartition`]): every schema mapping lives inside one tree,
//! the clustering control loop is tree-local, and the planner statistics are
//! additive over a disjoint partition — so a query scattered to all shards and
//! gathered with a deterministic merge returns **byte-identical** answers to the
//! unsharded engine. That equivalence is the module's contract, proven for
//! 1/2/3/8 shards by the property suite in `tests/shard_equivalence.rs`.
//!
//! ## Scatter
//!
//! The router resolves [`QueryStrategy::Auto`] **once**, from the shard indexes'
//! aggregated posting statistics ([`QueryPlanner::plan_over`]), and forces the
//! resolved strategy onto every shard — per-shard re-planning could split the fleet
//! across strategies and silently diverge from the single-engine answer. Sub-queries
//! flow through each shard engine's existing bounded submission queue.
//!
//! ## Gather
//!
//! Each shard answers with its local top-k; shard-local node ids are translated
//! back to global ids (tree placement preserves ascending id order, so translation
//! never disturbs a tie-break), the lists are merged with the same comparator the
//! pipeline sorts with — score descending, then repository node ids — and cut to
//! `top_k`. The global top-k is always contained in the union of per-shard top-ks,
//! so the merge loses nothing. `candidate_count` and `total_matches` are sums.
//!
//! ## Above the router
//!
//! The router carries its own bounded LRU [`ResultCache`] and [`Singleflight`] map
//! keyed by the *original* query fingerprint (requested strategy included):
//! concurrent identical queries coalesce onto one scatter, repeats are answered
//! without touching any shard. [`ShardedEngine::metrics`] reports the router's own
//! counters plus the per-shard engine breakdown.
//!
//! ## Restrictions
//!
//! [`xsm_matcher::element::ElementMatchConfig::max_candidates_per_node`] must be
//! unset: the cap keeps the
//! globally best candidates per personal node, which per-shard engines cannot
//! reconstruct from local views (each would cap against its own candidates, keeping
//! pairs the global cut would drop). Construction panics rather than serving
//! subtly different answers.

use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use serde::{Deserialize, Serialize};
use xsm_matcher::generator::sort_mappings;
use xsm_matcher::{MappingElement, SchemaMapping};
use xsm_repo::{RepositoryPartition, SchemaRepository, ShardPlacement};
use xsm_schema::{GlobalNodeId, TreeId};

use crate::cache::{ResultCache, DEFAULT_RESULT_CACHE_CAPACITY};
use crate::engine::{EngineConfig, MatchEngine, PendingResponse};
use crate::metrics::{EngineMetrics, MetricsRegistry};
use crate::planner::QueryPlanner;
use crate::query::{MatchQuery, MatchResponse, PlannedStrategy, QueryStrategy};
use crate::singleflight::Singleflight;

/// Construction-time configuration of a [`ShardedEngine`].
#[derive(Debug, Clone)]
pub struct ShardedEngineConfig {
    /// Number of shards the repository is partitioned into (`>= 1`; shards beyond
    /// the tree count stay empty and answer instantly).
    pub shards: usize,
    /// How trees are placed onto shards.
    pub placement: ShardPlacement,
    /// Router worker threads scattering/gathering queries (`>= 1`).
    pub router_workers: usize,
    /// Capacity of the router's bounded submission queue (backpressure on
    /// submitters, exactly like the engine's).
    pub router_queue_capacity: usize,
    /// Capacity of the router-level result cache (whole merged responses, LRU).
    pub router_result_cache_capacity: usize,
    /// Configuration applied to **every** shard engine (workers per shard, element
    /// matching, clustering variant, objective, planner tuning).
    pub engine: EngineConfig,
}

impl Default for ShardedEngineConfig {
    fn default() -> Self {
        ShardedEngineConfig {
            shards: 2,
            placement: ShardPlacement::Contiguous,
            router_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4),
            router_queue_capacity: 64,
            router_result_cache_capacity: DEFAULT_RESULT_CACHE_CAPACITY,
            engine: EngineConfig::default(),
        }
    }
}

impl ShardedEngineConfig {
    /// Builder-style shard-count override (`0` is clamped to `1`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Builder-style placement override.
    pub fn with_placement(mut self, placement: ShardPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Builder-style router worker-count override (`0` is clamped to `1`).
    pub fn with_router_workers(mut self, workers: usize) -> Self {
        self.router_workers = workers.max(1);
        self
    }

    /// Builder-style router queue-capacity override.
    pub fn with_router_queue_capacity(mut self, capacity: usize) -> Self {
        self.router_queue_capacity = capacity.max(1);
        self
    }

    /// Builder-style router result-cache capacity override.
    pub fn with_router_result_cache_capacity(mut self, capacity: usize) -> Self {
        self.router_result_cache_capacity = capacity.max(1);
        self
    }

    /// Builder-style per-shard engine configuration override.
    pub fn with_engine_config(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }
}

/// Router-level and per-shard serving metrics of a [`ShardedEngine`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedMetrics {
    /// The router's own counters: queries served (merged responses), router
    /// result-cache hits, coalesced queries, per-strategy scatter counts and
    /// end-to-end (scatter + gather) latency quantiles.
    pub router: EngineMetrics,
    /// One [`EngineMetrics`] per shard engine, in shard order. Every scattered
    /// query appears once in each shard's `queries_served`.
    pub per_shard: Vec<EngineMetrics>,
}

/// Everything the router workers share.
struct RouterCore {
    engines: Vec<MatchEngine>,
    /// Per shard: local `TreeId` index → global `TreeId` (ascending).
    tree_maps: Vec<Vec<TreeId>>,
    planner: QueryPlanner,
    /// The shard engines' element floor, anchoring the planner's length window —
    /// the router must estimate with the same window the shards will generate with.
    length_floor: f64,
    results: ResultCache,
    inflight: Singleflight<MatchResponse>,
    metrics: MetricsRegistry,
}

impl RouterCore {
    /// Answer one query at the router: result cache → singleflight → scatter to
    /// every shard → gather/merge. Runs the same `serve_with_caches` discipline as
    /// `EngineCore::answer`, so the sharded serving path inherits the engine's
    /// determinism and accounting contract by construction.
    fn answer(&self, query: &MatchQuery) -> MatchResponse {
        crate::engine::serve_with_caches(
            &self.results,
            &self.inflight,
            &self.metrics,
            query.fingerprint(),
            |fingerprint| self.scatter_gather(query, fingerprint),
        )
    }

    /// One scatter/gather pass: plan globally, fan the sub-query out through every
    /// shard engine's bounded queue, merge the per-shard answers deterministically.
    fn scatter_gather(&self, query: &MatchQuery, fingerprint: &str) -> MatchResponse {
        let plan = self.planner.plan_over(
            &query.personal,
            query.strategy,
            self.engines.iter().map(|e| e.index()),
            self.length_floor,
        );
        let forced = match plan.strategy {
            PlannedStrategy::IndexPruned => QueryStrategy::IndexPruned,
            PlannedStrategy::Exhaustive => QueryStrategy::Exhaustive,
        };
        let sub = MatchQuery {
            personal: query.personal.clone(),
            top_k: query.top_k,
            strategy: forced,
            threshold: query.threshold,
        };
        // Scatter first, wait second: the shards work concurrently.
        let pending: Vec<PendingResponse> = self
            .engines
            .iter()
            .map(|engine| engine.submit(sub.clone()))
            .collect();
        let mut mappings: Vec<SchemaMapping> = Vec::new();
        let mut candidate_count = 0usize;
        let mut total_matches = 0usize;
        for (shard, pending) in pending.into_iter().enumerate() {
            let response = pending.wait();
            candidate_count += response.candidate_count;
            total_matches += response.total_matches;
            let map = &self.tree_maps[shard];
            mappings.extend(
                response
                    .mappings
                    .into_iter()
                    .map(|m| globalize_mapping(m, map)),
            );
        }
        // The same comparator the single engine's pipeline sorts with; per-shard
        // lists arrive pre-sorted under it, so the merged order equals the order a
        // single engine would have produced over the union.
        sort_mappings(&mut mappings);
        mappings.truncate(query.top_k);

        MatchResponse {
            fingerprint: fingerprint.to_string(),
            strategy: plan.strategy,
            cache_hit: false,
            mappings,
            candidate_count,
            total_matches,
            latency: std::time::Duration::ZERO,
        }
    }
}

/// Translate one shard-local mapping to global node ids (scores untouched).
fn globalize_mapping(mapping: SchemaMapping, tree_map: &[TreeId]) -> SchemaMapping {
    let score = mapping.score;
    let pairs = mapping
        .pairs()
        .iter()
        .map(|p| {
            let global_tree = tree_map[p.repo.tree.index()];
            MappingElement::new(
                p.personal,
                GlobalNodeId::new(global_tree, p.repo.node),
                p.similarity,
            )
        })
        .collect();
    SchemaMapping::with_score(pairs, score)
}

/// One queued unit of router work.
struct Job {
    query: MatchQuery,
    reply: SyncSender<MatchResponse>,
}

/// A sharded match-serving engine over one repository.
///
/// Construction partitions the repository by tree and builds one [`MatchEngine`]
/// per shard (each with its own index, feature store and worker pool); serving
/// scatters every query to all shards and merges the answers. The public API and
/// the answers themselves are indistinguishable from a single [`MatchEngine`] over
/// the whole repository — only capacity and the metrics breakdown differ.
pub struct ShardedEngine {
    core: Arc<RouterCore>,
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardedEngine {
    /// Partition `repo` into shards and start the shard engines and router pool.
    ///
    /// # Panics
    /// Panics when `config.engine.element.max_candidates_per_node` is set — the
    /// per-node candidate cap is a *global* cut that per-shard candidate generation
    /// cannot reproduce, so serving it sharded would violate the equivalence
    /// contract (see the module docs).
    pub fn new(repo: SchemaRepository, config: ShardedEngineConfig) -> Self {
        assert!(
            config.engine.element.max_candidates_per_node.is_none(),
            "ShardedEngine cannot serve ElementMatchConfig::max_candidates_per_node: \
             the cap keeps the globally best candidates per personal node, which \
             per-shard engines cannot determine from their local view"
        );
        let shard_count = config.shards.max(1);
        let partition = RepositoryPartition::build(&repo, shard_count, config.placement);
        let (shards, tree_maps) = partition.into_parts();
        let engines: Vec<MatchEngine> = shards
            .into_iter()
            .map(|shard| MatchEngine::new(shard, config.engine.clone()))
            .collect();
        let core = Arc::new(RouterCore {
            planner: QueryPlanner::new(config.engine.planner),
            length_floor: config.engine.element.min_similarity,
            engines,
            tree_maps,
            results: ResultCache::with_capacity(config.router_result_cache_capacity),
            inflight: Singleflight::new(),
            metrics: MetricsRegistry::new(),
        });
        let (tx, rx) = sync_channel::<Job>(config.router_queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.router_workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("xsm-shard-router-{i}"))
                    .spawn(move || loop {
                        let job = { rx.lock().unwrap().recv() };
                        match job {
                            Ok(job) => {
                                let response = core.answer(&job.query);
                                let _ = job.reply.send(response);
                            }
                            Err(_) => break,
                        }
                    })
                    .expect("failed to spawn shard-router worker")
            })
            .collect();
        ShardedEngine {
            core,
            tx: Some(tx),
            workers,
        }
    }

    /// A sharded engine with `shards` shards and default configuration otherwise.
    pub fn with_defaults(repo: SchemaRepository, shards: usize) -> Self {
        Self::new(repo, ShardedEngineConfig::default().with_shards(shards))
    }

    /// Number of shards (empty shards included).
    pub fn shard_count(&self) -> usize {
        self.core.engines.len()
    }

    /// The per-shard engines, in shard order (for inspection and tests).
    pub fn shard_engines(&self) -> &[MatchEngine] {
        &self.core.engines
    }

    /// The global tree ids placed on shard `shard`, ascending.
    pub fn shard_trees(&self, shard: usize) -> &[TreeId] {
        self.core
            .tree_maps
            .get(shard)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Enqueue one query with the router's backpressure; the returned handle blocks
    /// until the merged response is ready.
    pub fn submit(&self, query: MatchQuery) -> PendingResponse {
        let (reply, rx) = sync_channel(1);
        self.tx
            .as_ref()
            .expect("router is running until dropped")
            .send(Job { query, reply })
            .expect("shard-router workers are gone");
        PendingResponse::new(rx)
    }

    /// Answer one query, blocking until every shard contributed.
    pub fn query(&self, query: MatchQuery) -> MatchResponse {
        self.submit(query).wait()
    }

    /// Serve a whole batch through the router pool, responses in input order.
    /// Duplicate in-flight fingerprints coalesce at the router (one scatter).
    pub fn submit_batch(&self, queries: Vec<MatchQuery>) -> Vec<MatchResponse> {
        let mut pending = Vec::with_capacity(queries.len());
        for query in queries {
            pending.push(self.submit(query));
        }
        pending.into_iter().map(PendingResponse::wait).collect()
    }

    /// Answer a query on the calling thread, bypassing the router pool (identical
    /// results and accounting to [`ShardedEngine::query`]; the scatter still runs
    /// through the shard engines' queues).
    pub fn answer_inline(&self, query: &MatchQuery) -> MatchResponse {
        self.core.answer(query)
    }

    /// Router-level metrics plus the per-shard engine breakdown.
    pub fn metrics(&self) -> ShardedMetrics {
        ShardedMetrics {
            router: self.core.metrics.snapshot(),
            per_shard: self.core.engines.iter().map(|e| e.metrics()).collect(),
        }
    }

    /// Number of merged responses currently held by the router's result cache.
    pub fn result_cache_len(&self) -> usize {
        self.core.results.len()
    }

    /// Drop every cached response, router and shards alike.
    pub fn invalidate_results(&self) {
        self.core.results.clear();
        for engine in &self.core.engines {
            engine.invalidate_results();
        }
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Close the router queue and join its workers before the shard engines
        // (dropped afterwards, field order) join their own pools.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_matcher::element::ElementMatchConfig;
    use xsm_repo::{GeneratorConfig, RepositoryGenerator};
    use xsm_schema::tree::paper_personal_schema;

    fn repo() -> SchemaRepository {
        RepositoryGenerator::new(GeneratorConfig::small(17).with_target_elements(400)).generate()
    }

    fn config(shards: usize) -> ShardedEngineConfig {
        ShardedEngineConfig::default()
            .with_shards(shards)
            .with_router_workers(2)
            .with_engine_config(
                EngineConfig::default()
                    .with_workers(1)
                    .with_element_config(ElementMatchConfig::default().with_min_similarity(0.5)),
            )
    }

    fn query() -> MatchQuery {
        MatchQuery::new(paper_personal_schema())
            .with_top_k(5)
            .with_threshold(0.5)
    }

    #[test]
    fn sharded_answers_match_the_single_engine() {
        let repo = repo();
        let single = MatchEngine::new(repo.clone(), config(1).engine);
        let reference = single.query(query());
        for shards in [1, 2, 4] {
            let sharded = ShardedEngine::new(repo.clone(), config(shards));
            assert_eq!(sharded.shard_count(), shards);
            let response = sharded.query(query());
            assert_eq!(
                response.result_digest(),
                reference.result_digest(),
                "{shards} shards diverged"
            );
            assert_eq!(response.fingerprint, query().fingerprint());
        }
    }

    #[test]
    fn router_cache_and_shard_metrics_account_every_query() {
        let repo = repo();
        let sharded = ShardedEngine::new(repo, config(3));
        let first = sharded.query(query());
        let second = sharded.query(query());
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(first.result_digest(), second.result_digest());
        let metrics = sharded.metrics();
        assert_eq!(metrics.router.queries_served, 2);
        assert_eq!(metrics.router.result_cache_hits, 1);
        assert_eq!(metrics.per_shard.len(), 3);
        // The scatter touched every shard exactly once (the repeat was served
        // entirely by the router cache).
        for shard in &metrics.per_shard {
            assert_eq!(shard.queries_served, 1);
        }
        assert_eq!(sharded.result_cache_len(), 1);
        sharded.invalidate_results();
        assert_eq!(sharded.result_cache_len(), 0);
        assert!(!sharded.query(query()).cache_hit);
    }

    #[test]
    fn shard_trees_cover_the_forest() {
        let repo = repo();
        let tree_count = repo.tree_count();
        let sharded = ShardedEngine::new(repo, config(4));
        let mut seen: Vec<TreeId> = (0..4)
            .flat_map(|s| sharded.shard_trees(s).to_vec())
            .collect();
        seen.sort();
        assert_eq!(seen.len(), tree_count);
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert!(sharded.shard_trees(99).is_empty());
    }

    #[test]
    #[should_panic(expected = "max_candidates_per_node")]
    fn candidate_cap_is_rejected() {
        let config = ShardedEngineConfig::default().with_engine_config(
            EngineConfig::default()
                .with_element_config(ElementMatchConfig::default().with_max_candidates(3)),
        );
        ShardedEngine::new(repo(), config);
    }

    #[test]
    fn drop_joins_router_and_shards_cleanly() {
        let sharded = ShardedEngine::new(repo(), config(2));
        let _ = sharded.query(query());
        drop(sharded);
    }
}
