//! The [`ShardedEngine`]: one repository served by N shard services.
//!
//! A repository that outgrows a single host is partitioned **by tree**
//! ([`xsm_repo::RepositoryPartition`]): every schema mapping lives inside one tree,
//! the clustering control loop is tree-local, and the planner statistics are
//! additive over a disjoint partition — so a query scattered to all shards and
//! gathered with a deterministic merge returns **byte-identical** answers to the
//! unsharded engine. That equivalence is the module's contract, proven for
//! 1/2/3/8 shards by the property suite in `tests/shard_equivalence.rs` and over
//! loopback TCP by `tests/net_equivalence.rs`.
//!
//! ## Transport blindness
//!
//! Since the `MatchService` redesign the router holds `Box<dyn MatchService>`
//! slots, not concrete engines: a shard may be an in-process [`MatchEngine`]
//! (the [`ShardedEngine::new`] path), a [`crate::net::RemoteEngine`] speaking
//! the frame protocol to another host ([`ShardedEngine::from_services`]), or
//! any other implementation of the trait. The scatter/gather logic is identical
//! either way.
//!
//! ## Scatter
//!
//! The router resolves [`QueryStrategy::Auto`] **once**, by gathering each
//! shard's additive [`PlanStats`] and deciding globally
//! ([`QueryPlanner::plan_from_stats`]), then forces the resolved strategy onto
//! every shard — per-shard re-planning could split the fleet across strategies
//! and silently diverge from the single-engine answer. Sub-queries flow through
//! each shard service's own submission path.
//!
//! ## Gather
//!
//! Each shard answers with its local top-k; shard-local node ids are translated
//! back to global ids (tree placement preserves ascending id order, so translation
//! never disturbs a tie-break), the lists are merged with the same comparator the
//! pipeline sorts with — score descending, then repository node ids — and cut to
//! `top_k`. The global top-k is always contained in the union of per-shard top-ks,
//! so the merge loses nothing. `candidate_count` and `total_matches` are sums.
//!
//! ## Partial failure
//!
//! A shard that fails — submission rejected, transport gave up, deadline
//! elapsed — does not fail the query: the router **degrades** to the shards
//! that answered, marks the merged response
//! [`MatchResponse::incomplete`] and lists the missing shard indexes in
//! [`MatchResponse::failed_shards`]. A degraded answer is never *wrong* (every
//! mapping is a true mapping of the surviving slice) and is never cached, so
//! recovered shards rejoin on the next submission. Only when **every** shard
//! fails does the query return the last shard's [`ServiceError`].
//!
//! ## Above the router
//!
//! The router carries its own bounded LRU [`ResultCache`] and [`Singleflight`] map
//! keyed by the *original* query fingerprint (requested strategy included):
//! concurrent identical queries coalesce onto one scatter, repeats are answered
//! without touching any shard. [`ShardedEngine::metrics`] reports the router's own
//! counters plus the per-shard breakdown.
//!
//! ## Live mutation
//!
//! A fleet with in-process shards is **live**: [`ShardedEngine::append_trees`]
//! routes new trees by the construction placement (hash placement is a pure
//! function of the tree, so existing trees never move) and
//! [`ShardedEngine::delete_trees`] tombstones by global id. Both step every
//! shard — mutated or not — to one target generation under the swap gate's
//! write side, so an in-flight scatter never merges across a half-mutated
//! fleet and the mixed-generation guard keeps holding.
//!
//! ## Restrictions
//!
//! [`xsm_matcher::element::ElementMatchConfig::max_candidates_per_node`] must be
//! unset: the cap keeps the
//! globally best candidates per personal node, which per-shard engines cannot
//! reconstruct from local views (each would cap against its own candidates, keeping
//! pairs the global cut would drop). Construction panics (or the builder and
//! [`ShardedEngine::from_services`] return [`ConfigError`]) rather than serving
//! subtly different answers.

use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use serde::{Deserialize, Serialize};
use xsm_matcher::generator::sort_mappings;
use xsm_matcher::{MappingElement, SchemaMapping};
use xsm_repo::{tree_hash_shard, RepositoryPartition, SchemaRepository, ShardPlacement};
use xsm_schema::{GlobalNodeId, SchemaTree, TreeId};

use crate::cache::{ResultCache, DEFAULT_RESULT_CACHE_CAPACITY};
use crate::engine::{EngineConfig, MatchEngine, PendingResponse};
use crate::error::{ConfigError, ServiceError, ServiceResult};
use crate::metrics::{EngineMetrics, MetricsRegistry};
use crate::planner::{PlanStats, QueryPlanner};
use crate::query::{MatchQuery, MatchResponse, PlannedStrategy, QueryStrategy};
use crate::service::MatchService;
use crate::singleflight::Singleflight;
use crate::swap::SwappableEngine;

/// Construction-time configuration of a [`ShardedEngine`].
///
/// `#[non_exhaustive]`: build one with [`ShardedEngineConfig::builder`]
/// (validating) or [`ShardedEngineConfig::default`] plus the `with_*` methods
/// (clamping).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ShardedEngineConfig {
    /// Number of shards the repository is partitioned into (`>= 1`; shards beyond
    /// the tree count stay empty and answer instantly).
    pub shards: usize,
    /// How trees are placed onto shards.
    pub placement: ShardPlacement,
    /// Router worker threads scattering/gathering queries (`>= 1`).
    pub router_workers: usize,
    /// Capacity of the router's bounded submission queue (backpressure on
    /// submitters, exactly like the engine's).
    pub router_queue_capacity: usize,
    /// Capacity of the router-level result cache (whole merged responses, LRU).
    pub router_result_cache_capacity: usize,
    /// Configuration applied to **every** shard engine (workers per shard, element
    /// matching, clustering variant, objective, planner tuning). For
    /// [`ShardedEngine::from_services`] only the planner tuning and the element
    /// floor are read — the remote shards were configured at their own
    /// construction, and the caller is responsible for keeping them consistent.
    pub engine: EngineConfig,
}

impl Default for ShardedEngineConfig {
    fn default() -> Self {
        ShardedEngineConfig {
            shards: 2,
            placement: ShardPlacement::Contiguous,
            router_workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4),
            router_queue_capacity: 64,
            router_result_cache_capacity: DEFAULT_RESULT_CACHE_CAPACITY,
            engine: EngineConfig::default(),
        }
    }
}

impl ShardedEngineConfig {
    /// Builder-style shard-count override (`0` is clamped to `1`).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Builder-style placement override.
    pub fn with_placement(mut self, placement: ShardPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Builder-style router worker-count override (`0` is clamped to `1`).
    pub fn with_router_workers(mut self, workers: usize) -> Self {
        self.router_workers = workers.max(1);
        self
    }

    /// Builder-style router queue-capacity override.
    pub fn with_router_queue_capacity(mut self, capacity: usize) -> Self {
        self.router_queue_capacity = capacity.max(1);
        self
    }

    /// Builder-style router result-cache capacity override.
    pub fn with_router_result_cache_capacity(mut self, capacity: usize) -> Self {
        self.router_result_cache_capacity = capacity.max(1);
        self
    }

    /// Builder-style per-shard engine configuration override.
    pub fn with_engine_config(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// A validating builder seeded with the default configuration; `build()`
    /// rejects nonsense values (and the sharded-incompatible per-node candidate
    /// cap) with a [`ConfigError`] instead of clamping or panicking.
    pub fn builder() -> ShardedEngineConfigBuilder {
        ShardedEngineConfigBuilder {
            config: ShardedEngineConfig::default(),
        }
    }
}

/// Validating builder for [`ShardedEngineConfig`]; see
/// [`ShardedEngineConfig::builder`].
#[derive(Debug, Clone)]
pub struct ShardedEngineConfigBuilder {
    config: ShardedEngineConfig,
}

impl ShardedEngineConfigBuilder {
    /// Number of shards.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Tree-placement policy.
    pub fn placement(mut self, placement: ShardPlacement) -> Self {
        self.config.placement = placement;
        self
    }

    /// Router worker-thread count.
    pub fn router_workers(mut self, workers: usize) -> Self {
        self.config.router_workers = workers;
        self
    }

    /// Router submission-queue capacity.
    pub fn router_queue_capacity(mut self, capacity: usize) -> Self {
        self.config.router_queue_capacity = capacity;
        self
    }

    /// Router result-cache capacity.
    pub fn router_result_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.router_result_cache_capacity = capacity;
        self
    }

    /// Per-shard engine configuration.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.config.engine = engine;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<ShardedEngineConfig, ConfigError> {
        if self.config.shards == 0 {
            return Err(ConfigError::new("shards", "must be >= 1"));
        }
        if self.config.router_workers == 0 {
            return Err(ConfigError::new("router_workers", "must be >= 1"));
        }
        if self.config.router_queue_capacity == 0 {
            return Err(ConfigError::new("router_queue_capacity", "must be >= 1"));
        }
        if self.config.router_result_cache_capacity == 0 {
            return Err(ConfigError::new(
                "router_result_cache_capacity",
                "must be >= 1",
            ));
        }
        if self.config.engine.element.max_candidates_per_node.is_some() {
            return Err(ConfigError::new(
                "engine.element.max_candidates_per_node",
                "the per-node candidate cap is a global cut that per-shard \
                 candidate generation cannot reproduce",
            ));
        }
        Ok(self.config)
    }
}

/// Router-level and per-shard serving metrics of a [`ShardedEngine`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedMetrics {
    /// The router's own counters: queries served (merged responses), router
    /// result-cache hits, coalesced queries, per-strategy scatter counts,
    /// degraded/failed counts and end-to-end (scatter + gather) latency
    /// quantiles.
    pub router: EngineMetrics,
    /// One [`EngineMetrics`] per shard service, in shard order (zeroed for a
    /// shard whose snapshot was unreachable). Every scattered query appears
    /// once in each answering shard's `queries_served`.
    pub per_shard: Vec<EngineMetrics>,
}

/// Everything the router workers share.
struct RouterCore {
    services: Vec<Box<dyn MatchService>>,
    /// Per shard: local `TreeId` index → global `TreeId` (ascending). Behind a
    /// lock because live appends extend the maps; tombstoned trees **stay** in
    /// their map (shard-local ids are positional and never renumbered by a
    /// delete). Lock order: always after `swap_gate`.
    tree_maps: RwLock<Vec<Vec<TreeId>>>,
    planner: QueryPlanner,
    /// The shard engines' element floor, anchoring the planner's length window —
    /// the router must estimate with the same window the shards will generate with.
    length_floor: f64,
    results: ResultCache,
    inflight: Singleflight<ServiceResult<MatchResponse>>,
    metrics: MetricsRegistry,
    /// The generation-swap gate. Every query holds a **read** lock across its
    /// whole cache-lookup → scatter → merge → cache-insert span;
    /// [`ShardedEngine::swap_generation`] takes the **write** lock to flip
    /// all shards and clear the router cache atomically. The read span must
    /// cover the cache insert (which happens *after* the scatter returns):
    /// otherwise a pre-swap scatter could insert its old-generation response
    /// into the freshly cleared cache and serve it after the flip.
    swap_gate: RwLock<()>,
}

impl RouterCore {
    /// Answer one query at the router: result cache → singleflight → scatter to
    /// every shard → gather/merge. Runs the same `serve_with_caches` discipline as
    /// `EngineCore::answer`, so the sharded serving path inherits the engine's
    /// determinism and accounting contract by construction.
    fn answer(&self, query: &MatchQuery) -> ServiceResult<MatchResponse> {
        // Hold the swap gate's read side for the entire serve — see the
        // `swap_gate` field docs for why the span includes the cache insert.
        let _gate = self
            .swap_gate
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        crate::engine::serve_with_caches(
            &self.results,
            &self.inflight,
            &self.metrics,
            query.fingerprint(),
            |fingerprint| self.scatter_gather(query, fingerprint),
        )
    }

    /// One scatter/gather pass: plan globally from the shards' additive
    /// statistics, fan the sub-query out to every reachable shard, merge the
    /// answers deterministically, degrading to the survivors on partial
    /// failure.
    fn scatter_gather(
        &self,
        query: &MatchQuery,
        fingerprint: &str,
    ) -> ServiceResult<MatchResponse> {
        let mut failed: Vec<u32> = Vec::new();
        let mut last_error: Option<ServiceError> = None;
        let mut available = vec![true; self.services.len()];

        // Plan once, globally. `Auto` needs every reachable shard's statistics;
        // a shard that cannot even report stats is marked failed up front and
        // excluded from the scatter. Forced strategies skip the stats pass
        // entirely — exactly like the single engine's planner.
        let plan = match query.strategy {
            QueryStrategy::Auto => {
                let mut stats = PlanStats::default();
                for (shard, service) in self.services.iter().enumerate() {
                    match service.plan_stats(&query.personal, self.length_floor) {
                        Ok(s) => stats = stats.merge(s),
                        Err(error) => {
                            available[shard] = false;
                            failed.push(shard as u32);
                            last_error = Some(error);
                        }
                    }
                }
                if failed.len() == self.services.len() {
                    return Err(last_error.unwrap_or_else(|| {
                        ServiceError::internal("sharded engine has no shards")
                    }));
                }
                self.planner
                    .plan_from_stats(&query.personal, query.strategy, stats)
            }
            QueryStrategy::IndexPruned | QueryStrategy::Exhaustive => {
                self.planner
                    .plan_from_stats(&query.personal, query.strategy, PlanStats::default())
            }
        };
        let forced = match plan.strategy {
            PlannedStrategy::IndexPruned => QueryStrategy::IndexPruned,
            PlannedStrategy::Exhaustive => QueryStrategy::Exhaustive,
        };
        let sub = MatchQuery {
            personal: query.personal.clone(),
            top_k: query.top_k,
            strategy: forced,
            threshold: query.threshold,
        };
        // Scatter first, wait second: the shards work concurrently.
        let submitted: Vec<(usize, ServiceResult<PendingResponse>)> = self
            .services
            .iter()
            .enumerate()
            .filter(|(shard, _)| available[*shard])
            .map(|(shard, service)| (shard, service.submit(sub.clone())))
            .collect();
        let mut mappings: Vec<SchemaMapping> = Vec::new();
        let mut candidate_count = 0usize;
        let mut total_matches = 0usize;
        let mut answered = 0usize;
        let mut nested_incomplete = false;
        let mut generation: Option<u64> = None;
        let mut mixed_generations = false;
        let tree_maps = self
            .tree_maps
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (shard, outcome) in submitted {
            match outcome.and_then(PendingResponse::wait) {
                Ok(response) => {
                    answered += 1;
                    candidate_count += response.candidate_count;
                    total_matches += response.total_matches;
                    // Merging shards that answered from different repository
                    // revisions would produce an answer no repository ever
                    // had; the swap gate makes this impossible for swappable
                    // fleets, so disagreement here is a deployment bug.
                    match generation {
                        None => generation = Some(response.generation),
                        Some(g) if g != response.generation => mixed_generations = true,
                        Some(_) => {}
                    }
                    // A nested router may itself have degraded; our own
                    // `failed_shards` lists only direct children, but the
                    // incompleteness must propagate.
                    nested_incomplete |= response.incomplete;
                    let map = &tree_maps[shard];
                    mappings.extend(
                        response
                            .mappings
                            .into_iter()
                            .map(|m| globalize_mapping(m, map)),
                    );
                }
                Err(error) => {
                    failed.push(shard as u32);
                    last_error = Some(error);
                }
            }
        }
        if answered == 0 {
            return Err(last_error
                .unwrap_or_else(|| ServiceError::internal("sharded engine has no shards")));
        }
        if mixed_generations {
            return Err(ServiceError::internal(
                "mixed-generation merge: shards answered from different repository generations",
            ));
        }
        // The same comparator the single engine's pipeline sorts with; per-shard
        // lists arrive pre-sorted under it, so the merged order equals the order a
        // single engine would have produced over the union.
        sort_mappings(&mut mappings);
        mappings.truncate(query.top_k);
        failed.sort_unstable();

        Ok(MatchResponse {
            fingerprint: fingerprint.to_string(),
            strategy: plan.strategy,
            cache_hit: false,
            mappings,
            candidate_count,
            total_matches,
            incomplete: nested_incomplete || !failed.is_empty(),
            failed_shards: failed,
            generation: generation.unwrap_or(0),
            latency: std::time::Duration::ZERO,
        })
    }
}

/// Translate one shard-local mapping to global node ids (scores untouched).
fn globalize_mapping(mapping: SchemaMapping, tree_map: &[TreeId]) -> SchemaMapping {
    let score = mapping.score;
    let pairs = mapping
        .pairs()
        .iter()
        .map(|p| {
            let global_tree = tree_map[p.repo.tree.index()];
            MappingElement::new(
                p.personal,
                GlobalNodeId::new(global_tree, p.repo.node),
                p.similarity,
            )
        })
        .collect();
    SchemaMapping::with_score(pairs, score)
}

/// One queued unit of router work.
struct Job {
    query: MatchQuery,
    reply: SyncSender<ServiceResult<MatchResponse>>,
}

/// A sharded match-serving engine over one repository.
///
/// Construction partitions the repository by tree and builds one [`MatchEngine`]
/// per shard (each with its own index, feature store and worker pool); serving
/// scatters every query to all shards and merges the answers. The public API and
/// the answers themselves are indistinguishable from a single [`MatchEngine`] over
/// the whole repository — only capacity and the metrics breakdown differ. With
/// [`ShardedEngine::from_services`] the shards can live anywhere a
/// [`MatchService`] implementation reaches — including other hosts via
/// [`crate::net::RemoteEngine`].
pub struct ShardedEngine {
    core: Arc<RouterCore>,
    /// The in-process shard engines when built by [`ShardedEngine::new`]
    /// (empty for [`ShardedEngine::from_services`]).
    local_engines: Vec<Arc<MatchEngine>>,
    /// The placement policy live appends route with (from the construction
    /// config; the caller owns its consistency with how the shards were
    /// actually partitioned when restoring from snapshots).
    placement: ShardPlacement,
    /// Per-shard swap handles when built by
    /// [`ShardedEngine::from_swappable_snapshot_paths`] (empty otherwise);
    /// what [`ShardedEngine::swap_generation`] flips.
    swappable_engines: Vec<Arc<SwappableEngine>>,
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardedEngine {
    /// Partition `repo` into shards and start the shard engines and router pool.
    ///
    /// # Panics
    /// Panics when `config.engine.element.max_candidates_per_node` is set — the
    /// per-node candidate cap is a *global* cut that per-shard candidate generation
    /// cannot reproduce, so serving it sharded would violate the equivalence
    /// contract (see the module docs). [`ShardedEngineConfig::builder`] rejects
    /// the same configuration with a [`ConfigError`] instead.
    pub fn new(repo: SchemaRepository, config: ShardedEngineConfig) -> Self {
        assert!(
            config.engine.element.max_candidates_per_node.is_none(),
            "ShardedEngine cannot serve ElementMatchConfig::max_candidates_per_node: \
             the cap keeps the globally best candidates per personal node, which \
             per-shard engines cannot determine from their local view"
        );
        let shard_count = config.shards.max(1);
        let partition = RepositoryPartition::build(&repo, shard_count, config.placement);
        let (shards, tree_maps) = partition.into_parts();
        let local_engines: Vec<Arc<MatchEngine>> = shards
            .into_iter()
            .map(|shard| Arc::new(MatchEngine::new(shard, config.engine.clone())))
            .collect();
        let services: Vec<Box<dyn MatchService>> = local_engines
            .iter()
            .map(|engine| Box::new(Arc::clone(engine)) as Box<dyn MatchService>)
            .collect();
        Self::start(services, tree_maps, local_engines, config)
    }

    /// A sharded engine with `shards` shards and default configuration otherwise.
    pub fn with_defaults(repo: SchemaRepository, shards: usize) -> Self {
        Self::new(repo, ShardedEngineConfig::default().with_shards(shards))
    }

    /// Build a router over externally-provided shard services — in-process
    /// engines, [`crate::net::RemoteEngine`] clients, fault-injection wrappers,
    /// or any mix. `tree_maps[shard]` translates shard-local tree indexes back
    /// to global [`TreeId`]s, exactly as
    /// [`xsm_repo::RepositoryPartition::into_parts`] produces them.
    ///
    /// The caller owns the equivalence contract's preconditions: every service
    /// must serve a disjoint slice of the same repository, built with the same
    /// element/clustering/objective configuration that `config.engine`
    /// describes (the router reads only its planner tuning and element floor).
    pub fn from_services(
        services: Vec<Box<dyn MatchService>>,
        tree_maps: Vec<Vec<TreeId>>,
        config: ShardedEngineConfig,
    ) -> Result<Self, ConfigError> {
        if services.is_empty() {
            return Err(ConfigError::new("services", "must not be empty"));
        }
        if services.len() != tree_maps.len() {
            return Err(ConfigError::new(
                "tree_maps",
                "must have exactly one entry per service",
            ));
        }
        if config.engine.element.max_candidates_per_node.is_some() {
            return Err(ConfigError::new(
                "engine.element.max_candidates_per_node",
                "the per-node candidate cap is a global cut that per-shard \
                 candidate generation cannot reproduce",
            ));
        }
        Ok(Self::start(services, tree_maps, Vec::new(), config))
    }

    /// Restart a sharded engine from per-shard snapshot files — one path per
    /// shard, in shard order, as produced by
    /// [`crate::snapshot::write_shard_snapshots`]. Every shard engine is
    /// reconstructed from its file (no index rebuild), the router's tree maps
    /// come from the snapshots themselves, and all shards must carry the same
    /// generation stamp — a mixed fleet fails closed with
    /// [`xsm_repo::SnapshotError::GenerationMismatch`] rather than serving a
    /// repository that never existed.
    pub fn from_snapshot_paths(
        paths: &[impl AsRef<std::path::Path>],
        config: ShardedEngineConfig,
    ) -> Result<Self, crate::snapshot::SnapshotServeError> {
        Self::from_snapshot_paths_inner(paths, config, None)
    }

    /// [`ShardedEngine::from_snapshot_paths`], additionally requiring every
    /// shard snapshot to carry exactly `generation` — use when the expected
    /// repository revision is known out of band (e.g. from a fleet manifest).
    pub fn from_snapshot_paths_expecting(
        paths: &[impl AsRef<std::path::Path>],
        config: ShardedEngineConfig,
        generation: u64,
    ) -> Result<Self, crate::snapshot::SnapshotServeError> {
        Self::from_snapshot_paths_inner(paths, config, Some(generation))
    }

    fn from_snapshot_paths_inner(
        paths: &[impl AsRef<std::path::Path>],
        config: ShardedEngineConfig,
        expected_generation: Option<u64>,
    ) -> Result<Self, crate::snapshot::SnapshotServeError> {
        use xsm_repo::snapshot::{SnapshotError, SnapshotReader};
        if paths.is_empty() {
            return Err(ConfigError::new("paths", "must not be empty").into());
        }
        if config.engine.element.max_candidates_per_node.is_some() {
            return Err(ConfigError::new(
                "engine.element.max_candidates_per_node",
                "the per-node candidate cap is a global cut that per-shard \
                 candidate generation cannot reproduce",
            )
            .into());
        }
        let mut expected_generation = expected_generation;
        let mut local_engines = Vec::with_capacity(paths.len());
        let mut tree_maps = Vec::with_capacity(paths.len());
        for path in paths {
            let start = std::time::Instant::now();
            let snapshot = SnapshotReader::read(path.as_ref())?;
            match expected_generation {
                None => expected_generation = Some(snapshot.generation),
                Some(expected) if snapshot.generation != expected => {
                    return Err(SnapshotError::GenerationMismatch {
                        expected,
                        found: snapshot.generation,
                    }
                    .into());
                }
                Some(_) => {}
            }
            tree_maps.push(snapshot.tree_map.clone());
            local_engines.push(Arc::new(MatchEngine::from_snapshot_parts(
                snapshot,
                config.engine.clone(),
                start,
            )));
        }
        let services: Vec<Box<dyn MatchService>> = local_engines
            .iter()
            .map(|engine| Box::new(Arc::clone(engine)) as Box<dyn MatchService>)
            .collect();
        Ok(Self::start(services, tree_maps, local_engines, config))
    }

    /// [`ShardedEngine::from_snapshot_paths`], but every shard is wrapped in a
    /// [`SwappableEngine`] so the whole fleet can later be flipped to a newer
    /// snapshot generation **under live traffic** with
    /// [`ShardedEngine::swap_generation`] — no restart, no failed queries, no
    /// mixed-generation response.
    pub fn from_swappable_snapshot_paths(
        paths: &[impl AsRef<std::path::Path>],
        config: ShardedEngineConfig,
    ) -> Result<Self, crate::snapshot::SnapshotServeError> {
        use xsm_repo::snapshot::{SnapshotError, SnapshotReader};
        if paths.is_empty() {
            return Err(ConfigError::new("paths", "must not be empty").into());
        }
        if config.engine.element.max_candidates_per_node.is_some() {
            return Err(ConfigError::new(
                "engine.element.max_candidates_per_node",
                "the per-node candidate cap is a global cut that per-shard \
                 candidate generation cannot reproduce",
            )
            .into());
        }
        let mut expected_generation: Option<u64> = None;
        let mut swappable = Vec::with_capacity(paths.len());
        let mut tree_maps = Vec::with_capacity(paths.len());
        for path in paths {
            let start = std::time::Instant::now();
            let snapshot = SnapshotReader::read(path.as_ref())?;
            match expected_generation {
                None => expected_generation = Some(snapshot.generation),
                Some(expected) if snapshot.generation != expected => {
                    return Err(SnapshotError::GenerationMismatch {
                        expected,
                        found: snapshot.generation,
                    }
                    .into());
                }
                Some(_) => {}
            }
            tree_maps.push(snapshot.tree_map.clone());
            swappable.push(Arc::new(SwappableEngine::from_snapshot_parts(
                snapshot,
                config.engine.clone(),
                start,
            )));
        }
        let services: Vec<Box<dyn MatchService>> = swappable
            .iter()
            .map(|engine| Box::new(Arc::clone(engine)) as Box<dyn MatchService>)
            .collect();
        let mut sharded = Self::start(services, tree_maps, Vec::new(), config);
        sharded.swappable_engines = swappable;
        Ok(sharded)
    }

    /// Flip the whole fleet to the snapshot generation in `paths` (one file
    /// per shard, shard order) under live traffic. The sequence:
    ///
    /// 1. **Validate** — peek every header; refuse a wrong shard count, a
    ///    mixed-generation set ([`xsm_repo::SnapshotError::GenerationMismatch`])
    ///    or a snapshot that moves trees between shards (the router's tree
    ///    maps are fixed; rebalancing is a different operation).
    /// 2. **Load beside** — build every shard's new engine next to the
    ///    serving one, traffic undisturbed.
    /// 3. **Flip under the gate** — take the swap gate's write lock (queries
    ///    hold read locks for their full serve span, so the gate waits for
    ///    in-flight scatters and blocks new ones for microseconds), install
    ///    every new engine, clear the router's result cache (its entries
    ///    answer for the old generation), release.
    /// 4. **Drain** — drop the old engines outside the gate; each finishes
    ///    its queued queries and joins its workers.
    ///
    /// Returns the new serving generation. On any validation or load error
    /// the old generation keeps serving untouched. Only routers built with
    /// [`ShardedEngine::from_swappable_snapshot_paths`] can swap.
    pub fn swap_generation(
        &self,
        paths: &[impl AsRef<std::path::Path>],
    ) -> Result<u64, crate::snapshot::SnapshotServeError> {
        use xsm_repo::snapshot::{SnapshotError, SnapshotReader};
        if self.swappable_engines.is_empty() {
            return Err(ConfigError::new(
                "swap",
                "this router has fixed shards; build it with \
                 from_swappable_snapshot_paths to enable generation swaps",
            )
            .into());
        }
        if paths.len() != self.swappable_engines.len() {
            return Err(
                ConfigError::new("paths", "must have exactly one snapshot per shard").into(),
            );
        }
        // Validate every header before loading anything: one bad file must
        // leave the fleet untouched, and a mixed-generation set must never
        // start flipping.
        let mut generation: Option<u64> = None;
        let tree_maps = self
            .core
            .tree_maps
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for (shard, path) in paths.iter().enumerate() {
            let header = SnapshotReader::peek(path.as_ref())?;
            match generation {
                None => generation = Some(header.generation),
                Some(expected) if header.generation != expected => {
                    return Err(SnapshotError::GenerationMismatch {
                        expected,
                        found: header.generation,
                    }
                    .into());
                }
                Some(_) => {}
            }
            let expected_map = &tree_maps[shard];
            let same_placement = header.tree_map.len() == expected_map.len()
                && header
                    .tree_map
                    .iter()
                    .zip(expected_map)
                    .all(|(&raw, tree)| raw == tree.0);
            if !same_placement {
                return Err(ConfigError::new(
                    "tree_map",
                    "a generation swap must keep every tree on its shard; \
                     re-placing trees needs a fleet rebuild",
                )
                .into());
            }
        }
        let generation = generation.expect("paths verified non-empty");
        // Release the map lock before taking the swap gate below: the lock
        // order everywhere is gate first, maps second.
        drop(tree_maps);
        // Load every new engine beside the serving ones — the expensive part,
        // fully concurrent with traffic.
        let mut next_engines = Vec::with_capacity(paths.len());
        for (swappable, path) in self.swappable_engines.iter().zip(paths) {
            next_engines.push(swappable.load_next(path.as_ref(), generation)?);
        }
        // The flip: exclusive gate, every shard, cache clear — one atomic
        // cutover from the router's point of view.
        let old_engines: Vec<Arc<MatchEngine>> = {
            let _gate = self
                .core
                .swap_gate
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let old = self
                .swappable_engines
                .iter()
                .zip(next_engines)
                .map(|(swappable, next)| swappable.install(next))
                .collect();
            self.core.results.clear();
            old
        };
        self.core.metrics.record_generation_swap();
        // Drain outside the gate: late in-flight waits on the old generation
        // finish here without stalling new traffic.
        drop(old_engines);
        Ok(generation)
    }

    /// The generation currently served by a swappable fleet (`None` when the
    /// router was not built with
    /// [`ShardedEngine::from_swappable_snapshot_paths`]).
    pub fn serving_generation(&self) -> Option<u64> {
        self.swappable_engines.first().map(|s| s.generation())
    }

    /// The error every live mutation returns on a router without in-process
    /// shard engines (built over external services or swappable handles):
    /// the router cannot reach inside a remote shard to mutate it.
    fn require_local_engines(&self) -> ServiceResult<()> {
        if self.local_engines.is_empty() {
            return Err(ServiceError::bad_request(
                "this router serves fixed shard services; live mutation needs \
                 in-process shards (ShardedEngine::new or from_snapshot_paths)",
            ));
        }
        Ok(())
    }

    /// Append new trees to the live fleet without a rebuild, routed by the
    /// construction-time [`ShardPlacement`]: [`ShardPlacement::TreeHash`]
    /// sends each tree to [`xsm_repo::tree_hash_shard`] (a pure function of
    /// the tree, so existing placements never move — see the append-stability
    /// property in `xsm-repo`); [`ShardPlacement::Contiguous`] extends the
    /// last shard (the only placement that keeps global id ranges contiguous).
    ///
    /// Every shard — mutated or not — lands on the same target generation
    /// (max over the fleet, plus one), so the mixed-generation merge guard
    /// holds across the mutation. The router's result cache is invalidated.
    /// Returns the global [`TreeId`]s assigned, in input order.
    pub fn append_trees(&self, trees: Vec<SchemaTree>) -> ServiceResult<Vec<TreeId>> {
        self.require_local_engines()?;
        if trees.is_empty() {
            return Err(ServiceError::bad_request("append batch must not be empty"));
        }
        let shard_count = self.local_engines.len();
        // Placement is a pure function of the tree: route before locking.
        let routed: Vec<usize> = trees
            .iter()
            .map(|tree| match self.placement {
                ShardPlacement::TreeHash => tree_hash_shard(tree, shard_count),
                ShardPlacement::Contiguous => shard_count - 1,
            })
            .collect();
        // The gate's write side drains every in-flight scatter (queries hold
        // its read side across their whole serve span) and blocks new ones
        // while the fleet steps generations — scatters can never observe a
        // half-mutated fleet. Lock order: gate, then maps.
        let _gate = self
            .core
            .swap_gate
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut tree_maps = self
            .core
            .tree_maps
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let target = self.fleet_target_generation();
        // Global ids continue past every id ever assigned — tombstoned trees
        // stay in the maps, so the sum counts them and ids are never reused.
        let next_global = tree_maps.iter().map(Vec::len).sum::<usize>() as u32;
        let mut assigned = Vec::with_capacity(trees.len());
        let mut per_shard_trees: Vec<Vec<SchemaTree>> = vec![Vec::new(); shard_count];
        let mut per_shard_ids: Vec<Vec<TreeId>> = vec![Vec::new(); shard_count];
        for (global, (tree, &shard)) in (next_global..).zip(trees.into_iter().zip(&routed)) {
            let global = TreeId(global);
            assigned.push(global);
            per_shard_trees[shard].push(tree);
            per_shard_ids[shard].push(global);
        }
        for (shard, engine) in self.local_engines.iter().enumerate() {
            if per_shard_trees[shard].is_empty() {
                engine.advance_generation(target)?;
            } else {
                // Local ids are assigned sequentially in batch order, matching
                // the order the map entries are pushed; global ids ascend, so
                // the map's ascending invariant is preserved.
                engine.append_trees_at(std::mem::take(&mut per_shard_trees[shard]), target)?;
                tree_maps[shard].extend_from_slice(&per_shard_ids[shard]);
            }
        }
        self.core.results.clear();
        Ok(assigned)
    }

    /// Tombstone a batch of trees across the fleet without a rebuild. The
    /// whole batch is validated against the router's maps and every shard's
    /// tombstone set **before** any shard mutates — a half-applied cross-shard
    /// delete would leave the fleet on diverged generations. Tombstoned trees
    /// stay in the tree maps (local ids are positional); each shard reclaims
    /// its arena independently once its dead fraction crosses
    /// [`EngineConfig::compaction_threshold`]. Returns the number of postings
    /// tombstoned fleet-wide.
    pub fn delete_trees(&self, trees: &[TreeId]) -> ServiceResult<usize> {
        self.require_local_engines()?;
        if trees.is_empty() {
            return Err(ServiceError::bad_request("delete batch must not be empty"));
        }
        let mut sorted = trees.to_vec();
        sorted.sort_unstable();
        if let Some(dup) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(ServiceError::bad_request(format!(
                "tree {:?} appears twice in the delete batch",
                dup[0]
            )));
        }
        let _gate = self
            .core
            .swap_gate
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let tree_maps = self
            .core
            .tree_maps
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Route every victim to (shard, local id) and validate it is alive.
        let mut per_shard: Vec<Vec<TreeId>> = vec![Vec::new(); self.local_engines.len()];
        for &tree in trees {
            let Some((shard, local)) = tree_maps.iter().enumerate().find_map(|(shard, map)| {
                map.binary_search(&tree)
                    .ok()
                    .map(|local| (shard, TreeId(local as u32)))
            }) else {
                return Err(ServiceError::bad_request(format!("unknown tree {tree:?}")));
            };
            if self.local_engines[shard]
                .tombstoned_trees()
                .binary_search(&local)
                .is_ok()
            {
                return Err(ServiceError::bad_request(format!(
                    "tree {tree:?} is already deleted"
                )));
            }
            per_shard[shard].push(local);
        }
        let target = self.fleet_target_generation();
        let mut dropped = 0usize;
        for (shard, engine) in self.local_engines.iter().enumerate() {
            if per_shard[shard].is_empty() {
                engine.advance_generation(target)?;
            } else {
                dropped += engine.delete_trees_at(&per_shard[shard], target)?;
            }
        }
        self.core.results.clear();
        Ok(dropped)
    }

    /// Force arena compaction on every in-process shard (physical-only: no
    /// generation step, answers unchanged, caches stay valid — see
    /// [`MatchEngine::compact`]). Returns the postings reclaimed fleet-wide.
    pub fn compact(&self) -> usize {
        self.local_engines.iter().map(|e| e.compact()).sum()
    }

    /// The generation the in-process fleet serves (`None` without in-process
    /// shards). Router mutations keep every shard in step, so the fleet has
    /// one well-defined generation.
    pub fn generation(&self) -> Option<u64> {
        self.local_engines.first().map(|e| e.generation())
    }

    /// Every tombstoned tree across the fleet as global ids, ascending.
    pub fn tombstoned_trees(&self) -> Vec<TreeId> {
        let tree_maps = self
            .core
            .tree_maps
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut dead: Vec<TreeId> = self
            .local_engines
            .iter()
            .enumerate()
            .flat_map(|(shard, engine)| {
                let map = &tree_maps[shard];
                engine
                    .tombstoned_trees()
                    .into_iter()
                    .map(|local| map[local.index()])
                    .collect::<Vec<_>>()
            })
            .collect();
        dead.sort_unstable();
        dead
    }

    /// The generation every shard lands on after a mutation: one past the
    /// fleet maximum (the shards agree whenever the fleet is healthy, but a
    /// max survives a half-applied mutation that errored midway).
    fn fleet_target_generation(&self) -> u64 {
        self.local_engines
            .iter()
            .map(|e| e.generation())
            .max()
            .unwrap_or(0)
            + 1
    }

    /// Shared tail of both constructors: build the router core and its pool.
    fn start(
        services: Vec<Box<dyn MatchService>>,
        tree_maps: Vec<Vec<TreeId>>,
        local_engines: Vec<Arc<MatchEngine>>,
        config: ShardedEngineConfig,
    ) -> Self {
        let core = Arc::new(RouterCore {
            planner: QueryPlanner::new(config.engine.planner),
            length_floor: config.engine.element.min_similarity,
            services,
            tree_maps: RwLock::new(tree_maps),
            results: ResultCache::with_capacity(config.router_result_cache_capacity),
            inflight: Singleflight::new(),
            metrics: MetricsRegistry::new(),
            swap_gate: RwLock::new(()),
        });
        let (tx, rx) = sync_channel::<Job>(config.router_queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..config.router_workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("xsm-shard-router-{i}"))
                    .spawn(move || loop {
                        let job = { rx.lock().unwrap().recv() };
                        match job {
                            Ok(job) => {
                                let response = core.answer(&job.query);
                                let _ = job.reply.send(response);
                            }
                            Err(_) => break,
                        }
                    })
                    .expect("failed to spawn shard-router worker")
            })
            .collect();
        ShardedEngine {
            core,
            local_engines,
            placement: config.placement,
            swappable_engines: Vec::new(),
            tx: Some(tx),
            workers,
        }
    }

    /// Number of shards (empty shards included).
    pub fn shard_count(&self) -> usize {
        self.core.services.len()
    }

    /// The in-process shard engines in shard order (for inspection and tests);
    /// empty when the router was built over external services with
    /// [`ShardedEngine::from_services`].
    pub fn shard_engines(&self) -> &[Arc<MatchEngine>] {
        &self.local_engines
    }

    /// The global tree ids placed on shard `shard`, ascending (owned: the
    /// maps live behind the append lock). Tombstoned trees stay listed —
    /// shard-local ids are positional.
    pub fn shard_trees(&self, shard: usize) -> Vec<TreeId> {
        self.core
            .tree_maps
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(shard)
            .cloned()
            .unwrap_or_default()
    }

    /// Enqueue one query with the router's backpressure; the returned handle blocks
    /// until the merged response (or the serving error) is ready.
    pub fn submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse> {
        let (reply, rx) = sync_channel(1);
        self.tx
            .as_ref()
            .expect("router is running until dropped")
            .send(Job { query, reply })
            .map_err(|_| ServiceError::internal("shard-router worker pool is gone"))?;
        Ok(PendingResponse::from_channel(rx))
    }

    /// Answer one query, blocking until the merged response is ready.
    ///
    /// # Panics
    /// Panics if serving returned a [`ServiceError`] — which cannot happen with
    /// in-process shards, but can with remote ones (every shard unreachable).
    /// Use [`ShardedEngine::submit`] for the `Result`-returning path when shards
    /// live behind a real transport.
    pub fn query(&self, query: MatchQuery) -> MatchResponse {
        self.submit(query)
            .and_then(PendingResponse::wait)
            .expect("sharded serving failed on every shard")
    }

    /// Serve a whole batch through the router pool, responses in input order.
    /// Duplicate in-flight fingerprints coalesce at the router (one scatter).
    pub fn submit_batch(&self, queries: Vec<MatchQuery>) -> ServiceResult<Vec<MatchResponse>> {
        let mut pending = Vec::with_capacity(queries.len());
        for query in queries {
            pending.push(self.submit(query)?);
        }
        pending.into_iter().map(PendingResponse::wait).collect()
    }

    /// Answer a query on the calling thread, bypassing the router pool (identical
    /// results and accounting to [`ShardedEngine::query`]; the scatter still runs
    /// through the shard services).
    pub fn answer_inline(&self, query: &MatchQuery) -> ServiceResult<MatchResponse> {
        self.core.answer(query)
    }

    /// Router-level metrics plus the per-shard breakdown (zeroed entries for
    /// shards whose snapshot was unreachable).
    pub fn metrics(&self) -> ShardedMetrics {
        ShardedMetrics {
            router: self.core.metrics.snapshot(),
            per_shard: self
                .core
                .services
                .iter()
                .map(|s| s.metrics_snapshot().unwrap_or_default())
                .collect(),
        }
    }

    /// Number of merged responses currently held by the router's result cache.
    pub fn result_cache_len(&self) -> usize {
        self.core.results.len()
    }

    /// Drop every cached response, router and in-process shards alike (remote
    /// shards manage their own caches).
    pub fn invalidate_results(&self) {
        self.core.results.clear();
        for engine in &self.local_engines {
            engine.invalidate_results();
        }
    }
}

impl MatchService for ShardedEngine {
    fn submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse> {
        ShardedEngine::submit(self, query)
    }

    fn submit_batch(&self, queries: Vec<MatchQuery>) -> ServiceResult<Vec<MatchResponse>> {
        ShardedEngine::submit_batch(self, queries)
    }

    fn metrics_snapshot(&self) -> ServiceResult<EngineMetrics> {
        Ok(self.core.metrics.snapshot())
    }

    fn plan_stats(&self, personal: &SchemaTree, length_floor: f64) -> ServiceResult<PlanStats> {
        let mut stats = PlanStats::default();
        for service in &self.core.services {
            stats = stats.merge(service.plan_stats(personal, length_floor)?);
        }
        Ok(stats)
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        // Close the router queue and join its workers before the shard services
        // (dropped afterwards, field order) shut down their own backends.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_matcher::element::ElementMatchConfig;
    use xsm_repo::{GeneratorConfig, RepositoryGenerator};
    use xsm_schema::tree::paper_personal_schema;

    fn repo() -> SchemaRepository {
        RepositoryGenerator::new(GeneratorConfig::small(17).with_target_elements(400)).generate()
    }

    fn config(shards: usize) -> ShardedEngineConfig {
        ShardedEngineConfig::builder()
            .shards(shards)
            .router_workers(2)
            .engine(
                EngineConfig::builder()
                    .workers(1)
                    .element(ElementMatchConfig::default().with_min_similarity(0.5))
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap()
    }

    fn query() -> MatchQuery {
        MatchQuery::new(paper_personal_schema())
            .with_top_k(5)
            .with_threshold(0.5)
    }

    #[test]
    fn sharded_answers_match_the_single_engine() {
        let repo = repo();
        let single = MatchEngine::new(repo.clone(), config(1).engine);
        let reference = single.query(query());
        for shards in [1, 2, 4] {
            let sharded = ShardedEngine::new(repo.clone(), config(shards));
            assert_eq!(sharded.shard_count(), shards);
            let response = sharded.query(query());
            assert_eq!(
                response.result_digest(),
                reference.result_digest(),
                "{shards} shards diverged"
            );
            assert_eq!(response.fingerprint, query().fingerprint());
            assert!(!response.incomplete);
            assert!(response.failed_shards.is_empty());
        }
    }

    #[test]
    fn router_cache_and_shard_metrics_account_every_query() {
        let repo = repo();
        let sharded = ShardedEngine::new(repo, config(3));
        let first = sharded.query(query());
        let second = sharded.query(query());
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(first.result_digest(), second.result_digest());
        let metrics = sharded.metrics();
        assert_eq!(metrics.router.queries_served, 2);
        assert_eq!(metrics.router.result_cache_hits, 1);
        assert_eq!(metrics.router.degraded_responses, 0);
        assert_eq!(metrics.router.failed_queries, 0);
        assert_eq!(metrics.per_shard.len(), 3);
        // The scatter touched every shard exactly once (the repeat was served
        // entirely by the router cache).
        for shard in &metrics.per_shard {
            assert_eq!(shard.queries_served, 1);
        }
        assert_eq!(sharded.result_cache_len(), 1);
        sharded.invalidate_results();
        assert_eq!(sharded.result_cache_len(), 0);
        assert!(!sharded.query(query()).cache_hit);
    }

    #[test]
    fn shard_trees_cover_the_forest() {
        let repo = repo();
        let tree_count = repo.tree_count();
        let sharded = ShardedEngine::new(repo, config(4));
        let mut seen: Vec<TreeId> = (0..4)
            .flat_map(|s| sharded.shard_trees(s).to_vec())
            .collect();
        seen.sort();
        assert_eq!(seen.len(), tree_count);
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        assert!(sharded.shard_trees(99).is_empty());
    }

    #[test]
    #[should_panic(expected = "max_candidates_per_node")]
    fn candidate_cap_is_rejected() {
        let config = ShardedEngineConfig::default().with_engine_config(
            EngineConfig::default()
                .with_element_config(ElementMatchConfig::default().with_max_candidates(3)),
        );
        ShardedEngine::new(repo(), config);
    }

    #[test]
    fn builder_rejects_the_candidate_cap_and_zero_knobs() {
        let err = ShardedEngineConfig::builder()
            .engine(
                EngineConfig::default()
                    .with_element_config(ElementMatchConfig::default().with_max_candidates(3)),
            )
            .build()
            .unwrap_err();
        assert_eq!(err.field, "engine.element.max_candidates_per_node");
        assert_eq!(
            ShardedEngineConfig::builder()
                .shards(0)
                .build()
                .unwrap_err()
                .field,
            "shards"
        );
        assert_eq!(
            ShardedEngineConfig::builder()
                .router_workers(0)
                .build()
                .unwrap_err()
                .field,
            "router_workers"
        );
    }

    #[test]
    fn from_services_over_local_engines_matches_new() {
        let repo = repo();
        let reference = ShardedEngine::new(repo.clone(), config(3)).query(query());

        let partition = RepositoryPartition::build(&repo, 3, ShardPlacement::Contiguous);
        let (shards, tree_maps) = partition.into_parts();
        let services: Vec<Box<dyn MatchService>> = shards
            .into_iter()
            .map(|shard| {
                Box::new(MatchEngine::new(shard, config(3).engine)) as Box<dyn MatchService>
            })
            .collect();
        let router = ShardedEngine::from_services(services, tree_maps, config(3)).unwrap();
        assert!(router.shard_engines().is_empty());
        assert_eq!(router.shard_count(), 3);
        let response = router.query(query());
        assert_eq!(response.result_digest(), reference.result_digest());
        assert!(!response.incomplete);

        // Mismatched maps and empty fleets are rejected up front.
        assert!(ShardedEngine::from_services(Vec::new(), Vec::new(), config(1)).is_err());
    }

    #[test]
    fn drop_joins_router_and_shards_cleanly() {
        let sharded = ShardedEngine::new(repo(), config(2));
        let _ = sharded.query(query());
        drop(sharded);
    }

    #[test]
    fn live_mutations_match_a_rebuilt_single_engine() {
        for placement in [ShardPlacement::Contiguous, ShardPlacement::TreeHash] {
            let repo = repo();
            let base_trees = repo.tree_count();
            let sharded = ShardedEngine::new(repo.clone(), config(3).with_placement(placement));
            let extra: Vec<_> =
                RepositoryGenerator::new(GeneratorConfig::small(29).with_target_elements(80))
                    .generate()
                    .trees()
                    .map(|(_, t)| t.clone())
                    .take(4)
                    .collect();

            let assigned = sharded.append_trees(extra.clone()).unwrap();
            let expected: Vec<TreeId> = (0..extra.len())
                .map(|i| TreeId((base_trees + i) as u32))
                .collect();
            assert_eq!(assigned, expected, "global ids are assigned sequentially");

            let victims = [TreeId(0), TreeId(2)];
            let dropped = sharded.delete_trees(&victims).unwrap();
            assert!(dropped > 0);
            assert_eq!(sharded.tombstoned_trees(), victims);
            assert_eq!(
                sharded.generation(),
                Some(2),
                "append and delete each step the fleet generation once"
            );

            // The oracle: a from-scratch single engine over the same logical
            // content (deleted trees leave an empty positional placeholder).
            let mut oracle_repo = SchemaRepository::new();
            for (tid, tree) in repo.trees() {
                if victims.contains(&tid) {
                    oracle_repo.add_tree(xsm_schema::SchemaTree::new(tree.name()));
                } else {
                    oracle_repo.add_tree(tree.clone());
                }
            }
            for tree in extra {
                oracle_repo.add_tree(tree);
            }
            let oracle = MatchEngine::new(oracle_repo, config(1).engine);
            assert_eq!(
                sharded.query(query()).result_digest(),
                oracle.query(query()).result_digest(),
                "{placement:?} fleet diverged from the rebuilt oracle"
            );

            // Invalid batches are rejected atomically — nothing mutated.
            assert!(sharded.delete_trees(&[TreeId(0)]).is_err(), "already dead");
            assert!(sharded.delete_trees(&[TreeId(9999)]).is_err(), "unknown");
            assert!(
                sharded.delete_trees(&[TreeId(1), TreeId(1)]).is_err(),
                "duplicate"
            );
            assert!(sharded.append_trees(Vec::new()).is_err(), "empty batch");
            assert_eq!(sharded.generation(), Some(2), "failed batches do not step");
        }
    }

    #[test]
    fn routers_without_local_engines_reject_mutation() {
        let repo = repo();
        let partition = RepositoryPartition::build(&repo, 2, ShardPlacement::Contiguous);
        let (shards, tree_maps) = partition.into_parts();
        let services: Vec<Box<dyn MatchService>> = shards
            .into_iter()
            .map(|shard| {
                Box::new(MatchEngine::new(shard, config(2).engine)) as Box<dyn MatchService>
            })
            .collect();
        let router = ShardedEngine::from_services(services, tree_maps, config(2)).unwrap();
        let tree = repo.trees().next().unwrap().1.clone();
        assert!(router.append_trees(vec![tree]).is_err());
        assert!(router.delete_trees(&[TreeId(0)]).is_err());
        assert_eq!(router.generation(), None);
        assert_eq!(router.compact(), 0);
    }
}
