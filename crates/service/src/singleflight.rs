//! In-flight query deduplication ("singleflight").
//!
//! Concurrent identical queries that all miss the result cache would each run the
//! full matching pipeline; with a repository-scale pipeline taking milliseconds and
//! popular personal schemas arriving in bursts, that is pure waste. A
//! [`Singleflight`] map lets the **first** submitter of a fingerprint become the
//! *leader* (it runs the pipeline) while every concurrent duplicate becomes a
//! *follower* that blocks on the leader's slot and receives a clone of the finished
//! value — N identical in-flight queries cost one pipeline execution.
//!
//! The map holds a slot only while a computation is actually in flight; leaders
//! remove their slot on completion (and on panic, via the guard's `Drop`, so
//! followers can never deadlock on a dead leader — they observe a cancelled slot
//! and retry).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

enum SlotState<V> {
    Pending { waiters: usize },
    Done(V),
    Cancelled,
}

struct Slot<V> {
    state: Mutex<SlotState<V>>,
    cv: Condvar,
}

/// The outcome of [`Singleflight::join`].
pub enum Join<'a, V> {
    /// This caller is the first in flight for the key: it must run the computation
    /// and publish it through [`LeaderGuard::complete`].
    Leader(LeaderGuard<'a, V>),
    /// Another caller was already computing this key. `Some(value)` is a clone of
    /// its result; `None` means the leader was cancelled (dropped its guard without
    /// completing — e.g. a panic) and the caller should retry or compute itself.
    Follower(Option<V>),
}

/// Obligation held by the leading caller: publish a value with
/// [`LeaderGuard::complete`], or — if dropped without completing — wake every
/// follower with a cancellation so nobody waits on a computation that died.
pub struct LeaderGuard<'a, V> {
    owner: &'a Singleflight<V>,
    key: String,
    slot: Arc<Slot<V>>,
    completed: bool,
}

impl<V: Clone> LeaderGuard<'_, V> {
    /// Publish the computed value to every follower and retire the slot.
    pub fn complete(mut self, value: V) {
        self.finish(SlotState::Done(value));
        self.completed = true;
    }

    fn finish(&self, state: SlotState<V>) {
        {
            let mut s = self.slot.state.lock().unwrap();
            *s = state;
        }
        self.slot.cv.notify_all();
        self.owner.slots.lock().unwrap().remove(&self.key);
    }
}

impl<V> Drop for LeaderGuard<'_, V> {
    fn drop(&mut self) {
        if !self.completed {
            {
                let mut s = self.slot.state.lock().unwrap();
                *s = SlotState::Cancelled;
            }
            self.slot.cv.notify_all();
            self.owner.slots.lock().unwrap().remove(&self.key);
        }
    }
}

/// A keyed map of in-flight computations. See the module docs.
#[derive(Default)]
pub struct Singleflight<V> {
    slots: Mutex<HashMap<String, Arc<Slot<V>>>>,
}

impl<V: Clone> Singleflight<V> {
    /// An empty map.
    pub fn new() -> Self {
        Singleflight {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Join the flight for `key`: become the leader if nobody is computing it, or
    /// block until the current leader finishes and take a clone of its value.
    pub fn join(&self, key: &str) -> Join<'_, V> {
        let slot = {
            let mut slots = self.slots.lock().unwrap();
            match slots.get(key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Pending { waiters: 0 }),
                        cv: Condvar::new(),
                    });
                    slots.insert(key.to_string(), Arc::clone(&slot));
                    return Join::Leader(LeaderGuard {
                        owner: self,
                        key: key.to_string(),
                        slot,
                        completed: false,
                    });
                }
            }
        };
        let mut state = slot.state.lock().unwrap();
        if let SlotState::Pending { waiters } = &mut *state {
            *waiters += 1;
        }
        loop {
            match &*state {
                SlotState::Pending { .. } => state = slot.cv.wait(state).unwrap(),
                SlotState::Done(v) => return Join::Follower(Some(v.clone())),
                SlotState::Cancelled => return Join::Follower(None),
            }
        }
    }

    /// Number of keys currently in flight.
    pub fn in_flight(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// Number of followers currently blocked on `key` (0 when the key is not in
    /// flight). Lets tests and metrics observe coalescing deterministically.
    pub fn waiters(&self, key: &str) -> usize {
        let slot = match self.slots.lock().unwrap().get(key) {
            Some(slot) => Arc::clone(slot),
            None => return 0,
        };
        let state = slot.state.lock().unwrap();
        match &*state {
            SlotState::Pending { waiters } => *waiters,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn spin_until(mut cond: impl FnMut() -> bool) {
        for _ in 0..10_000 {
            if cond() {
                return;
            }
            thread::sleep(Duration::from_micros(100));
        }
        panic!("condition not reached within ~1s");
    }

    #[test]
    fn leader_computes_followers_clone() {
        let sf = Arc::new(Singleflight::<u64>::new());
        let guard = match sf.join("q") {
            Join::Leader(g) => g,
            Join::Follower(_) => panic!("first join must lead"),
        };
        assert_eq!(sf.in_flight(), 1);

        let followers: Vec<_> = (0..4)
            .map(|_| {
                let sf = Arc::clone(&sf);
                thread::spawn(move || match sf.join("q") {
                    Join::Follower(v) => v,
                    Join::Leader(_) => panic!("slot exists; nobody else may lead"),
                })
            })
            .collect();
        // Deterministic rendezvous: complete only once all four are blocked.
        spin_until(|| sf.waiters("q") == 4);
        guard.complete(42);
        for f in followers {
            assert_eq!(f.join().unwrap(), Some(42));
        }
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let sf = Singleflight::<u64>::new();
        let a = match sf.join("a") {
            Join::Leader(g) => g,
            _ => panic!("lead a"),
        };
        let b = match sf.join("b") {
            Join::Leader(g) => g,
            _ => panic!("lead b"),
        };
        assert_eq!(sf.in_flight(), 2);
        a.complete(1);
        b.complete(2);
        assert_eq!(sf.in_flight(), 0);
    }

    #[test]
    fn cancelled_leader_wakes_followers_with_none() {
        let sf = Arc::new(Singleflight::<u64>::new());
        let guard = match sf.join("q") {
            Join::Leader(g) => g,
            _ => panic!("lead"),
        };
        let follower = {
            let sf = Arc::clone(&sf);
            thread::spawn(move || match sf.join("q") {
                Join::Follower(v) => v,
                Join::Leader(_) => panic!("slot exists"),
            })
        };
        spin_until(|| sf.waiters("q") == 1);
        drop(guard); // leader "panicked"
        assert_eq!(follower.join().unwrap(), None);
        // The key is free again: the next join leads.
        match sf.join("q") {
            Join::Leader(g) => g.complete(7),
            _ => panic!("slot must have been retired"),
        };
    }

    #[test]
    fn after_completion_next_join_leads_again() {
        let sf = Singleflight::<String>::new();
        match sf.join("k") {
            Join::Leader(g) => g.complete("v1".into()),
            _ => panic!("lead"),
        }
        // Singleflight is not a cache: finished flights leave no trace.
        match sf.join("k") {
            Join::Leader(g) => g.complete("v2".into()),
            Join::Follower(_) => panic!("finished flight must not serve followers"),
        }
        assert_eq!(sf.waiters("k"), 0);
    }
}
