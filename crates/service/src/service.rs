//! The transport-agnostic [`MatchService`] serving contract.
//!
//! Everything that can answer match queries — the in-process
//! [`crate::MatchEngine`], the scatter/gather [`crate::ShardedEngine`] router,
//! and the TCP [`crate::net::RemoteEngine`] client — implements this one trait,
//! so composition is transport-blind: a router scatters over
//! `Box<dyn MatchService>` slots without knowing whether a slot is a thread pool
//! two cache lines away or a server two networks away.
//!
//! The contract every implementation upholds:
//!
//! * **Determinism** — a query's result content depends only on the query and
//!   the repository/config behind the service, never on the transport. The
//!   equivalence suites (`tests/shard_equivalence.rs`,
//!   `tests/net_equivalence.rs`) assert byte-identical responses across
//!   in-process, sharded and loopback-TCP serving.
//! * **Explicit failure** — no panicking serving paths: every failure mode is a
//!   [`crate::ServiceError`] value ([`ServiceResult`]), wire-serializable so remote
//!   failures look exactly like local ones.
//! * **Additive planning statistics** — [`MatchService::plan_stats`] reports
//!   the posting-list statistics of the repository slice behind the service.
//!   Stats are additive over a disjoint partition, which is what lets a router
//!   resolve [`crate::QueryStrategy::Auto`] *once*, identically to an unsharded
//!   engine, and force the resolved strategy onto every shard.

use std::sync::Arc;

use xsm_schema::SchemaTree;

use crate::engine::PendingResponse;
use crate::error::ServiceResult;
use crate::metrics::EngineMetrics;
use crate::planner::PlanStats;
use crate::query::{MatchQuery, MatchResponse};

/// A match-serving endpoint: submit queries, snapshot metrics, expose planning
/// statistics. Object-safe; routers hold `Box<dyn MatchService>` shards.
pub trait MatchService: Send + Sync {
    /// Enqueue one query. The returned [`PendingResponse`] blocks on
    /// [`PendingResponse::wait`] until the answer (or a serving error) is
    /// available. Submission itself fails fast on queue pressure
    /// ([`crate::ServiceError::QueueFull`] from non-blocking implementations)
    /// or on a dead endpoint.
    fn submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse>;

    /// Serve a whole batch, responses in input order. The default
    /// implementation submits everything first (so the endpoint works the batch
    /// concurrently) and then waits in order; implementations with a cheaper
    /// wire encoding (one framed round trip) override it.
    fn submit_batch(&self, queries: Vec<MatchQuery>) -> ServiceResult<Vec<MatchResponse>> {
        let pending: Vec<PendingResponse> = queries
            .into_iter()
            .map(|query| self.submit(query))
            .collect::<ServiceResult<_>>()?;
        pending.into_iter().map(PendingResponse::wait).collect()
    }

    /// A point-in-time snapshot of the endpoint's serving metrics.
    fn metrics_snapshot(&self) -> ServiceResult<EngineMetrics>;

    /// Additive posting-list statistics of the repository slice this service
    /// serves, measured for `personal` under the given similarity floor — the
    /// inputs a router needs to resolve [`crate::QueryStrategy::Auto`] globally
    /// (see [`crate::QueryPlanner::plan_from_stats`]).
    fn plan_stats(&self, personal: &SchemaTree, length_floor: f64) -> ServiceResult<PlanStats>;

    /// A cheap liveness probe: `Ok(())` iff the endpoint can currently serve.
    /// In-process services are alive by construction (the default); transports
    /// override it to actually touch the backend — [`crate::net::RemoteEngine`]
    /// dials and re-handshakes, which is exactly what a replica set's
    /// background prober needs to detect a healed shard server.
    fn ping(&self) -> ServiceResult<()> {
        Ok(())
    }
}

impl<T: MatchService + ?Sized> MatchService for Arc<T> {
    fn submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse> {
        (**self).submit(query)
    }

    fn submit_batch(&self, queries: Vec<MatchQuery>) -> ServiceResult<Vec<MatchResponse>> {
        (**self).submit_batch(queries)
    }

    fn metrics_snapshot(&self) -> ServiceResult<EngineMetrics> {
        (**self).metrics_snapshot()
    }

    fn plan_stats(&self, personal: &SchemaTree, length_floor: f64) -> ServiceResult<PlanStats> {
        (**self).plan_stats(personal, length_floor)
    }

    fn ping(&self) -> ServiceResult<()> {
        (**self).ping()
    }
}

impl<T: MatchService + ?Sized> MatchService for Box<T> {
    fn submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse> {
        (**self).submit(query)
    }

    fn submit_batch(&self, queries: Vec<MatchQuery>) -> ServiceResult<Vec<MatchResponse>> {
        (**self).submit_batch(queries)
    }

    fn metrics_snapshot(&self) -> ServiceResult<EngineMetrics> {
        (**self).metrics_snapshot()
    }

    fn plan_stats(&self, personal: &SchemaTree, length_floor: f64) -> ServiceResult<PlanStats> {
        (**self).plan_stats(personal, length_floor)
    }

    fn ping(&self) -> ServiceResult<()> {
        (**self).ping()
    }
}
