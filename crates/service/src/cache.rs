//! Bounded LRU cache of finished query responses, keyed by query fingerprint.
//!
//! A serving engine sees the same personal schemas over and over (users iterate on a
//! handful of shapes, monitoring replays canaries); caching whole responses turns
//! those repeats into sub-microsecond answers. The cache is strictly bounded and
//! evicts the least-recently-used entry, so a long-lived engine cannot grow without
//! limit no matter the query mix.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use crate::query::MatchResponse;

/// Default capacity (in cached responses) of a [`ResultCache`].
pub const DEFAULT_RESULT_CACHE_CAPACITY: usize = 256;

struct Entry {
    /// Shared with the map key and the order index, so recency updates move an
    /// `Arc`, never clone the fingerprint string.
    key: Arc<str>,
    response: Arc<MatchResponse>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<Arc<str>, Entry>,
    /// `last_used` tick → key. Ticks are unique (one per touching operation),
    /// so this is a total recency order and its first entry is the LRU victim.
    order: BTreeMap<u64, Arc<str>>,
    tick: u64,
}

/// A thread-safe, bounded, least-recently-used response cache.
///
/// Recency is a logical tick, not wall-clock time, so behaviour is
/// deterministic. A tick-ordered index makes eviction `O(log len)` (the victim
/// is the index's first entry — no full-map scan, no key clone), and a lookup
/// miss touches nothing at all: only hits and inserts advance the clock.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// An empty cache bounded at `capacity` responses (`capacity >= 1`).
    pub fn with_capacity(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    /// The maximum number of responses retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up a response by query fingerprint, refreshing its recency on a
    /// hit. A miss is read-only — it neither advances the recency clock nor
    /// perturbs the eviction order.
    ///
    /// Returns an `Arc` so the critical section stays `O(1)`: callers that need an
    /// owned copy (e.g. to stamp per-serve metadata) deep-clone *outside* the lock,
    /// and concurrent workers hitting the cache don't serialise on the clone.
    pub fn get(&self, fingerprint: &str) -> Option<Arc<MatchResponse>> {
        let mut inner = self.inner.lock().unwrap();
        let Inner { map, order, tick } = &mut *inner;
        let entry = map.get_mut(fingerprint)?;
        *tick += 1;
        order.remove(&entry.last_used);
        entry.last_used = *tick;
        order.insert(*tick, Arc::clone(&entry.key));
        Some(Arc::clone(&entry.response))
    }

    /// Insert (or replace) the response for a fingerprint, evicting the
    /// least-recently-used entry if the cache is full.
    pub fn insert(&self, fingerprint: String, response: MatchResponse) {
        let mut inner = self.inner.lock().unwrap();
        let Inner { map, order, tick } = &mut *inner;
        *tick += 1;
        let now = *tick;
        if let Some(entry) = map.get_mut(fingerprint.as_str()) {
            // Replace in place: recency refreshes, nothing is evicted.
            order.remove(&entry.last_used);
            entry.last_used = now;
            entry.response = Arc::new(response);
            order.insert(now, Arc::clone(&entry.key));
            return;
        }
        if map.len() >= self.capacity {
            if let Some((_, victim)) = order.pop_first() {
                map.remove(&victim);
            }
        }
        let key: Arc<str> = fingerprint.into();
        order.insert(now, Arc::clone(&key));
        map.insert(
            Arc::clone(&key),
            Entry {
                key,
                response: Arc::new(response),
                last_used: now,
            },
        );
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached response.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::PlannedStrategy;
    use std::time::Duration;

    fn resp(fp: &str) -> MatchResponse {
        MatchResponse {
            fingerprint: fp.to_string(),
            strategy: PlannedStrategy::Exhaustive,
            cache_hit: false,
            mappings: Vec::new(),
            candidate_count: 0,
            total_matches: 0,
            incomplete: false,
            failed_shards: Vec::new(),
            generation: 0,
            latency: Duration::ZERO,
        }
    }

    #[test]
    fn get_miss_then_hit() {
        let cache = ResultCache::with_capacity(4);
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
        cache.insert("a".into(), resp("a"));
        assert_eq!(cache.get("a").unwrap().fingerprint, "a");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResultCache::with_capacity(2);
        cache.insert("a".into(), resp("a"));
        cache.insert("b".into(), resp("b"));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), resp("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let cache = ResultCache::with_capacity(2);
        cache.insert("a".into(), resp("a"));
        cache.insert("b".into(), resp("b"));
        let mut newer = resp("a");
        newer.candidate_count = 7;
        cache.insert("a".into(), newer);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a").unwrap().candidate_count, 7);
        assert!(cache.get("b").is_some());
    }

    #[test]
    fn clear_and_capacity_clamp() {
        let cache = ResultCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert("a".into(), resp("a"));
        cache.insert("b".into(), resp("b"));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn misses_do_not_perturb_the_eviction_order() {
        let cache = ResultCache::with_capacity(2);
        cache.insert("a".into(), resp("a"));
        cache.insert("b".into(), resp("b"));
        for _ in 0..10 {
            assert!(cache.get("never-inserted").is_none());
        }
        // "a" is still the LRU victim: the misses changed nothing.
        cache.insert("c".into(), resp("c"));
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
    }

    /// The LRU behaviour at large capacity, pinned against a naive
    /// recency-list model over a long deterministic mixed workload.
    #[test]
    fn stress_matches_a_naive_lru_model() {
        const CAPACITY: usize = 512;
        let cache = ResultCache::with_capacity(CAPACITY);
        // The model: keys in recency order, front = least recently used.
        let mut model: Vec<String> = Vec::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for step in 0..20_000 {
            let key = format!("q{}", rng() % 2048);
            if rng() % 3 < 2 {
                let hit = cache.get(&key).is_some();
                let model_pos = model.iter().position(|k| k == &key);
                assert_eq!(hit, model_pos.is_some(), "step {step}, key {key}");
                if let Some(pos) = model_pos {
                    let k = model.remove(pos);
                    model.push(k);
                }
            } else {
                cache.insert(key.clone(), resp(&key));
                if let Some(pos) = model.iter().position(|k| k == &key) {
                    model.remove(pos);
                } else if model.len() >= CAPACITY {
                    model.remove(0);
                }
                model.push(key);
            }
            assert_eq!(cache.len(), model.len(), "step {step}");
        }
        assert_eq!(cache.len(), CAPACITY, "the workload fills the cache");
        // Full sweep: cache and model agree on exactly which keys survived.
        for key in &model {
            assert!(cache.get(key).is_some(), "model key {key} missing");
        }
    }
}
