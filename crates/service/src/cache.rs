//! Bounded LRU cache of finished query responses, keyed by query fingerprint.
//!
//! A serving engine sees the same personal schemas over and over (users iterate on a
//! handful of shapes, monitoring replays canaries); caching whole responses turns
//! those repeats into sub-microsecond answers. The cache is strictly bounded and
//! evicts the least-recently-used entry, so a long-lived engine cannot grow without
//! limit no matter the query mix.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::query::MatchResponse;

/// Default capacity (in cached responses) of a [`ResultCache`].
pub const DEFAULT_RESULT_CACHE_CAPACITY: usize = 256;

struct Entry {
    response: Arc<MatchResponse>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
}

/// A thread-safe, bounded, least-recently-used response cache.
///
/// Eviction scans for the stalest entry, which is `O(len)` per overflowing insert;
/// with the intended capacities (hundreds of entries guarding a multi-millisecond
/// pipeline) that scan is noise. Recency is a logical tick, not wall-clock time, so
/// behaviour is deterministic.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResultCache {
    /// An empty cache bounded at `capacity` responses (`capacity >= 1`).
    pub fn with_capacity(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
        }
    }

    /// The maximum number of responses retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up a response by query fingerprint, refreshing its recency.
    ///
    /// Returns an `Arc` so the critical section stays `O(1)`: callers that need an
    /// owned copy (e.g. to stamp per-serve metadata) deep-clone *outside* the lock,
    /// and concurrent workers hitting the cache don't serialise on the clone.
    pub fn get(&self, fingerprint: &str) -> Option<Arc<MatchResponse>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let entry = inner.map.get_mut(fingerprint)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.response))
    }

    /// Insert (or replace) the response for a fingerprint, evicting the
    /// least-recently-used entry if the cache is full.
    pub fn insert(&self, fingerprint: String, response: MatchResponse) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&fingerprint) {
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(
            fingerprint,
            Entry {
                response: Arc::new(response),
                last_used: tick,
            },
        );
    }

    /// Number of cached responses.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached response.
    pub fn clear(&self) {
        self.inner.lock().unwrap().map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::PlannedStrategy;
    use std::time::Duration;

    fn resp(fp: &str) -> MatchResponse {
        MatchResponse {
            fingerprint: fp.to_string(),
            strategy: PlannedStrategy::Exhaustive,
            cache_hit: false,
            mappings: Vec::new(),
            candidate_count: 0,
            total_matches: 0,
            incomplete: false,
            failed_shards: Vec::new(),
            generation: 0,
            latency: Duration::ZERO,
        }
    }

    #[test]
    fn get_miss_then_hit() {
        let cache = ResultCache::with_capacity(4);
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
        cache.insert("a".into(), resp("a"));
        assert_eq!(cache.get("a").unwrap().fingerprint, "a");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResultCache::with_capacity(2);
        cache.insert("a".into(), resp("a"));
        cache.insert("b".into(), resp("b"));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), resp("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let cache = ResultCache::with_capacity(2);
        cache.insert("a".into(), resp("a"));
        cache.insert("b".into(), resp("b"));
        let mut newer = resp("a");
        newer.candidate_count = 7;
        cache.insert("a".into(), newer);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a").unwrap().candidate_count, 7);
        assert!(cache.get("b").is_some());
    }

    #[test]
    fn clear_and_capacity_clamp() {
        let cache = ResultCache::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert("a".into(), resp("a"));
        cache.insert("b".into(), resp("b"));
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }
}
