//! Live serving metrics: counters plus a fixed-bucket latency histogram.
//!
//! The engine records every served query under one short lock; [`EngineMetrics`] is a
//! cheap consistent snapshot suitable for scraping. Latency quantiles come from a
//! fixed logarithmic bucket layout (no per-query allocation, bounded memory), so p50
//! and p99 are upper bounds at bucket granularity — the usual monitoring trade.

use std::sync::Mutex;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::query::PlannedStrategy;

/// Upper bounds (in microseconds) of the latency buckets; the last bucket is
/// unbounded. Roughly ×2.5 per step from 50 µs to 10 s.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 15] = [
    50, 125, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 10_000_000,
];

const BUCKETS: usize = LATENCY_BUCKET_BOUNDS_US.len() + 1;

/// A fixed-bucket latency histogram.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the bucket containing
    /// it, or `None` when the histogram is empty. When the quantile falls in the
    /// overflow bucket (beyond the last bound), [`Duration::MAX`] is returned —
    /// "off-scale high", never an under-estimate that would hide an overload.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(match LATENCY_BUCKET_BOUNDS_US.get(i) {
                    Some(&bound) => Duration::from_micros(bound),
                    None => Duration::MAX, // overflow bucket
                });
            }
        }
        None
    }

    /// The per-bucket counts (last entry is the overflow bucket).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }
}

/// How one query was actually served — determines which counters
/// [`MetricsRegistry::record`] bumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedVia {
    /// The full matching pipeline ran for this query.
    Pipeline,
    /// The response came straight from the result cache.
    ResultCache,
    /// The query coalesced onto a concurrent identical query's computation
    /// (singleflight) and received a clone of its response.
    Coalesced,
}

/// How an engine's startup artefacts (index, feature store, centroids) came to
/// exist — the warm-vs-cold restart tag carried in [`EngineMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StartupSource {
    /// Built from the repository at construction time (`MatchEngine::new`).
    #[default]
    ColdBuild,
    /// Loaded from a snapshot file (`MatchEngine::from_snapshot`).
    SnapshotLoad,
}

impl StartupSource {
    /// Stable label used in reports (`cold_build` / `snapshot_load`).
    pub fn label(self) -> &'static str {
        match self {
            StartupSource::ColdBuild => "cold_build",
            StartupSource::SnapshotLoad => "snapshot_load",
        }
    }
}

/// Aggregated counters behind the metrics lock.
#[derive(Debug, Default)]
struct Inner {
    served: u64,
    result_cache_hits: u64,
    coalesced: u64,
    index_pruned: u64,
    exhaustive: u64,
    degraded: u64,
    failed: u64,
    hedged: u64,
    hedge_wins: u64,
    failovers: u64,
    breaker_opens: u64,
    probe_redials: u64,
    generation_swaps: u64,
    startup_micros: u64,
    startup_source: StartupSource,
    histogram: LatencyHistogram,
}

/// Thread-safe metrics sink the engine records into.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one served query. Per-strategy counters track *pipeline executions*:
    /// cache hits and coalesced queries bump the served counter and the histogram
    /// but not the strategy counts, so
    /// `index_pruned + exhaustive == queries_served - cache_hits - coalesced`.
    pub fn record(&self, latency: Duration, strategy: PlannedStrategy, via: ServedVia) {
        let mut inner = self.inner.lock().unwrap();
        inner.served += 1;
        match via {
            ServedVia::ResultCache => inner.result_cache_hits += 1,
            ServedVia::Coalesced => inner.coalesced += 1,
            ServedVia::Pipeline => match strategy {
                PlannedStrategy::IndexPruned => inner.index_pruned += 1,
                PlannedStrategy::Exhaustive => inner.exhaustive += 1,
            },
        }
        inner.histogram.record(latency);
    }

    /// Record one response returned to a caller with
    /// [`crate::MatchResponse::incomplete`] set — some shards missed their
    /// deadline and the answer covers only the survivors. Called *in addition
    /// to* [`MetricsRegistry::record`]: a degraded response is still a served
    /// query.
    pub fn record_degraded(&self) {
        self.inner.lock().unwrap().degraded += 1;
    }

    /// Record one query that returned a [`crate::ServiceError`] to its caller
    /// (every shard failed, the queue rejected it, the transport gave up).
    /// Failed queries are *not* counted in `queries_served` — nothing was
    /// served — so `queries_served` keeps its accounting invariant with the
    /// cache/coalesce/strategy counters.
    pub fn record_failure(&self) {
        self.inner.lock().unwrap().failed += 1;
    }

    /// Record one query whose primary replica was raced by a hedge request
    /// (the replica set launched a second attempt after the hedge delay).
    pub fn record_hedged(&self) {
        self.inner.lock().unwrap().hedged += 1;
    }

    /// Record one hedged query whose *hedge* attempt answered first — the
    /// race paid off. `hedge_wins <= hedged_queries` always.
    pub fn record_hedge_win(&self) {
        self.inner.lock().unwrap().hedge_wins += 1;
    }

    /// Record one failover: an attempt returned an error and the query was
    /// re-routed to another replica instead of failing the caller.
    pub fn record_failover(&self) {
        self.inner.lock().unwrap().failovers += 1;
    }

    /// Record one circuit-breaker trip (Closed or HalfProbe → Open).
    pub fn record_breaker_open(&self) {
        self.inner.lock().unwrap().breaker_opens += 1;
    }

    /// Record one successful background probe that closed an open breaker —
    /// a suspended or crashed backend answered a redial.
    pub fn record_probe_redial(&self) {
        self.inner.lock().unwrap().probe_redials += 1;
    }

    /// Record one completed zero-downtime generation swap.
    pub fn record_generation_swap(&self) {
        self.inner.lock().unwrap().generation_swaps += 1;
    }

    /// Record how (and how fast) the engine came up. Called once at
    /// construction; the values surface unchanged in every snapshot.
    pub fn set_startup(&self, micros: u64, source: StartupSource) {
        let mut inner = self.inner.lock().unwrap();
        inner.startup_micros = micros;
        inner.startup_source = source;
    }

    /// A consistent snapshot of everything recorded so far.
    pub fn snapshot(&self) -> EngineMetrics {
        let inner = self.inner.lock().unwrap();
        let hit_rate = if inner.served == 0 {
            0.0
        } else {
            inner.result_cache_hits as f64 / inner.served as f64
        };
        EngineMetrics {
            queries_served: inner.served,
            result_cache_hits: inner.result_cache_hits,
            result_cache_hit_rate: hit_rate,
            coalesced_queries: inner.coalesced,
            index_pruned_queries: inner.index_pruned,
            exhaustive_queries: inner.exhaustive,
            degraded_responses: inner.degraded,
            failed_queries: inner.failed,
            hedged_queries: inner.hedged,
            hedge_wins: inner.hedge_wins,
            failovers: inner.failovers,
            breaker_opens: inner.breaker_opens,
            probe_redials: inner.probe_redials,
            generation_swaps: inner.generation_swaps,
            startup_micros: inner.startup_micros,
            startup_source: inner.startup_source,
            simd_kernels: xsm_repo::simd::simd_active(),
            p50_latency_us: quantile_us(&inner.histogram, 0.50),
            p99_latency_us: quantile_us(&inner.histogram, 0.99),
        }
    }
}

/// A histogram quantile as µs, saturating at `u64::MAX` for off-scale values
/// (0 when the histogram is empty).
fn quantile_us(histogram: &LatencyHistogram, q: f64) -> u64 {
    histogram
        .quantile(q)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// A point-in-time snapshot of the engine's serving metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineMetrics {
    /// Total queries answered (cache hits and coalesced queries included).
    pub queries_served: u64,
    /// Queries answered straight from the result cache.
    pub result_cache_hits: u64,
    /// `result_cache_hits / queries_served` (0 before the first query).
    pub result_cache_hit_rate: f64,
    /// Queries that coalesced onto a concurrent identical query's in-flight
    /// computation (singleflight) instead of running the pipeline themselves.
    pub coalesced_queries: u64,
    /// Queries whose candidate generation actually ran index-pruned (result-cache
    /// hits and coalesced queries are not counted — they run no candidate
    /// generation at all).
    pub index_pruned_queries: u64,
    /// Queries whose candidate generation actually ran the exhaustive scan
    /// (result-cache hits and coalesced queries excluded, as above).
    pub exhaustive_queries: u64,
    /// Responses returned with [`crate::MatchResponse::incomplete`] set: some
    /// shards missed their deadline and the answer merges only the survivors.
    /// Counted in addition to `queries_served`. Always 0 for a single engine.
    #[serde(default)]
    pub degraded_responses: u64,
    /// Queries that returned a [`crate::ServiceError`] to their caller instead
    /// of any response. Not counted in `queries_served`.
    #[serde(default)]
    pub failed_queries: u64,
    /// Queries whose primary replica was raced by a hedge attempt after the
    /// hedge delay elapsed (replica-set serving only; 0 elsewhere).
    #[serde(default)]
    pub hedged_queries: u64,
    /// Hedged queries whose hedge attempt answered first. Always
    /// `<= hedged_queries`.
    #[serde(default)]
    pub hedge_wins: u64,
    /// Attempts re-routed to another replica after an error instead of
    /// failing the caller (replica-set serving only).
    #[serde(default)]
    pub failovers: u64,
    /// Circuit-breaker trips (Closed or HalfProbe → Open) across the
    /// replica set's backends.
    #[serde(default)]
    pub breaker_opens: u64,
    /// Successful background probes that closed an open breaker — a crashed
    /// or suspended backend answered a redial.
    #[serde(default)]
    pub probe_redials: u64,
    /// Completed zero-downtime generation swaps
    /// ([`crate::SwappableEngine`] flips counted by the engine that swapped).
    #[serde(default)]
    pub generation_swaps: u64,
    /// Wall-clock time from the start of engine construction to the worker
    /// pool being up — the cost a restart pays before it can serve.
    #[serde(default)]
    pub startup_micros: u64,
    /// Whether the engine's startup artefacts were built from the repository
    /// or loaded from a snapshot file.
    #[serde(default)]
    pub startup_source: StartupSource,
    /// Whether the runtime-detected SIMD kernel tier is active on this host
    /// (false when the CPU lacks SSE2/SSSE3 or `XSM_FORCE_SCALAR` is set —
    /// see `xsm_repo::simd::active_kernel` for the precise tier).
    #[serde(default)]
    pub simd_kernels: bool,
    /// Median serving latency, upper-bounded at bucket granularity (µs);
    /// `u64::MAX` means off-scale (beyond the largest histogram bucket).
    pub p50_latency_us: u64,
    /// 99th-percentile serving latency, upper-bounded at bucket granularity (µs);
    /// `u64::MAX` means off-scale (beyond the largest histogram bucket).
    pub p99_latency_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        for us in [10u64, 60, 200, 400, 900, 2_000, 600_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        // 4th of 7 observations falls in the ≤500 µs bucket.
        assert_eq!(h.quantile(0.5), Some(Duration::from_micros(500)));
        // p99 lands on the slowest observation's bucket (≤1 s).
        assert_eq!(h.quantile(0.99), Some(Duration::from_micros(1_000_000)));
        assert_eq!(h.buckets().iter().sum::<u64>(), 7);
    }

    #[test]
    fn histogram_overflow_reports_off_scale_not_an_underestimate() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_secs(100));
        assert_eq!(h.quantile(1.0), Some(Duration::MAX));
        assert_eq!(h.buckets().last(), Some(&1));
        // The snapshot saturates off-scale quantiles to u64::MAX.
        let reg = MetricsRegistry::new();
        reg.record(
            Duration::from_secs(100),
            PlannedStrategy::Exhaustive,
            ServedVia::Pipeline,
        );
        assert_eq!(reg.snapshot().p99_latency_us, u64::MAX);
    }

    #[test]
    fn registry_counts_by_strategy_cache_and_coalescing() {
        let reg = MetricsRegistry::new();
        reg.record(
            Duration::from_micros(80),
            PlannedStrategy::IndexPruned,
            ServedVia::Pipeline,
        );
        reg.record(
            Duration::from_micros(90),
            PlannedStrategy::Exhaustive,
            ServedVia::ResultCache,
        );
        reg.record(
            Duration::from_micros(70),
            PlannedStrategy::IndexPruned,
            ServedVia::ResultCache,
        );
        reg.record(
            Duration::from_micros(60),
            PlannedStrategy::Exhaustive,
            ServedVia::Coalesced,
        );
        let m = reg.snapshot();
        assert_eq!(m.queries_served, 4);
        assert_eq!(m.result_cache_hits, 2);
        assert_eq!(m.coalesced_queries, 1);
        assert!((m.result_cache_hit_rate - 2.0 / 4.0).abs() < 1e-12);
        // Strategy counters track pipeline executions: hits and coalesced queries
        // don't count.
        assert_eq!(m.index_pruned_queries, 1);
        assert_eq!(m.exhaustive_queries, 0);
        assert_eq!(
            m.index_pruned_queries + m.exhaustive_queries,
            m.queries_served - m.result_cache_hits - m.coalesced_queries
        );
        assert_eq!(m.p50_latency_us, 125);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let m = MetricsRegistry::new().snapshot();
        assert_eq!(m.queries_served, 0);
        assert_eq!(m.result_cache_hit_rate, 0.0);
        assert_eq!(m.coalesced_queries, 0);
        assert_eq!(m.p50_latency_us, 0);
        assert_eq!(m.p99_latency_us, 0);
    }
}
