//! Self-healing replicated serving: [`ReplicaSet`].
//!
//! A `ReplicaSet` implements [`MatchService`] over N interchangeable backends
//! that serve the *same* repository slice — in-process engines, TCP
//! [`crate::net::RemoteEngine`]s, anything boxed. Because the serving contract
//! guarantees byte-identical answers for the same query against the same
//! slice, *any* replica's answer is *the* answer, which is what makes the
//! three mechanisms here safe:
//!
//! * **Health-tracked routing** — every backend carries a
//!   [`CircuitBreaker`]; queries go to a Closed (healthy) breaker first,
//!   round-robin, falling back to a cooled-down trial and, as a last resort,
//!   to any backend at all (an all-open set still *tries* rather than
//!   refusing — breakers bias routing, they never orphan a query).
//! * **Hedged requests** — if the first attempt has not answered within a
//!   latency-percentile-derived delay ([`HedgeConfig`]), a second replica is
//!   raced against it; first answer wins, the loser is abandoned. Tail
//!   latency becomes the minimum of two draws instead of one.
//! * **Failover** — an attempt that returns an error is retried on the next
//!   untried replica instead of failing the caller. A dead replica therefore
//!   costs *zero* failed queries while its breaker trips and the set routes
//!   around it.
//!
//! A background **prober** thread redials suspected-dead backends
//! ([`MatchService::ping`] — the TCP client re-dials and re-handshakes) and
//! closes the breaker on a successful handshake, so a restarted
//! [`crate::net::ShardServer`] is folded back into rotation without any
//! operator action.
//!
//! A `ReplicaSet` is itself a [`MatchService`], so it drops straight into a
//! [`crate::ShardedEngine::from_services`] shard slot: a fleet of shards,
//! each a replica set, gives scatter/gather *and* per-shard self-healing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xsm_schema::SchemaTree;

use crate::engine::PendingResponse;
use crate::error::{ConfigError, ServiceError, ServiceResult};
use crate::health::{BreakerEvent, BreakerState, CircuitBreaker, HealthConfig};
use crate::metrics::{EngineMetrics, LatencyHistogram, MetricsRegistry, ServedVia};
use crate::planner::PlanStats;
use crate::query::{MatchQuery, MatchResponse};
use crate::service::MatchService;

/// Hedged-request tuning.
///
/// The hedge delay adapts to the observed latency distribution: once
/// [`HedgeConfig::min_observations`] successful attempts have been recorded,
/// the delay is the [`HedgeConfig::percentile`] of their latency histogram
/// (clamped to `[floor, cap]`); before that, [`HedgeConfig::initial_delay`]
/// is used. A replica slower than the fleet's p99 therefore gets raced, while
/// normal traffic never pays for a second attempt.
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Whether slow requests are hedged at all. With hedging off the set
    /// still fails over on errors — hedging only affects *slow* attempts.
    pub enabled: bool,
    /// Latency quantile (in `0.0..=1.0`) after which an attempt counts as
    /// slow enough to race.
    pub percentile: f64,
    /// Successful attempts observed before the percentile is trusted.
    pub min_observations: u64,
    /// Hedge delay used until enough observations exist.
    pub initial_delay: Duration,
    /// Lower clamp on the delay — never hedge more aggressively than this.
    pub floor: Duration,
    /// Upper clamp on the delay (also applied when the percentile lands in
    /// the histogram's overflow bucket).
    pub cap: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            enabled: true,
            percentile: 0.99,
            min_observations: 32,
            initial_delay: Duration::from_millis(50),
            floor: Duration::from_millis(1),
            cap: Duration::from_secs(2),
        }
    }
}

impl HedgeConfig {
    /// A disabled hedge configuration (failover-only replica set).
    pub fn disabled() -> Self {
        HedgeConfig {
            enabled: false,
            ..HedgeConfig::default()
        }
    }

    /// Builder-style override of the hedge trigger percentile.
    pub fn with_percentile(mut self, percentile: f64) -> Self {
        self.percentile = percentile.clamp(0.0, 1.0);
        self
    }

    /// Builder-style override of the pre-warmup hedge delay.
    pub fn with_initial_delay(mut self, delay: Duration) -> Self {
        self.initial_delay = delay;
        self
    }

    /// Builder-style override of the warmup threshold: how many observed
    /// latencies before the percentile trigger replaces the initial delay.
    /// `u64::MAX` pins the initial delay forever (a fixed-delay hedge).
    pub fn with_min_observations(mut self, observations: u64) -> Self {
        self.min_observations = observations;
        self
    }
}

/// Tuning of a [`ReplicaSet`].
#[derive(Debug, Clone, Default)]
pub struct ReplicaSetConfig {
    /// Per-backend circuit-breaker tuning.
    pub health: HealthConfig,
    /// Hedged-request tuning.
    pub hedge: HedgeConfig,
    /// How often the background prober wakes to redial open (suspected-dead)
    /// backends. `None` disables the prober thread entirely — recovery then
    /// happens only through breaker trial requests or explicit
    /// [`ReplicaSet::probe_now`] calls (what the deterministic tests use).
    pub probe_interval: Option<Duration>,
}

impl ReplicaSetConfig {
    /// Builder-style health override.
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = health;
        self
    }

    /// Builder-style hedge override.
    pub fn with_hedge(mut self, hedge: HedgeConfig) -> Self {
        self.hedge = hedge;
        self
    }

    /// Builder-style prober-cadence override (`None` disables the thread).
    pub fn with_probe_interval(mut self, interval: Option<Duration>) -> Self {
        self.probe_interval = interval;
        self
    }
}

/// Why an attempt was launched — distinguishes a hedge win from a failover win
/// in the metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptKind {
    Primary,
    Hedge,
    Failover,
}

struct AttemptReport {
    kind: AttemptKind,
    outcome: ServiceResult<MatchResponse>,
}

struct Backend {
    service: Box<dyn MatchService>,
    breaker: CircuitBreaker,
}

struct ReplicaInner {
    backends: Vec<Backend>,
    config: ReplicaSetConfig,
    metrics: MetricsRegistry,
    /// Successful attempt latencies — the source of the adaptive hedge delay.
    latencies: Mutex<LatencyHistogram>,
    /// Round-robin cursor so healthy replicas share load.
    rotation: AtomicUsize,
    /// Prober shutdown flag + condvar for prompt wake-on-drop.
    shutdown: Mutex<bool>,
    shutdown_cv: Condvar,
}

impl ReplicaInner {
    /// Pick the next backend to try, healthiest first: Closed breakers in
    /// round-robin order, then cooled-down breakers willing to admit a trial,
    /// then — last resort — any untried backend at all. Returns `None` only
    /// when every backend has been tried.
    fn pick_next(&self, used: &mut [bool], start: usize) -> Option<usize> {
        let n = self.backends.len();
        for k in 0..n {
            let i = (start + k) % n;
            if !used[i] && self.backends[i].breaker.state() == BreakerState::Closed {
                used[i] = true;
                return Some(i);
            }
        }
        for k in 0..n {
            let i = (start + k) % n;
            if !used[i] && self.backends[i].breaker.admit() {
                used[i] = true;
                return Some(i);
            }
        }
        for k in 0..n {
            let i = (start + k) % n;
            if !used[i] {
                used[i] = true;
                return Some(i);
            }
        }
        None
    }

    /// The current hedge delay: observed percentile once warmed up, the
    /// configured initial delay before that, clamped to `[floor, cap]` either
    /// way (overflow-bucket quantiles clamp to `cap`).
    fn hedge_delay(&self) -> Duration {
        let hedge = &self.config.hedge;
        let histogram = self.latencies.lock().unwrap();
        let raw = if histogram.count() >= hedge.min_observations {
            histogram
                .quantile(hedge.percentile)
                .unwrap_or(hedge.initial_delay)
        } else {
            hedge.initial_delay
        };
        raw.clamp(hedge.floor, hedge.cap)
    }

    /// Run one attempt to completion on backend `index`, record its breaker
    /// and latency bookkeeping, and report the outcome. Runs on a helper
    /// thread so the orchestrator can race attempts.
    fn run_attempt(&self, index: usize, kind: AttemptKind, query: MatchQuery) -> AttemptReport {
        let backend = &self.backends[index];
        let started = Instant::now();
        let outcome = backend
            .service
            .submit(query)
            .and_then(PendingResponse::wait);
        match &outcome {
            Ok(_) => {
                backend.breaker.record_success();
                self.latencies.lock().unwrap().record(started.elapsed());
            }
            Err(_) => {
                if backend.breaker.record_failure() == BreakerEvent::Opened {
                    self.metrics.record_breaker_open();
                }
            }
        }
        AttemptReport { kind, outcome }
    }

    /// The full submit orchestration: primary attempt, hedge on slowness,
    /// failover on error, first success wins.
    fn orchestrate(self: &Arc<Self>, query: MatchQuery) -> ServiceResult<MatchResponse> {
        let started = Instant::now();
        let n = self.backends.len();
        let start = self.rotation.fetch_add(1, Ordering::Relaxed) % n;
        let mut used = vec![false; n];
        let (tx, rx) = mpsc::channel::<AttemptReport>();

        let launch = |index: usize, kind: AttemptKind| -> ServiceResult<()> {
            let inner = Arc::clone(self);
            let tx = tx.clone();
            let query = query.clone();
            std::thread::Builder::new()
                .name("xsm-replica-attempt".to_string())
                .spawn(move || {
                    let report = inner.run_attempt(index, kind, query);
                    let _ = tx.send(report);
                })
                .map(|_| ())
                .map_err(|e| ServiceError::internal(format!("failed to spawn attempt: {e}")))
        };

        let primary = self
            .pick_next(&mut used, start)
            .ok_or_else(|| ServiceError::internal("replica set has no backends"))?;
        launch(primary, AttemptKind::Primary)?;
        let mut outstanding = 1usize;
        let mut hedged = false;
        let hedge_delay = self.hedge_delay();
        let mut last_error: Option<ServiceError> = None;

        loop {
            let can_hedge = self.config.hedge.enabled && !hedged && used.iter().any(|u| !u);
            let timeout = if can_hedge {
                hedge_delay.saturating_sub(started.elapsed())
            } else {
                // No further attempt to launch: just wait for the outstanding
                // ones. The backends enforce their own deadlines.
                Duration::from_secs(3600)
            };
            match rx.recv_timeout(timeout) {
                Ok(AttemptReport {
                    kind,
                    outcome: Ok(response),
                }) => {
                    self.metrics
                        .record(started.elapsed(), response.strategy, ServedVia::Pipeline);
                    if kind == AttemptKind::Hedge {
                        self.metrics.record_hedge_win();
                    }
                    return Ok(response);
                }
                Ok(AttemptReport {
                    outcome: Err(error),
                    ..
                }) => {
                    outstanding -= 1;
                    last_error = Some(error);
                    if let Some(index) = self.pick_next(&mut used, start) {
                        self.metrics.record_failover();
                        launch(index, AttemptKind::Failover)?;
                        outstanding += 1;
                    } else if outstanding == 0 {
                        self.metrics.record_failure();
                        return Err(last_error.take().unwrap_or_else(|| {
                            ServiceError::internal("replica set: every attempt failed")
                        }));
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if can_hedge {
                        if let Some(index) = self.pick_next(&mut used, start) {
                            hedged = true;
                            self.metrics.record_hedged();
                            launch(index, AttemptKind::Hedge)?;
                            outstanding += 1;
                        } else {
                            hedged = true;
                        }
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    self.metrics.record_failure();
                    return Err(last_error.take().unwrap_or_else(|| {
                        ServiceError::internal("replica set: every attempt thread died")
                    }));
                }
            }
        }
    }

    /// One prober pass: redial every backend whose breaker is open past its
    /// cooldown; a successful handshake closes the breaker and counts a
    /// redial, a failed one restarts the cooldown.
    fn probe_pass(&self) {
        for backend in &self.backends {
            if backend.breaker.probe_due() {
                match backend.service.ping() {
                    Ok(()) => {
                        if backend.breaker.record_success() == BreakerEvent::Closed {
                            self.metrics.record_probe_redial();
                        }
                    }
                    Err(_) => {
                        backend.breaker.record_failure();
                    }
                }
            }
        }
    }
}

/// A health-tracked, hedging, failing-over replica group; see the module docs.
pub struct ReplicaSet {
    inner: Arc<ReplicaInner>,
    prober: Option<JoinHandle<()>>,
}

impl ReplicaSet {
    /// Build a replica set over interchangeable backends (each must serve the
    /// same repository slice — the determinism contract is what makes any
    /// replica's answer authoritative). Fails on an empty backend list.
    pub fn new(
        backends: Vec<Box<dyn MatchService>>,
        config: ReplicaSetConfig,
    ) -> Result<Self, ConfigError> {
        if backends.is_empty() {
            return Err(ConfigError::new(
                "replicas",
                "a replica set needs at least one backend",
            ));
        }
        if !(0.0..=1.0).contains(&config.hedge.percentile) {
            return Err(ConfigError::new(
                "hedge.percentile",
                "must be within 0.0..=1.0",
            ));
        }
        let health = config.health.clone();
        let inner = Arc::new(ReplicaInner {
            backends: backends
                .into_iter()
                .map(|service| Backend {
                    service,
                    breaker: CircuitBreaker::new(health.clone()),
                })
                .collect(),
            config,
            metrics: MetricsRegistry::default(),
            latencies: Mutex::new(LatencyHistogram::new()),
            rotation: AtomicUsize::new(0),
            shutdown: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });
        let prober = match inner.config.probe_interval {
            None => None,
            Some(interval) => {
                let probe_inner = Arc::clone(&inner);
                let handle = std::thread::Builder::new()
                    .name("xsm-replica-prober".to_string())
                    .spawn(move || {
                        let mut guard = probe_inner.shutdown.lock().unwrap();
                        loop {
                            let (g, _) = probe_inner
                                .shutdown_cv
                                .wait_timeout(guard, interval)
                                .unwrap();
                            guard = g;
                            if *guard {
                                return;
                            }
                            drop(guard);
                            probe_inner.probe_pass();
                            guard = probe_inner.shutdown.lock().unwrap();
                            if *guard {
                                return;
                            }
                        }
                    })
                    .map_err(|_| ConfigError::new("prober", "failed to spawn prober thread"))?;
                Some(handle)
            }
        };
        Ok(ReplicaSet { inner, prober })
    }

    /// How many backends the set holds.
    pub fn replica_count(&self) -> usize {
        self.inner.backends.len()
    }

    /// Every backend's current breaker state, in backend order.
    pub fn breaker_states(&self) -> Vec<BreakerState> {
        self.inner
            .backends
            .iter()
            .map(|b| b.breaker.state())
            .collect()
    }

    /// Run one prober pass synchronously — redial open backends right now
    /// instead of waiting for the background cadence. This is what the
    /// deterministic recovery tests call (no sleeps, no timing races).
    pub fn probe_now(&self) {
        self.inner.probe_pass();
    }

    /// The hedge delay the next submission would use (diagnostics/tests).
    pub fn current_hedge_delay(&self) -> Duration {
        self.inner.hedge_delay()
    }

    /// Metrics of one *backend* (by index), as opposed to the set-level
    /// [`MatchService::metrics_snapshot`]. Fails if the backend is
    /// unreachable or the index is out of range.
    pub fn backend_metrics(&self, index: usize) -> ServiceResult<EngineMetrics> {
        self.inner
            .backends
            .get(index)
            .ok_or_else(|| ServiceError::bad_request("backend index out of range"))?
            .service
            .metrics_snapshot()
    }
}

impl Drop for ReplicaSet {
    fn drop(&mut self) {
        if let Some(handle) = self.prober.take() {
            *self.inner.shutdown.lock().unwrap() = true;
            self.inner.shutdown_cv.notify_all();
            let _ = handle.join();
        }
    }
}

impl MatchService for ReplicaSet {
    fn submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse> {
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name("xsm-replica-orchestrator".to_string())
            .spawn(move || inner.orchestrate(query))
            .map_err(|e| ServiceError::internal(format!("failed to spawn orchestrator: {e}")))?;
        Ok(PendingResponse::from_task(handle))
    }

    /// Set-level serving metrics: queries served through the set plus the
    /// robustness counters (`hedged_queries`, `hedge_wins`, `failovers`,
    /// `breaker_opens`, `probe_redials`). Per-backend engine metrics are
    /// available via [`ReplicaSet::backend_metrics`].
    fn metrics_snapshot(&self) -> ServiceResult<EngineMetrics> {
        Ok(self.inner.metrics.snapshot())
    }

    /// Planning statistics from the healthiest backend, failing over on
    /// error — every replica serves the same slice, so any answer is *the*
    /// answer.
    fn plan_stats(&self, personal: &SchemaTree, length_floor: f64) -> ServiceResult<PlanStats> {
        let n = self.inner.backends.len();
        let start = self.inner.rotation.fetch_add(1, Ordering::Relaxed) % n;
        let mut used = vec![false; n];
        let mut last_error: Option<ServiceError> = None;
        while let Some(index) = self.inner.pick_next(&mut used, start) {
            // A retry after a failed backend is a failover, same as at the
            // query stage — this is often where a dead replica is first seen.
            if last_error.is_some() {
                self.inner.metrics.record_failover();
            }
            let backend = &self.inner.backends[index];
            match backend.service.plan_stats(personal, length_floor) {
                Ok(stats) => {
                    backend.breaker.record_success();
                    return Ok(stats);
                }
                Err(error) => {
                    if backend.breaker.record_failure() == BreakerEvent::Opened {
                        self.inner.metrics.record_breaker_open();
                    }
                    last_error = Some(error);
                }
            }
        }
        Err(last_error.unwrap_or_else(|| ServiceError::internal("replica set has no backends")))
    }

    /// Alive iff at least one backend answers its ping.
    fn ping(&self) -> ServiceResult<()> {
        let mut last_error: Option<ServiceError> = None;
        for backend in &self.inner.backends {
            match backend.service.ping() {
                Ok(()) => return Ok(()),
                Err(error) => last_error = Some(error),
            }
        }
        Err(last_error.unwrap_or_else(|| ServiceError::internal("replica set has no backends")))
    }
}
