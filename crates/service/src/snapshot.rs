//! Snapshot-backed serving: write per-shard snapshot files and the error type
//! of every snapshot-bootstrap entry point.
//!
//! The repo-layer [`xsm_repo::snapshot`] module owns the file format; this
//! module owns the serving-side workflow around it. [`write_shard_snapshots`]
//! partitions a repository exactly as [`crate::ShardedEngine::new`] would,
//! builds each shard's index once, and writes one snapshot file per shard —
//! each carrying its slice of the router's tree map and the shared generation
//! stamp. Those files are what a fleet restarts from
//! ([`crate::ShardedEngine::from_snapshot_paths`],
//! [`crate::net::ShardServer::bind_snapshot`]) and what shard rebalancing
//! would ship to another host.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

use xsm_core::centroid::tree_centroids;
use xsm_core::distance::PathLengthDistance;
use xsm_repo::snapshot::{SnapshotError, SnapshotWriter};
use xsm_repo::{NameIndex, RepositoryPartition, SchemaRepository, ShardPlacement};

use crate::error::ConfigError;

/// Why a snapshot-backed serving bootstrap failed: the snapshot itself was
/// bad, the serving configuration was invalid, or (for the TCP server) the
/// listener could not bind. Keeping this separate from
/// [`crate::ServiceError`] keeps the wire protocol's error enum untouched —
/// bootstrap failures never cross the wire.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotServeError {
    /// Reading or validating a snapshot file failed.
    Snapshot(SnapshotError),
    /// The serving configuration was rejected (same rules as
    /// [`crate::ShardedEngine::from_services`]).
    Config(ConfigError),
    /// The TCP listener could not bind its address.
    Bind(io::Error),
}

impl fmt::Display for SnapshotServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotServeError::Snapshot(e) => write!(f, "snapshot bootstrap failed: {e}"),
            SnapshotServeError::Config(e) => write!(f, "snapshot bootstrap rejected: {e}"),
            SnapshotServeError::Bind(e) => write!(f, "snapshot-backed server failed to bind: {e}"),
        }
    }
}

impl std::error::Error for SnapshotServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotServeError::Snapshot(e) => Some(e),
            SnapshotServeError::Config(e) => Some(e),
            SnapshotServeError::Bind(e) => Some(e),
        }
    }
}

impl From<SnapshotError> for SnapshotServeError {
    fn from(e: SnapshotError) -> Self {
        SnapshotServeError::Snapshot(e)
    }
}

impl From<ConfigError> for SnapshotServeError {
    fn from(e: ConfigError) -> Self {
        SnapshotServeError::Config(e)
    }
}

/// Partition `repo` into `shard_count` shards with `placement` — exactly the
/// partition [`crate::ShardedEngine::new`] would serve — and write one
/// snapshot file per shard into `dir` (`shard-<i>.xsmsnap`), every file
/// stamped with the same `generation` and carrying its shard's slice of the
/// router tree map. Returns the file paths in shard order.
pub fn write_shard_snapshots(
    repo: &SchemaRepository,
    shard_count: usize,
    placement: ShardPlacement,
    dir: impl AsRef<Path>,
    generation: u64,
) -> Result<Vec<PathBuf>, SnapshotError> {
    let partition = RepositoryPartition::build(repo, shard_count.max(1), placement);
    let (shards, tree_maps) = partition.into_parts();
    let mut paths = Vec::with_capacity(shards.len());
    for (i, (shard, tree_map)) in shards.into_iter().zip(tree_maps).enumerate() {
        let index = NameIndex::build(&shard);
        let centroids = tree_centroids(&shard, &PathLengthDistance);
        let path = dir.as_ref().join(format!("shard-{i}.xsmsnap"));
        SnapshotWriter::new(generation)
            .with_tree_map(tree_map)
            .write(&shard, &index, &centroids, &path)?;
        paths.push(path);
    }
    Ok(paths)
}
