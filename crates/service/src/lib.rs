//! # xsm-service — the concurrent match-serving engine
//!
//! The paper's point is making schema matching cheap enough to answer *many* personal
//! -schema queries against one large repository. The other crates provide the
//! algorithms; this crate provides the long-lived component that amortises the
//! expensive artefacts — the q-gram [`xsm_repo::NameIndex`], the clustering
//! configuration and a shared [`xsm_similarity::SimilarityCache`] — across every
//! query, and serves them concurrently:
//!
//! * [`engine::MatchEngine`] — built once from a repository; a `std::thread` worker
//!   pool drains a bounded submission queue; [`engine::MatchEngine::submit_batch`]
//!   shards a batch across the workers and returns responses in input order,
//! * [`query`] — [`query::MatchQuery`] (personal schema, `top_k`, strategy,
//!   threshold δ) and [`query::MatchResponse`] with a canonical fingerprint,
//! * [`planner`] — resolves [`query::QueryStrategy::Auto`] per query into
//!   index-pruned or exhaustive candidate generation from posting-list statistics,
//! * [`cache`] — a bounded LRU cache of whole responses keyed by fingerprint,
//! * [`shard`] — [`shard::ShardedEngine`]: the repository partitioned by tree
//!   across N independent engines, queries scattered to all shards and merged with
//!   a deterministic top-k merge — byte-identical to the single-engine answer,
//! * [`service`] — the [`service::MatchService`] trait every serving backend
//!   implements (`submit`, `submit_batch`, `metrics_snapshot`, `plan_stats`), so
//!   the router is transport-blind: a shard slot holds `Box<dyn MatchService>`,
//!   whether the shard is in-process or on another host,
//! * [`error`] — [`error::ServiceError`], the structured, wire-serializable error
//!   every fallible serving call returns, and [`error::ConfigError`] from the
//!   validating config builders,
//! * [`net`] — networked serving: a length-prefixed JSON frame protocol with a
//!   versioned handshake, the thread-per-connection [`net::ShardServer`], the
//!   [`net::RemoteEngine`] client (deadlines, bounded retry with backoff) and the
//!   [`net::FaultyTransport`] fault-injection wrapper,
//! * [`singleflight`] — in-flight deduplication: concurrent identical queries that
//!   miss the result cache coalesce onto one pipeline execution,
//! * [`metrics`] — queries served, cache hit rates, coalesced-query counts,
//!   per-strategy counts and p50/p99 serving latency from a fixed-bucket histogram.
//!
//! Scoring runs on the zero-allocation feature kernels of
//! [`xsm_similarity::features`]: the engine's [`xsm_repo::NameIndex`] carries a
//! [`xsm_repo::FeatureStore`] (per-node precomputed name features, interned gram
//! signatures), each worker owns its [`xsm_similarity::SimScratch`], and per-pair
//! work is bit-parallel edit distance plus integer signature merges.
//!
//! Determinism is a hard guarantee: the result content of a query is identical
//! whether the engine runs 1 worker or 8, and whether a cache served it — asserted by
//! `tests/determinism.rs`.
//!
//! ```
//! use xsm_repo::{GeneratorConfig, RepositoryGenerator};
//! use xsm_service::{MatchEngine, MatchQuery};
//! use xsm_schema::{SchemaNode, TreeBuilder};
//!
//! let repo = RepositoryGenerator::new(GeneratorConfig::small(7)).generate();
//! let engine = MatchEngine::with_defaults(repo);
//! let personal = TreeBuilder::new("personal")
//!     .root(SchemaNode::element("name"))
//!     .child(SchemaNode::element("email"))
//!     .build();
//! let response = engine.query(MatchQuery::new(personal).with_top_k(3));
//! assert!(response.mappings.len() <= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod error;
pub mod health;
pub mod metrics;
pub mod net;
pub mod planner;
pub mod query;
pub mod replica;
pub mod service;
pub mod shard;
pub mod singleflight;
pub mod snapshot;
pub mod swap;
pub mod workload;

pub use cache::ResultCache;
pub use engine::{EngineConfig, EngineConfigBuilder, MatchEngine, PendingResponse};
pub use error::{ConfigError, ServiceError, ServiceResult};
pub use health::{BreakerEvent, BreakerState, CircuitBreaker, HealthConfig};
pub use metrics::{EngineMetrics, LatencyHistogram, StartupSource};
pub use net::{FaultyTransport, RemoteEngine, RemoteEngineConfig, ShardServer, PROTOCOL_VERSION};
pub use planner::{PlanStats, PlannerConfig, QueryPlan, QueryPlanner};
pub use query::{MatchQuery, MatchResponse, PlannedStrategy, QueryStrategy};
pub use replica::{HedgeConfig, ReplicaSet, ReplicaSetConfig};
pub use service::MatchService;
pub use shard::{ShardedEngine, ShardedEngineConfig, ShardedEngineConfigBuilder, ShardedMetrics};
pub use singleflight::Singleflight;
pub use snapshot::{write_shard_snapshots, SnapshotServeError};
pub use swap::SwappableEngine;
