//! Zero-downtime generation swap: [`SwappableEngine`].
//!
//! A repository that moves on — new schemas ingested, the index rebuilt,
//! a new snapshot written with generation N+1 — should replace generation N
//! *under live traffic*, with no restart, no failed queries and no response
//! that mixes the two revisions. The mechanism:
//!
//! 1. **Load beside** — the N+1 snapshot is validated
//!    ([`xsm_repo::snapshot::SnapshotReader::peek`] first, so a corrupt or
//!    wrong-generation file is refused before any expensive work) and a whole
//!    new [`MatchEngine`] is built next to the serving one. Traffic continues
//!    on N throughout; the only cost is memory for two indexes.
//! 2. **Atomic flip** — the serving engine lives behind an `Arc` in a mutex;
//!    the flip is one pointer swap. Queries submitted before the flip hold
//!    their own `Arc` clone and complete on N (a valid, self-consistent
//!    answer); queries submitted after see N+1. No query ever sees half of
//!    each.
//! 3. **Drain** — dropping the last old-generation `Arc` closes the old
//!    engine's queue and joins its workers *after* they finish every
//!    already-queued query ([`MatchEngine`]'s drop contract), so generation N
//!    drains rather than aborts.
//!
//! `SwappableEngine` is itself a [`MatchService`], so it slots into a
//! [`crate::ShardedEngine`] shard. The fleet-level counterpart —
//! [`crate::ShardedEngine::swap_generation`] — flips every shard under a
//! router-wide write gate and refuses mixed-generation fleets, so a scattered
//! query can never merge shards from different repository revisions.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use xsm_repo::snapshot::{SnapshotError, SnapshotReader};
use xsm_schema::SchemaTree;

use crate::engine::{EngineConfig, MatchEngine, PendingResponse};
use crate::error::ServiceResult;
use crate::metrics::EngineMetrics;
use crate::planner::PlanStats;
use crate::query::{MatchQuery, MatchResponse};
use crate::service::MatchService;

/// A [`MatchService`] whose backing [`MatchEngine`] can be replaced by a
/// newer snapshot generation without interrupting traffic; see the module
/// docs for the load-beside / flip / drain lifecycle.
pub struct SwappableEngine {
    /// The serving engine. A mutex (not an `RwLock`): the critical section is
    /// one `Arc` clone, far too short to contend, and a mutex keeps the flip
    /// trivially atomic.
    current: Mutex<Arc<MatchEngine>>,
    /// The configuration every future generation is built with — a swap
    /// changes the repository revision, never the serving semantics.
    config: EngineConfig,
    /// Completed swaps, surfaced as `generation_swaps` in
    /// [`MatchService::metrics_snapshot`].
    swaps: AtomicU64,
}

impl SwappableEngine {
    /// Wrap an already-built engine (generation 0 unless it was
    /// snapshot-loaded). `config` is what future generations will be built
    /// with and should match the engine's own.
    pub fn new(engine: MatchEngine, config: EngineConfig) -> Self {
        SwappableEngine {
            current: Mutex::new(Arc::new(engine)),
            config,
            swaps: AtomicU64::new(0),
        }
    }

    /// Start from the snapshot file at `path`; future generations load with
    /// the same `config`.
    pub fn from_snapshot(
        path: impl AsRef<Path>,
        config: EngineConfig,
    ) -> Result<Self, SnapshotError> {
        let engine = MatchEngine::from_snapshot(path, config.clone())?;
        Ok(Self::new(engine, config))
    }

    /// Assemble from an already-loaded snapshot (the in-memory entry point
    /// the sharded constructor uses after reading the file once).
    pub fn from_snapshot_parts(
        snapshot: xsm_repo::snapshot::Snapshot,
        config: EngineConfig,
        start: Instant,
    ) -> Self {
        let engine = MatchEngine::from_snapshot_parts(snapshot, config.clone(), start);
        Self::new(engine, config)
    }

    /// A handle to the engine serving right now. Holding it keeps that
    /// generation alive across a concurrent swap — which is exactly how
    /// in-flight queries finish on the generation they started on.
    pub fn current(&self) -> Arc<MatchEngine> {
        Arc::clone(&self.current.lock().unwrap())
    }

    /// The generation currently being served.
    pub fn generation(&self) -> u64 {
        self.current().generation()
    }

    /// Completed swaps since construction.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Build the engine for the snapshot at `path` *beside* the serving one —
    /// no lock held, traffic undisturbed — requiring stamp `generation`.
    /// The caller decides when to [`SwappableEngine::install`] it (the
    /// sharded fleet loads every shard first, then flips all under one gate).
    pub fn load_next(
        &self,
        path: impl AsRef<Path>,
        generation: u64,
    ) -> Result<MatchEngine, SnapshotError> {
        // Peek first: refuse a corrupt header or a wrong generation before
        // paying for the full deserialization.
        let header = SnapshotReader::peek(path.as_ref())?;
        if header.generation != generation {
            return Err(SnapshotError::GenerationMismatch {
                expected: generation,
                found: header.generation,
            });
        }
        MatchEngine::from_snapshot_expecting(path, self.config.clone(), generation)
    }

    /// Atomically flip to `next`, returning the old generation's `Arc`.
    /// The flip itself is one pointer swap; dropping the returned handle
    /// (once every in-flight clone is gone) drains and joins the old engine.
    pub fn install(&self, next: MatchEngine) -> Arc<MatchEngine> {
        let old = {
            let mut current = self.current.lock().unwrap();
            std::mem::replace(&mut *current, Arc::new(next))
        };
        self.swaps.fetch_add(1, Ordering::Relaxed);
        old
    }

    /// Load the snapshot at `path` and swap to it: load-beside, flip, drain.
    /// Returns the new serving generation. On any error the old generation
    /// keeps serving untouched.
    pub fn swap_to_snapshot(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        let generation = SnapshotReader::peek(path.as_ref())?.generation;
        self.swap_to_snapshot_expecting(path, generation)
    }

    /// [`SwappableEngine::swap_to_snapshot`], additionally requiring the
    /// snapshot to carry exactly `generation`.
    pub fn swap_to_snapshot_expecting(
        &self,
        path: impl AsRef<Path>,
        generation: u64,
    ) -> Result<u64, SnapshotError> {
        let next = self.load_next(path, generation)?;
        let generation = next.generation();
        drop(self.install(next));
        Ok(generation)
    }
}

impl MatchService for SwappableEngine {
    fn submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse> {
        // The submitted query is queued on a specific generation's engine;
        // its worker pool answers it even if a swap drops our reference
        // moments later (drop drains the queue before joining).
        self.current().submit(query)
    }

    fn submit_batch(&self, queries: Vec<MatchQuery>) -> ServiceResult<Vec<MatchResponse>> {
        // One generation handle for the whole batch: a swap mid-batch must
        // not split the batch across revisions.
        self.current().submit_batch(queries)
    }

    /// The serving engine's metrics with this wrapper's swap count overlaid
    /// (each generation starts its own registry; the swap count is the
    /// wrapper's, surviving every flip).
    fn metrics_snapshot(&self) -> ServiceResult<EngineMetrics> {
        let mut metrics = self.current().metrics();
        metrics.generation_swaps = self.swaps.load(Ordering::Relaxed);
        Ok(metrics)
    }

    fn plan_stats(&self, personal: &SchemaTree, length_floor: f64) -> ServiceResult<PlanStats> {
        self.current().plan_stats(personal, length_floor)
    }
}
