//! Structured, wire-serializable service errors.
//!
//! Before the `MatchService` redesign, serving failures were implicit: a full
//! submission queue blocked forever, a dead worker panicked the submitter, and a
//! shard that disappeared took the whole router down. Every failure mode is now an
//! explicit [`ServiceError`] variant returned as `Result` through the
//! [`crate::service::MatchService`] trait — and because the same enum crosses the
//! wire (it is a [`crate::net::proto::WireResponse`] payload), a remote shard's
//! failure deserializes into exactly the error an in-process shard would have
//! returned.
//!
//! Construction-time validation failures are a separate, non-wire type:
//! [`ConfigError`] is what `EngineConfig::builder()…build()` returns for nonsense
//! configurations — those never travel, they are caller bugs caught before any
//! serving starts.

use std::fmt;

use serde::{Deserialize, Serialize};

/// `Result` alias used by every [`crate::service::MatchService`] method.
pub type ServiceResult<T> = Result<T, ServiceError>;

/// A serving failure, serializable onto the wire protocol.
///
/// The enum is `#[non_exhaustive]`: future protocol revisions may add variants,
/// and matching code must keep a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ServiceError {
    /// The bounded submission queue was full and the caller asked not to block
    /// (`try_submit`). Back off and resubmit.
    QueueFull,
    /// The per-request deadline elapsed before a response arrived (retries
    /// included). The request may or may not have executed on the server.
    Timeout,
    /// A specific shard could not be reached or never answered; `shard` is the
    /// router-side shard index.
    ShardUnavailable {
        /// Router-side index of the unreachable shard.
        shard: u32,
    },
    /// The protocol-version handshake failed: the peer speaks a different frame
    /// protocol revision. Never retried — no amount of retrying fixes a version
    /// skew.
    ProtocolMismatch {
        /// The protocol version this side speaks.
        expected: u32,
        /// The protocol version the peer announced.
        actual: u32,
    },
    /// The request was malformed (unparseable frame payload, unserializable
    /// query such as a NaN threshold crossing the JSON wire).
    BadRequest {
        /// Human-readable description of what was wrong.
        reason: String,
    },
    /// A transport-level failure after retries were exhausted: connect refused,
    /// connection reset mid-frame, garbage framing.
    Transport {
        /// Human-readable description of the underlying I/O failure.
        detail: String,
    },
    /// An invariant the service relies on broke (worker pool died, reply channel
    /// dropped, response thread panicked). Always a bug, never load.
    Internal {
        /// Human-readable description of the broken invariant.
        detail: String,
    },
}

impl ServiceError {
    /// Convenience constructor for [`ServiceError::Internal`].
    pub fn internal(detail: impl Into<String>) -> Self {
        ServiceError::Internal {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`ServiceError::Transport`].
    pub fn transport(detail: impl Into<String>) -> Self {
        ServiceError::Transport {
            detail: detail.into(),
        }
    }

    /// Convenience constructor for [`ServiceError::BadRequest`].
    pub fn bad_request(reason: impl Into<String>) -> Self {
        ServiceError::BadRequest {
            reason: reason.into(),
        }
    }

    /// Whether a retry of the same request can possibly succeed. Version skews
    /// and malformed requests are permanent; queue pressure, timeouts and
    /// transport hiccups are transient.
    pub fn is_retryable(&self) -> bool {
        !matches!(
            self,
            ServiceError::ProtocolMismatch { .. } | ServiceError::BadRequest { .. }
        )
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull => write!(f, "submission queue is full"),
            ServiceError::Timeout => write!(f, "request deadline exceeded"),
            ServiceError::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is unavailable")
            }
            ServiceError::ProtocolMismatch { expected, actual } => write!(
                f,
                "protocol version mismatch: expected {expected}, peer speaks {actual}"
            ),
            ServiceError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServiceError::Transport { detail } => write!(f, "transport failure: {detail}"),
            ServiceError::Internal { detail } => write!(f, "internal service error: {detail}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A construction-time configuration error returned by the config builders
/// (`EngineConfig::builder()`, `ShardedEngineConfig::builder()`).
///
/// Unlike [`ServiceError`] this type never crosses the wire: invalid
/// configurations are local caller bugs, rejected before any thread spawns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The configuration field that was rejected.
    pub field: &'static str,
    /// Why it was rejected.
    pub reason: &'static str,
}

impl ConfigError {
    pub(crate) fn new(field: &'static str, reason: &'static str) -> Self {
        ConfigError { field, reason }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid config `{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            ServiceError::ShardUnavailable { shard: 3 }.to_string(),
            "shard 3 is unavailable"
        );
        assert_eq!(
            ServiceError::ProtocolMismatch {
                expected: 1,
                actual: 2
            }
            .to_string(),
            "protocol version mismatch: expected 1, peer speaks 2"
        );
        assert_eq!(
            ConfigError::new("workers", "must be >= 1").to_string(),
            "invalid config `workers`: must be >= 1"
        );
    }

    #[test]
    fn retryability_partitions_the_variants() {
        assert!(ServiceError::QueueFull.is_retryable());
        assert!(ServiceError::Timeout.is_retryable());
        assert!(ServiceError::ShardUnavailable { shard: 0 }.is_retryable());
        assert!(ServiceError::transport("reset").is_retryable());
        assert!(ServiceError::internal("bug").is_retryable());
        assert!(!ServiceError::ProtocolMismatch {
            expected: 1,
            actual: 0
        }
        .is_retryable());
        assert!(!ServiceError::bad_request("nan threshold").is_retryable());
    }

    #[test]
    fn errors_round_trip_through_json() {
        let errors = vec![
            ServiceError::QueueFull,
            ServiceError::Timeout,
            ServiceError::ShardUnavailable { shard: 7 },
            ServiceError::ProtocolMismatch {
                expected: 1,
                actual: 9,
            },
            ServiceError::bad_request("unicode λ"),
            ServiceError::transport("connection reset by peer"),
            ServiceError::internal("worker pool died"),
        ];
        for e in errors {
            let json = serde_json::to_string(&e).unwrap();
            let back: ServiceError = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e, "{json}");
        }
    }
}
