//! The [`MatchEngine`]: a long-lived, concurrent match-serving engine.
//!
//! The experiment binaries rebuild the repository index and clustering configuration
//! for every run; a serving deployment cannot afford that. The engine is constructed
//! **once** — building the [`NameIndex`] together with its
//! [`xsm_repo::FeatureStore`] (one precomputed
//! [`xsm_similarity::NameFeatures`] per repository node, all q-grams interned
//! to shared `u32` ids) and the [`ClusteredMatcher`] configuration up front — and
//! then answers [`MatchQuery`]s from a pool of worker threads draining a bounded
//! submission queue. Everything is `std`-only: `std::thread` workers,
//! `mpsc::sync_channel` for the queue and per-query reply channels.
//!
//! Candidate scoring runs the zero-allocation feature kernels: query-side features
//! are built once per personal node, repository-side features once at construction,
//! and each pair costs a bit-parallel edit distance over `u64` words plus an integer
//! signature merge — no lowercasing, no `Vec<char>`, no hashing, no per-pair cache
//! (the kernel is cheaper than a cache lookup). Each worker owns a
//! [`SimScratch`] so even the DP fallback for >64-character names allocates nothing
//! in steady state.
//!
//! Concurrent identical queries that miss the result cache are deduplicated by a
//! [`Singleflight`] map: one leader runs the pipeline, every concurrent duplicate
//! waits and receives a clone ([`EngineMetrics::coalesced_queries`] counts them).
//!
//! Determinism contract: a query's result content ([`MatchResponse::result_digest`])
//! depends only on the query and the engine configuration — never on the number of
//! workers, the interleaving of a batch, or whether a cache or a coalesced flight
//! served it.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xsm_core::{ClusteredMatcher, ClusteringVariant};
use xsm_matcher::element::{
    match_elements_features, match_elements_with_index_features_resolved, resolve_personal_queries,
    ElementMatchConfig,
};
use xsm_matcher::generator::branch_and_bound::BranchAndBoundGenerator;
use xsm_matcher::{MatchingProblem, ObjectiveConfig};
use xsm_repo::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use xsm_repo::{CandidateScratch, LiveError, LiveRepository, NameIndex, SchemaRepository};
use xsm_schema::{GlobalNodeId, SchemaTree, TreeId};
use xsm_similarity::SimScratch;

use crate::cache::{ResultCache, DEFAULT_RESULT_CACHE_CAPACITY};
use crate::error::{ConfigError, ServiceError, ServiceResult};
use crate::metrics::{EngineMetrics, MetricsRegistry, ServedVia, StartupSource};
use crate::planner::{PlanStats, PlannerConfig, QueryPlanner};
use crate::query::{MatchQuery, MatchResponse, PlannedStrategy, QueryStrategy};
use crate::service::MatchService;
use crate::singleflight::{Join, Singleflight};

/// Construction-time configuration of a [`MatchEngine`].
///
/// `#[non_exhaustive]`: build one with [`EngineConfig::builder`] (validating) or
/// [`EngineConfig::default`] plus the `with_*` methods (clamping) — future
/// fields then cannot break downstream construction.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Number of worker threads (`>= 1`).
    pub workers: usize,
    /// Capacity of the bounded submission queue; submitters block when it is full
    /// (backpressure instead of unbounded buffering).
    pub queue_capacity: usize,
    /// Capacity of the result cache (whole responses, LRU).
    pub result_cache_capacity: usize,
    /// Element-matching configuration (similarity floor, per-node cap).
    pub element: ElementMatchConfig,
    /// Clustering variant the pipeline runs per query.
    pub variant: ClusteringVariant,
    /// Objective-function configuration (α, K) applied to every query.
    pub objective: ObjectiveConfig,
    /// Planner tuning (overlap fraction, pruning budget).
    pub planner: PlannerConfig,
    /// Dead fraction of the posting arena at which a delete triggers
    /// compaction (`0.0` compacts after every delete, `1.0` effectively
    /// never). Compaction is physical-only — it cannot change any answer.
    pub compaction_threshold: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            queue_capacity: 64,
            result_cache_capacity: DEFAULT_RESULT_CACHE_CAPACITY,
            element: ElementMatchConfig::default(),
            variant: ClusteringVariant::Medium,
            objective: ObjectiveConfig::default(),
            planner: PlannerConfig::default(),
            compaction_threshold: 0.3,
        }
    }
}

impl EngineConfig {
    /// Builder-style worker-count override (`0` is clamped to `1`).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Builder-style submission-queue capacity override.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Builder-style result-cache capacity override.
    pub fn with_result_cache_capacity(mut self, capacity: usize) -> Self {
        self.result_cache_capacity = capacity.max(1);
        self
    }

    /// Builder-style element-matching override.
    pub fn with_element_config(mut self, element: ElementMatchConfig) -> Self {
        self.element = element;
        self
    }

    /// Builder-style clustering-variant override.
    pub fn with_variant(mut self, variant: ClusteringVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Builder-style objective override.
    pub fn with_objective(mut self, objective: ObjectiveConfig) -> Self {
        self.objective = objective;
        self
    }

    /// Builder-style planner override.
    pub fn with_planner(mut self, planner: PlannerConfig) -> Self {
        self.planner = planner;
        self
    }

    /// Builder-style compaction-threshold override (clamped into `0.0..=1.0`;
    /// NaN reads as "never compact").
    pub fn with_compaction_threshold(mut self, threshold: f64) -> Self {
        self.compaction_threshold = if threshold.is_nan() {
            1.0
        } else {
            threshold.clamp(0.0, 1.0)
        };
        self
    }

    /// A validating builder seeded with the default configuration. Unlike the
    /// `with_*` methods (which clamp nonsense values), the builder **rejects**
    /// them: `build()` returns a [`ConfigError`] naming the bad field.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder {
            config: EngineConfig::default(),
        }
    }
}

/// Validating builder for [`EngineConfig`]; see [`EngineConfig::builder`].
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Number of worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Capacity of the bounded submission queue.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Capacity of the result cache (whole responses, LRU).
    pub fn result_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.result_cache_capacity = capacity;
        self
    }

    /// Element-matching configuration.
    pub fn element(mut self, element: ElementMatchConfig) -> Self {
        self.config.element = element;
        self
    }

    /// Clustering variant the pipeline runs per query.
    pub fn variant(mut self, variant: ClusteringVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Objective-function configuration.
    pub fn objective(mut self, objective: ObjectiveConfig) -> Self {
        self.config.objective = objective;
        self
    }

    /// Planner tuning.
    pub fn planner(mut self, planner: PlannerConfig) -> Self {
        self.config.planner = planner;
        self
    }

    /// Compaction trigger threshold.
    pub fn compaction_threshold(mut self, threshold: f64) -> Self {
        self.config.compaction_threshold = threshold;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<EngineConfig, ConfigError> {
        if self.config.workers == 0 {
            return Err(ConfigError::new("workers", "must be >= 1"));
        }
        if self.config.queue_capacity == 0 {
            return Err(ConfigError::new("queue_capacity", "must be >= 1"));
        }
        if self.config.result_cache_capacity == 0 {
            return Err(ConfigError::new("result_cache_capacity", "must be >= 1"));
        }
        if !(0.0..=1.0).contains(&self.config.compaction_threshold) {
            return Err(ConfigError::new(
                "compaction_threshold",
                "must be within 0.0..=1.0",
            ));
        }
        Ok(self.config)
    }
}

/// Per-worker reusable working memory: the similarity kernels' scratch rows plus
/// the candidate generator's counters/heap. One bundle per worker thread keeps the
/// whole serving hot path allocation-free in steady state (candidate generation
/// allocates only its output `Vec`).
#[derive(Default)]
struct WorkerScratch {
    sim: SimScratch,
    candidates: CandidateScratch,
}

/// The mutable half of the engine: the live repository (forest + index +
/// generation) and the per-tree centroid table derived from it. Everything in
/// here moves together under one [`RwLock`] — queries hold the read side for
/// their whole serving span, mutations take the write side, so every response
/// is computed against exactly one generation.
struct EngineState {
    live: LiveRepository,
    /// Per-tree centroid nodes: pre-populated on a snapshot load, computed on
    /// first use on a cold build (the query pipeline never reads them, so cold
    /// construction pays nothing). Appends extend the table incrementally when
    /// it is already materialised — a tree's medoid is tree-local, so the
    /// extension equals a full recompute.
    centroids: std::sync::OnceLock<Vec<Option<GlobalNodeId>>>,
}

impl EngineState {
    /// The centroid table, computing it on first use.
    fn centroids(&self) -> &[Option<GlobalNodeId>] {
        self.centroids.get_or_init(|| {
            xsm_core::centroid::tree_centroids(
                self.live.repo(),
                &xsm_core::distance::PathLengthDistance,
            )
        })
    }

    /// Keep an already-materialised centroid table covering newly appended
    /// trees (an unmaterialised table needs nothing — first use covers them).
    fn extend_centroids(&mut self, appended: &[TreeId]) {
        let EngineState { live, centroids } = self;
        if let Some(table) = centroids.get_mut() {
            for &tid in appended {
                table.push(xsm_core::centroid::tree_medoid(
                    live.repo(),
                    &xsm_core::distance::PathLengthDistance,
                    &live.repo().tree_node_ids(tid),
                ));
            }
        }
    }
}

/// Everything the workers share; lives behind one `Arc` so worker threads can outlive
/// borrows of the engine handle.
struct EngineCore {
    state: RwLock<EngineState>,
    matcher: ClusteredMatcher,
    generator: BranchAndBoundGenerator,
    planner: QueryPlanner,
    results: ResultCache,
    inflight: Singleflight<ServiceResult<MatchResponse>>,
    metrics: MetricsRegistry,
    objective: ObjectiveConfig,
    /// Dead-posting fraction at which a delete triggers arena compaction.
    compaction_threshold: f64,
}

/// The cache → singleflight → compute serving discipline shared by the engine's
/// workers and the sharded router (`shard::RouterCore`): look the fingerprint up
/// in the result cache, otherwise join the in-flight map — followers take a clone
/// of the leader's outcome, the leader runs `compute`, publishes and caches. One
/// implementation, so the two serving layers cannot drift apart in accounting or
/// in the leader's cache re-check. `compute` is `FnMut` because a caller can lose
/// a cancelled leader's flight and end up leading a later one.
///
/// Outcomes are [`ServiceResult`]s: errors and **incomplete** (degraded-merge)
/// responses are published to coalesced followers — everyone waiting on the
/// flight shares the leader's fate — but are **never cached**, so the next
/// non-concurrent submission retries against a possibly-recovered backend.
pub(crate) fn serve_with_caches(
    results: &ResultCache,
    inflight: &Singleflight<ServiceResult<MatchResponse>>,
    metrics: &MetricsRegistry,
    fingerprint: String,
    mut compute: impl FnMut(&str) -> ServiceResult<MatchResponse>,
) -> ServiceResult<MatchResponse> {
    let start = Instant::now();
    if let Some(cached) = results.get(&fingerprint) {
        // Deep-clone outside the cache lock (get returns an Arc) so warm traffic
        // doesn't serialise workers on the clone.
        let mut response = (*cached).clone();
        response.cache_hit = true;
        response.latency = start.elapsed();
        metrics.record(response.latency, response.strategy, ServedVia::ResultCache);
        return Ok(response);
    }
    loop {
        match inflight.join(&fingerprint) {
            Join::Follower(Some(Ok(leader_response))) => {
                let mut response = leader_response;
                response.cache_hit = true;
                response.latency = start.elapsed();
                metrics.record(response.latency, response.strategy, ServedVia::Coalesced);
                if response.incomplete {
                    metrics.record_degraded();
                }
                return Ok(response);
            }
            Join::Follower(Some(Err(error))) => {
                // The leader's scatter failed outright; every coalesced caller
                // shares the failure (retrying here would thunder onto a dead
                // backend).
                metrics.record_failure();
                return Err(error);
            }
            // The leader died without publishing (a pipeline panic is a bug, but
            // it must not strand followers): try to take the lead ourselves.
            Join::Follower(None) => continue,
            Join::Leader(guard) => {
                // Re-check the result cache: the previous leader may have
                // published between our miss and this join.
                if let Some(cached) = results.get(&fingerprint) {
                    let response = (*cached).clone();
                    guard.complete(Ok(response.clone()));
                    let mut out = response;
                    out.cache_hit = true;
                    out.latency = start.elapsed();
                    metrics.record(out.latency, out.strategy, ServedVia::ResultCache);
                    return Ok(out);
                }
                match compute(&fingerprint) {
                    Ok(response) => {
                        if !response.incomplete {
                            // Degraded merges stay out of the cache: caching one
                            // would keep serving the partial answer long after
                            // the failed shards recovered.
                            results.insert(fingerprint, response.clone());
                        }
                        guard.complete(Ok(response.clone()));
                        let mut out = response;
                        out.latency = start.elapsed();
                        metrics.record(out.latency, out.strategy, ServedVia::Pipeline);
                        if out.incomplete {
                            metrics.record_degraded();
                        }
                        return Ok(out);
                    }
                    Err(error) => {
                        guard.complete(Err(error.clone()));
                        metrics.record_failure();
                        return Err(error);
                    }
                }
            }
        }
    }
}

impl EngineCore {
    /// Answer one query: result cache → singleflight → planner → candidate
    /// generation (feature kernels) → clustered pipeline → top-k cut. This is the
    /// sequential unit of work; concurrency only ever runs *whole* queries in
    /// parallel, which is what makes worker-count invisible in the results.
    fn answer(
        &self,
        query: &MatchQuery,
        scratch: &mut WorkerScratch,
    ) -> ServiceResult<MatchResponse> {
        // Hold the state read lock across the whole serving span — cache
        // lookup, singleflight join, compute — the same write-gate discipline
        // the sharded router's swap gate applies: a mutation's write lock
        // drains every in-flight query first, so a response can never mix two
        // generations and a cache insert can never race a mutation's clear.
        let state = self.state.read().expect("engine state lock poisoned");
        serve_with_caches(
            &self.results,
            &self.inflight,
            &self.metrics,
            query.fingerprint(),
            |fingerprint| Ok(self.run_pipeline(&state, query, fingerprint, scratch)),
        )
    }

    /// The uncached pipeline: plan, generate candidates through the filter–verify
    /// index and the feature kernels, run the clustered matcher, cut to top-k.
    fn run_pipeline(
        &self,
        state: &EngineState,
        query: &MatchQuery,
        fingerprint: &str,
        scratch: &mut WorkerScratch,
    ) -> MatchResponse {
        let index = state.live.index();
        // The element floor doubles as the candidate generator's length-window
        // anchor: pairs outside the window cannot clear the floor after scoring.
        let length_floor = self.matcher.element_config().min_similarity;
        // Resolve every personal name against the index once; the Auto plan
        // estimate and index-pruned generation consume the same resolutions.
        // Forced-exhaustive queries never touch the gram index, so they skip it.
        let resolved = match query.strategy {
            QueryStrategy::Exhaustive => None,
            QueryStrategy::Auto | QueryStrategy::IndexPruned => {
                Some(resolve_personal_queries(&query.personal, index))
            }
        };
        let plan = match &resolved {
            Some(resolved) => self.planner.plan_resolved(
                &query.personal,
                query.strategy,
                index,
                length_floor,
                resolved,
            ),
            None => self
                .planner
                .plan(&query.personal, query.strategy, index, length_floor),
        };
        // The pub `threshold` field (and a future deserialized front-end) can bypass
        // the builder's clamp; sanitise here so NaN can't poison every `Δ ≥ δ`
        // comparison. NaN reads as "no threshold given a garbage value" → strictest.
        let threshold = if query.threshold.is_nan() {
            1.0
        } else {
            query.threshold.clamp(0.0, 1.0)
        };
        let problem = MatchingProblem::new(query.personal.clone(), self.objective, threshold);
        let candidates = match plan.strategy {
            // The pruned path only ever resolves out of Auto or forced
            // IndexPruned requests, both of which resolved above.
            PlannedStrategy::IndexPruned => match_elements_with_index_features_resolved(
                &problem.personal,
                index,
                self.matcher.element_config(),
                self.planner.config().min_overlap,
                resolved
                    .as_deref()
                    .expect("index-pruned serving implies resolved queries"),
                &mut scratch.sim,
                &mut scratch.candidates,
            ),
            PlannedStrategy::Exhaustive => match_elements_features(
                &problem.personal,
                index.features(),
                self.matcher.element_config(),
                &mut scratch.sim,
            ),
        };
        let candidate_count = candidates.total_candidates();
        let report = self.matcher.run_on_candidates(
            &problem,
            state.live.repo(),
            &candidates,
            &self.generator,
        );
        let total_matches = report.mappings.len();
        let mut mappings = report.mappings;
        mappings.truncate(query.top_k);

        MatchResponse {
            fingerprint: fingerprint.to_string(),
            strategy: plan.strategy,
            cache_hit: false,
            mappings,
            candidate_count,
            total_matches,
            incomplete: false,
            failed_shards: Vec::new(),
            generation: state.live.generation(),
            latency: Duration::ZERO,
        }
    }
}

/// One queued unit of work: the query plus the submitter's reply channel.
struct Job {
    query: MatchQuery,
    reply: SyncSender<ServiceResult<MatchResponse>>,
}

/// The transports a [`PendingResponse`] can resolve through.
#[derive(Debug)]
enum PendingInner {
    /// A reply channel a pool worker will answer on (in-process engines and the
    /// sharded router).
    Channel(Receiver<ServiceResult<MatchResponse>>),
    /// A dedicated thread performing the request (the TCP client, one round
    /// trip per thread).
    Task(JoinHandle<ServiceResult<MatchResponse>>),
    /// An outcome known at submission time (fault injection, immediate
    /// rejections).
    Ready(ServiceResult<MatchResponse>),
}

/// A handle to a submitted query; [`PendingResponse::wait`] blocks until the
/// answer — or the serving error — is available.
///
/// Every [`crate::MatchService`] implementation hands these out, whatever its
/// transport: in-process submissions resolve through a worker's reply channel,
/// remote submissions through a request thread, injected faults immediately.
#[derive(Debug)]
pub struct PendingResponse {
    inner: PendingInner,
}

impl PendingResponse {
    /// Wrap a reply channel (used by the engine's and the sharded router's
    /// worker pools).
    pub(crate) fn from_channel(rx: Receiver<ServiceResult<MatchResponse>>) -> Self {
        PendingResponse {
            inner: PendingInner::Channel(rx),
        }
    }

    /// Wrap a thread computing the response (used by transports that dedicate a
    /// thread per in-flight request, e.g. the TCP client). A panicking thread
    /// resolves to [`ServiceError::Internal`], never a caller panic.
    pub fn from_task(handle: JoinHandle<ServiceResult<MatchResponse>>) -> Self {
        PendingResponse {
            inner: PendingInner::Task(handle),
        }
    }

    /// A response (or error) that is already available; [`PendingResponse::wait`]
    /// returns it without blocking. Useful for fault injection and for services
    /// that can answer at submission time.
    pub fn ready(result: ServiceResult<MatchResponse>) -> Self {
        PendingResponse {
            inner: PendingInner::Ready(result),
        }
    }

    /// Block until the response is ready. A serving backend that died before
    /// answering yields [`ServiceError::Internal`] — waiting never panics.
    pub fn wait(self) -> ServiceResult<MatchResponse> {
        match self.inner {
            PendingInner::Channel(rx) => rx
                .recv()
                .map_err(|_| ServiceError::internal("serving worker dropped the reply channel"))?,
            PendingInner::Task(handle) => handle
                .join()
                .map_err(|_| ServiceError::internal("response thread panicked"))?,
            PendingInner::Ready(result) => result,
        }
    }
}

/// A concurrent match-serving engine over one repository.
///
/// Construction amortises the expensive artefacts (name index, per-node feature
/// store, clustering configuration) across every subsequent query; serving happens
/// on a fixed pool of worker threads behind a bounded queue, each worker owning its
/// similarity scratch buffers. Dropping the engine shuts the pool down and joins
/// every worker.
pub struct MatchEngine {
    core: Arc<EngineCore>,
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl MatchEngine {
    /// Build an engine over `repo` (index and feature-store construction happens
    /// here) and start the worker pool.
    pub fn new(repo: SchemaRepository, config: EngineConfig) -> Self {
        let start = Instant::now();
        let index = NameIndex::build(&repo);
        Self::assemble(
            repo,
            index,
            None,
            0,
            config,
            start,
            StartupSource::ColdBuild,
        )
    }

    /// Start an engine from the snapshot file at `path` — no index rebuild, no
    /// feature recomputation; everything `MatchEngine::new` constructs is read
    /// back from the file. Fails closed with a typed [`SnapshotError`] on any
    /// corrupt, truncated or version-skewed snapshot.
    pub fn from_snapshot(
        path: impl AsRef<std::path::Path>,
        config: EngineConfig,
    ) -> Result<Self, SnapshotError> {
        let start = Instant::now();
        let snapshot = SnapshotReader::read(path)?;
        Ok(Self::from_snapshot_parts(snapshot, config, start))
    }

    /// [`MatchEngine::from_snapshot`], additionally requiring the snapshot's
    /// generation stamp to equal `generation` —
    /// [`SnapshotError::GenerationMismatch`] otherwise. The guard callers use
    /// to refuse serving a stale index for a repository that has moved on.
    pub fn from_snapshot_expecting(
        path: impl AsRef<std::path::Path>,
        config: EngineConfig,
        generation: u64,
    ) -> Result<Self, SnapshotError> {
        let start = Instant::now();
        let snapshot = SnapshotReader::read(path)?.expect_generation(generation)?;
        Ok(Self::from_snapshot_parts(snapshot, config, start))
    }

    /// Assemble an engine from an already-loaded [`Snapshot`] (the in-memory
    /// entry point [`MatchEngine::from_snapshot`] wraps with file I/O).
    pub fn from_snapshot_parts(snapshot: Snapshot, config: EngineConfig, start: Instant) -> Self {
        Self::assemble(
            snapshot.repository,
            snapshot.index,
            Some(snapshot.centroids),
            snapshot.generation,
            config,
            start,
            StartupSource::SnapshotLoad,
        )
    }

    /// The engine's current repository generation: the snapshot stamp it was
    /// loaded with (0 for a cold build), +1 per applied mutation batch. Every
    /// response carries the generation it was computed against.
    pub fn generation(&self) -> u64 {
        self.read_state().live.generation()
    }

    /// Serialize this engine's startup artefacts — repository, index, feature
    /// store, per-tree centroids and the tombstone set — to a snapshot file
    /// stamped `generation`. Returns the file size in bytes.
    pub fn write_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
        generation: u64,
    ) -> Result<u64, SnapshotError> {
        let state = self.read_state();
        SnapshotWriter::new(generation).write(
            state.live.repo(),
            state.live.index(),
            state.centroids(),
            path,
        )
    }

    /// The per-tree centroid (medoid) table: loaded from the snapshot on a warm
    /// start, computed on first use (deterministically) on a cold build, and
    /// extended in place when trees are appended. Owned because the table
    /// lives under the state lock.
    pub fn tree_centroids(&self) -> Vec<Option<GlobalNodeId>> {
        self.read_state().centroids().to_vec()
    }

    fn read_state(&self) -> RwLockReadGuard<'_, EngineState> {
        self.core.state.read().expect("engine state lock poisoned")
    }

    /// The shared constructor tail: wrap prebuilt artefacts in the core, stamp
    /// the startup metrics, and start the worker pool.
    fn assemble(
        repo: SchemaRepository,
        index: NameIndex,
        centroids: Option<Vec<Option<GlobalNodeId>>>,
        generation: u64,
        config: EngineConfig,
        start: Instant,
        source: StartupSource,
    ) -> Self {
        let centroid_cell = std::sync::OnceLock::new();
        if let Some(centroids) = centroids {
            let _ = centroid_cell.set(centroids);
        }
        let core = Arc::new(EngineCore {
            state: RwLock::new(EngineState {
                live: LiveRepository::from_parts(repo, index, generation),
                centroids: centroid_cell,
            }),
            matcher: ClusteredMatcher::for_variant(config.variant)
                .with_element_config(config.element.clone()),
            generator: BranchAndBoundGenerator::new(),
            planner: QueryPlanner::new(config.planner),
            results: ResultCache::with_capacity(config.result_cache_capacity),
            inflight: Singleflight::new(),
            metrics: MetricsRegistry::new(),
            objective: config.objective,
            compaction_threshold: config.compaction_threshold,
        });
        let worker_count = config.workers.max(1);
        let (tx, rx) = sync_channel::<Job>(config.queue_capacity.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..worker_count)
            .map(|i| {
                let core = Arc::clone(&core);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("xsm-serve-{i}"))
                    .spawn(move || {
                        // Per-worker scratch: the similarity kernels' and candidate
                        // generator's only mutable working memory, reused across
                        // every query this worker serves.
                        let mut scratch = WorkerScratch::default();
                        loop {
                            // Hold the queue lock only while popping, never while
                            // matching.
                            let job = { rx.lock().unwrap().recv() };
                            match job {
                                Ok(job) => {
                                    let response = core.answer(&job.query, &mut scratch);
                                    // The submitter may have dropped its handle; serving
                                    // already happened, so ignore the dead channel.
                                    let _ = job.reply.send(response);
                                }
                                Err(_) => break, // queue closed: engine is shutting down
                            }
                        }
                    })
                    .expect("failed to spawn match-engine worker")
            })
            .collect();
        core.metrics.set_startup(
            start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            source,
        );
        MatchEngine {
            core,
            tx: Some(tx),
            workers,
        }
    }

    /// Build an engine with the default configuration.
    pub fn with_defaults(repo: SchemaRepository) -> Self {
        Self::new(repo, EngineConfig::default())
    }

    /// Number of worker threads serving queries.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The repository the engine serves, behind the state read lock. Holding
    /// the guard blocks mutations — drop it before calling [`MatchEngine::append_trees`]
    /// and friends on the same thread.
    pub fn repository(&self) -> RepositoryGuard<'_> {
        RepositoryGuard {
            state: self.read_state(),
        }
    }

    /// The name index (its [`xsm_repo::FeatureStore`] included), behind the
    /// state read lock.
    pub fn index(&self) -> IndexGuard<'_> {
        IndexGuard {
            state: self.read_state(),
        }
    }

    /// Append a batch of trees without a rebuild: the index's posting arena,
    /// the feature store and the tree table all grow tail-only, existing
    /// entries untouched. One generation bump per batch; the result cache is
    /// invalidated precisely (old responses carry the old generation).
    /// Returns the consecutive [`TreeId`]s the trees received.
    pub fn append_trees(&self, trees: Vec<SchemaTree>) -> ServiceResult<Vec<TreeId>> {
        let mut state = self.write_state();
        let ids = state.live.append_trees(trees).map_err(live_error)?;
        state.extend_centroids(&ids);
        self.core.results.clear();
        Ok(ids)
    }

    /// [`MatchEngine::append_trees`] landing on an explicit target generation
    /// (`> current`) — how a sharded router keeps every shard in step. The
    /// target is validated before anything mutates.
    pub fn append_trees_at(
        &self,
        trees: Vec<SchemaTree>,
        generation: u64,
    ) -> ServiceResult<Vec<TreeId>> {
        let mut state = self.write_state();
        if generation <= state.live.generation() {
            return Err(live_error(LiveError::StaleGeneration {
                current: state.live.generation(),
                requested: generation,
            }));
        }
        let ids = state.live.append_trees(trees).map_err(live_error)?;
        if state.live.generation() < generation {
            state
                .live
                .advance_generation(generation)
                .expect("target was validated above");
        }
        state.extend_centroids(&ids);
        self.core.results.clear();
        Ok(ids)
    }

    /// Tombstone a batch of trees without a rebuild: their postings are
    /// filtered out of candidate generation immediately and reclaimed by
    /// LSM-style arena compaction once the dead fraction crosses
    /// [`EngineConfig::compaction_threshold`]. The batch is validated before
    /// anything mutates (atomic). One generation bump per batch; the result
    /// cache is invalidated. Returns the number of postings tombstoned.
    pub fn delete_trees(&self, trees: &[TreeId]) -> ServiceResult<usize> {
        let mut state = self.write_state();
        let dropped = state.live.delete_trees(trees).map_err(live_error)?;
        state.live.maybe_compact(self.core.compaction_threshold);
        self.core.results.clear();
        Ok(dropped)
    }

    /// [`MatchEngine::delete_trees`] landing on an explicit target generation
    /// (`> current`); see [`MatchEngine::append_trees_at`].
    pub fn delete_trees_at(&self, trees: &[TreeId], generation: u64) -> ServiceResult<usize> {
        let mut state = self.write_state();
        if generation <= state.live.generation() {
            return Err(live_error(LiveError::StaleGeneration {
                current: state.live.generation(),
                requested: generation,
            }));
        }
        let dropped = state.live.delete_trees(trees).map_err(live_error)?;
        if state.live.generation() < generation {
            state
                .live
                .advance_generation(generation)
                .expect("target was validated above");
        }
        state.live.maybe_compact(self.core.compaction_threshold);
        self.core.results.clear();
        Ok(dropped)
    }

    /// Force the arena compaction [`MatchEngine::delete_trees`] would trigger
    /// at the threshold. Physical-only: answers and generation are unchanged,
    /// so the result cache stays valid. Returns the postings reclaimed.
    pub fn compact(&self) -> usize {
        self.write_state().live.compact()
    }

    /// Advance the generation without a content change — how a router keeps
    /// unmutated shards in step with mutated ones. Invalidates the result
    /// cache (cached responses carry the old generation stamp).
    pub fn advance_generation(&self, generation: u64) -> ServiceResult<()> {
        let mut state = self.write_state();
        state
            .live
            .advance_generation(generation)
            .map_err(live_error)?;
        self.core.results.clear();
        Ok(())
    }

    /// The tombstoned trees, ascending (owned: the set lives under the state
    /// lock).
    pub fn tombstoned_trees(&self) -> Vec<TreeId> {
        self.read_state().live.tombstoned_trees().to_vec()
    }

    /// Dead fraction of the index's posting arena — the compaction trigger
    /// input, exposed for observability.
    pub fn dead_posting_fraction(&self) -> f64 {
        self.read_state().live.dead_posting_fraction()
    }

    fn write_state(&self) -> std::sync::RwLockWriteGuard<'_, EngineState> {
        self.core.state.write().expect("engine state lock poisoned")
    }

    /// Enqueue one query; blocks while the submission queue is full (backpressure).
    /// Fails with [`ServiceError::Internal`] only if the worker pool died — an
    /// engine bug, not a load condition.
    pub fn submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse> {
        let (reply, rx) = sync_channel(1);
        self.tx
            .as_ref()
            .expect("engine is running until dropped")
            .send(Job { query, reply })
            .map_err(|_| ServiceError::internal("match-engine worker pool is gone"))?;
        Ok(PendingResponse::from_channel(rx))
    }

    /// Like [`MatchEngine::submit`] but **never blocks**: a full submission
    /// queue is reported as [`ServiceError::QueueFull`] instead of applying
    /// backpressure. The shed-load entry point for latency-sensitive callers.
    pub fn try_submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse> {
        let (reply, rx) = sync_channel(1);
        match self
            .tx
            .as_ref()
            .expect("engine is running until dropped")
            .try_send(Job { query, reply })
        {
            Ok(()) => Ok(PendingResponse::from_channel(rx)),
            Err(TrySendError::Full(_)) => Err(ServiceError::QueueFull),
            Err(TrySendError::Disconnected(_)) => {
                Err(ServiceError::internal("match-engine worker pool is gone"))
            }
        }
    }

    /// Answer one query, blocking until it is served.
    ///
    /// # Panics
    /// Panics if the worker pool died mid-request (an engine bug). Use
    /// [`MatchEngine::submit`] for the `Result`-returning path.
    pub fn query(&self, query: MatchQuery) -> MatchResponse {
        self.submit(query)
            .and_then(PendingResponse::wait)
            .expect("in-process engine serving cannot fail while the pool lives")
    }

    /// Serve a whole batch through the worker pool and return the responses **in
    /// input order**. Submission applies the queue's backpressure; the workers shard
    /// the batch among themselves.
    pub fn submit_batch(&self, queries: Vec<MatchQuery>) -> ServiceResult<Vec<MatchResponse>> {
        let mut pending = Vec::with_capacity(queries.len());
        for query in queries {
            pending.push(self.submit(query)?);
        }
        pending.into_iter().map(PendingResponse::wait).collect()
    }

    /// Answer a query on the *calling* thread, bypassing the pool. Identical results
    /// to [`MatchEngine::query`] (same caches, same planner); used as the sequential
    /// baseline in benches and determinism tests.
    pub fn answer_inline(&self, query: &MatchQuery) -> MatchResponse {
        let mut scratch = WorkerScratch::default();
        self.core
            .answer(query, &mut scratch)
            .expect("the in-process pipeline is infallible")
    }

    /// A point-in-time snapshot of the serving metrics.
    pub fn metrics(&self) -> EngineMetrics {
        self.core.metrics.snapshot()
    }

    /// Number of responses currently held by the result cache.
    pub fn result_cache_len(&self) -> usize {
        self.core.results.len()
    }

    /// Drop every cached response (e.g. after the repository's ranking semantics
    /// change out of band). The feature store is derived purely from the immutable
    /// repository names, so it stays.
    pub fn invalidate_results(&self) {
        self.core.results.clear();
    }
}

/// Read-locked view of the engine's repository ([`MatchEngine::repository`]);
/// derefs to [`SchemaRepository`]. Mutations block while a guard is held.
pub struct RepositoryGuard<'a> {
    state: RwLockReadGuard<'a, EngineState>,
}

impl std::ops::Deref for RepositoryGuard<'_> {
    type Target = SchemaRepository;

    fn deref(&self) -> &SchemaRepository {
        self.state.live.repo()
    }
}

/// Read-locked view of the engine's name index ([`MatchEngine::index`]);
/// derefs to [`NameIndex`]. Mutations block while a guard is held.
pub struct IndexGuard<'a> {
    state: RwLockReadGuard<'a, EngineState>,
}

impl std::ops::Deref for IndexGuard<'_> {
    type Target = NameIndex;

    fn deref(&self) -> &NameIndex {
        self.state.live.index()
    }
}

/// Mutation rejections surface as [`ServiceError::BadRequest`]: the request
/// itself was invalid (unknown tree, stale generation); nothing about the
/// engine is broken and nothing was applied.
fn live_error(error: LiveError) -> ServiceError {
    ServiceError::bad_request(error.to_string())
}

impl MatchService for MatchEngine {
    fn submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse> {
        MatchEngine::submit(self, query)
    }

    fn submit_batch(&self, queries: Vec<MatchQuery>) -> ServiceResult<Vec<MatchResponse>> {
        MatchEngine::submit_batch(self, queries)
    }

    fn metrics_snapshot(&self) -> ServiceResult<EngineMetrics> {
        Ok(self.metrics())
    }

    fn plan_stats(&self, personal: &SchemaTree, length_floor: f64) -> ServiceResult<PlanStats> {
        Ok(PlanStats::measure(
            personal,
            self.read_state().live.index(),
            length_floor,
        ))
    }
}

impl Drop for MatchEngine {
    fn drop(&mut self) {
        // Closing the channel wakes every worker with RecvError; join them so no
        // thread outlives the repository it borrows through the Arc.
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryStrategy;
    use xsm_schema::tree::{paper_personal_schema, paper_repository_fragment};
    use xsm_schema::{SchemaNode, TreeBuilder};

    fn small_repo() -> SchemaRepository {
        let people = TreeBuilder::new("people")
            .root(SchemaNode::element("person"))
            .child(SchemaNode::element("name"))
            .sibling(SchemaNode::element("email"))
            .sibling(SchemaNode::element("address"))
            .build();
        SchemaRepository::from_trees(vec![paper_repository_fragment(), people])
    }

    fn engine(workers: usize) -> MatchEngine {
        MatchEngine::new(
            small_repo(),
            EngineConfig::default()
                .with_workers(workers)
                .with_element_config(ElementMatchConfig::default().with_min_similarity(0.4)),
        )
    }

    fn book_query() -> MatchQuery {
        MatchQuery::new(paper_personal_schema())
            .with_top_k(5)
            .with_threshold(0.5)
    }

    #[test]
    fn serves_the_fig1_query() {
        let engine = engine(2);
        assert_eq!(engine.workers(), 2);
        let response = engine.query(book_query());
        assert!(!response.cache_hit);
        assert!(!response.mappings.is_empty());
        assert!(response.mappings.len() <= 5);
        let best = &response.mappings[0];
        assert!(best.score >= 0.5);
        assert!(best.is_structurally_valid());
        // Scores are sorted best-first.
        for pair in response.mappings.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn repeated_query_hits_the_result_cache_with_identical_content() {
        let engine = engine(2);
        let first = engine.query(book_query());
        let second = engine.query(book_query());
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(first.result_digest(), second.result_digest());
        let metrics = engine.metrics();
        assert_eq!(metrics.queries_served, 2);
        assert_eq!(metrics.result_cache_hits, 1);
        assert_eq!(engine.result_cache_len(), 1);
        engine.invalidate_results();
        assert_eq!(engine.result_cache_len(), 0);
        assert!(!engine.query(book_query()).cache_hit);
    }

    #[test]
    fn inline_and_pooled_answers_agree() {
        let pooled = engine(3).query(book_query());
        let inline = engine(1).answer_inline(&book_query());
        assert_eq!(pooled.result_digest(), inline.result_digest());
    }

    #[test]
    fn top_k_truncates_but_counts_all_matches() {
        let engine = engine(1);
        let all = engine.query(book_query().with_top_k(100));
        let one = engine.query(book_query().with_top_k(1));
        assert_eq!(one.mappings.len(), 1.min(all.total_matches));
        assert_eq!(one.total_matches, all.total_matches);
        assert_eq!(one.mappings[0], all.mappings[0]);
    }

    #[test]
    fn forced_strategies_round_trip_through_the_engine() {
        let engine = engine(2);
        let pruned = engine.query(book_query().with_strategy(QueryStrategy::IndexPruned));
        let exhaustive = engine.query(book_query().with_strategy(QueryStrategy::Exhaustive));
        assert_eq!(pruned.strategy, PlannedStrategy::IndexPruned);
        assert_eq!(exhaustive.strategy, PlannedStrategy::Exhaustive);
        // Index pruning never invents candidates.
        assert!(pruned.candidate_count <= exhaustive.candidate_count);
        let metrics = engine.metrics();
        assert_eq!(metrics.index_pruned_queries, 1);
        assert_eq!(metrics.exhaustive_queries, 1);
        assert!(metrics.p50_latency_us > 0);
    }

    #[test]
    fn unsanitised_thresholds_cannot_poison_serving() {
        let engine = engine(1);
        let mut nan_query = book_query();
        nan_query.threshold = f64::NAN;
        // NaN serves as δ = 1.0: a valid (possibly empty) answer, and every returned
        // mapping would be a perfect match. Must not panic or return NaN scores.
        let response = engine.answer_inline(&nan_query);
        assert!(response.mappings.iter().all(|m| m.score >= 1.0 - 1e-12));

        let mut wild = book_query();
        wild.threshold = -3.0;
        let clamped = engine.answer_inline(&wild);
        let built = engine.answer_inline(&book_query().with_threshold(-3.0));
        assert_eq!(clamped.mappings.len(), built.mappings.len());
    }

    #[test]
    fn batch_preserves_input_order() {
        let engine = engine(4);
        let queries: Vec<MatchQuery> = (1..=8).map(|k| book_query().with_top_k(k)).collect();
        let responses = engine.submit_batch(queries.clone()).unwrap();
        assert_eq!(responses.len(), 8);
        for (query, response) in queries.iter().zip(&responses) {
            assert_eq!(response.fingerprint, query.fingerprint());
            assert!(response.mappings.len() <= query.top_k);
        }
    }

    #[test]
    fn identical_concurrent_queries_coalesce_or_hit_the_cache() {
        // 8 copies of one query against 4 workers: exactly one pipeline execution;
        // every other copy is served by the result cache or coalesces onto the
        // leader's in-flight computation. Which of the two depends on timing, but
        // the accounting invariant does not.
        let engine = engine(4);
        let responses = engine
            .submit_batch(vec![
                book_query().with_strategy(QueryStrategy::Exhaustive);
                8
            ])
            .unwrap();
        let digest = responses[0].result_digest();
        for r in &responses {
            assert_eq!(r.result_digest(), digest, "duplicates must not diverge");
        }
        let m = engine.metrics();
        assert_eq!(m.queries_served, 8);
        assert_eq!(
            m.exhaustive_queries + m.index_pruned_queries,
            1,
            "one pipeline execution for 8 identical queries"
        );
        assert_eq!(m.result_cache_hits + m.coalesced_queries, 7);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let engine = engine(4);
        let _ = engine.query(book_query());
        drop(engine); // must not hang or panic
    }

    #[test]
    fn builder_validates_instead_of_clamping() {
        assert_eq!(
            EngineConfig::builder()
                .workers(0)
                .build()
                .unwrap_err()
                .field,
            "workers"
        );
        assert_eq!(
            EngineConfig::builder()
                .queue_capacity(0)
                .build()
                .unwrap_err()
                .field,
            "queue_capacity"
        );
        assert_eq!(
            EngineConfig::builder()
                .result_cache_capacity(0)
                .build()
                .unwrap_err()
                .field,
            "result_cache_capacity"
        );
        let config = EngineConfig::builder()
            .workers(2)
            .queue_capacity(7)
            .result_cache_capacity(11)
            .element(ElementMatchConfig::default().with_min_similarity(0.4))
            .build()
            .unwrap();
        assert_eq!(config.workers, 2);
        assert_eq!(config.queue_capacity, 7);
        assert_eq!(config.result_cache_capacity, 11);
    }

    #[test]
    fn try_submit_reports_queue_full_instead_of_blocking() {
        let engine = MatchEngine::new(
            small_repo(),
            EngineConfig::builder()
                .workers(1)
                .queue_capacity(1)
                .build()
                .unwrap(),
        );
        let blocker = book_query();
        let fp = blocker.fingerprint();
        // Take the singleflight lead for the blocker's fingerprint so the lone
        // worker parks as a follower — the queue then backs up deterministically.
        let guard = match engine.core.inflight.join(&fp) {
            Join::Leader(g) => g,
            Join::Follower(_) => panic!("nothing else is in flight"),
        };
        let parked = engine.submit(blocker.clone()).unwrap();
        while engine.core.inflight.waiters(&fp) == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Queue capacity 1: one more submission fits, the next must shed.
        let queued = engine.try_submit(book_query().with_top_k(1)).unwrap();
        let overflow = engine.try_submit(book_query().with_top_k(2));
        assert_eq!(overflow.unwrap_err(), ServiceError::QueueFull);
        // Publish a canned answer to release the parked worker.
        guard.complete(Ok(MatchResponse {
            fingerprint: fp,
            strategy: PlannedStrategy::Exhaustive,
            cache_hit: false,
            mappings: Vec::new(),
            candidate_count: 0,
            total_matches: 0,
            incomplete: false,
            failed_shards: Vec::new(),
            generation: 0,
            latency: Duration::ZERO,
        }));
        assert!(parked.wait().unwrap().cache_hit);
        let _ = queued.wait().unwrap();
    }

    #[test]
    fn followers_retake_the_flight_when_the_leader_is_cancelled() {
        let engine = engine(2);
        let query = book_query();
        let fp = query.fingerprint();
        // Steal the singleflight lead for the fingerprint so both workers park
        // as followers on a flight that will never publish.
        let leader = match engine.core.inflight.join(&fp) {
            Join::Leader(g) => g,
            Join::Follower(_) => panic!("nothing else is in flight"),
        };
        let first = engine.submit(query.clone()).unwrap();
        let second = engine.submit(query).unwrap();
        while engine.core.inflight.waiters(&fp) < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Kill the leader without publishing — exactly what a pipeline panic
        // does through the guard's Drop. Both followers observe the cancelled
        // slot (`Join::Follower(None)`), loop, and one retakes the lead and
        // computes the real answer instead of stranding or erroring.
        drop(leader);
        let a = first.wait().unwrap();
        let b = second.wait().unwrap();
        assert!(!a.mappings.is_empty(), "recovered leader computed for real");
        assert_eq!(a.result_digest(), b.result_digest());
        let metrics = engine.metrics();
        assert_eq!(metrics.queries_served, 2);
        assert_eq!(metrics.failed_queries, 0);
        // Exactly one follower recomputed; the other coalesced onto the
        // retaken flight or hit the freshly published cache entry. Either way
        // the accounting adds up — the cancellation double-counts nothing.
        assert_eq!(metrics.coalesced_queries + metrics.result_cache_hits, 1);
        assert_eq!(
            metrics.index_pruned_queries + metrics.exhaustive_queries,
            1,
            "the pipeline ran exactly once"
        );
    }

    #[test]
    fn engine_serves_through_the_service_trait_object() {
        let service: Box<dyn MatchService> = Box::new(engine(2));
        let response = service.submit(book_query()).unwrap().wait().unwrap();
        assert!(!response.incomplete);
        let batch = service.submit_batch(vec![book_query(); 3]).unwrap();
        assert_eq!(batch.len(), 3);
        let metrics = service.metrics_snapshot().unwrap();
        assert_eq!(metrics.queries_served, 4);
        assert_eq!(metrics.failed_queries, 0);
        let stats = service.plan_stats(&paper_personal_schema(), 0.4).unwrap();
        assert!(stats.indexed_nodes > 0);
    }
}
