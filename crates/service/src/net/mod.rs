//! Networked shard serving: frames, protocol, server, client, fault injection.
//!
//! The wire protocol is deliberately boring — length-prefixed JSON frames over
//! TCP, blocking I/O, one thread per connection — because the serving contract
//! is not: a [`crate::ShardedEngine`] routing over [`RemoteEngine`] clients must
//! return **byte-identical** answers to the single in-process engine, and must
//! degrade (not fail, not lie) when a shard stops answering. Everything in this
//! module exists to make that contract testable:
//!
//! * [`frame`] — `u32` big-endian length prefix + UTF-8 JSON payload, with a
//!   hard size cap so a garbage header cannot allocate gigabytes,
//! * [`proto`] — the versioned handshake ([`PROTOCOL_VERSION`]) and the
//!   request/response DTOs; unknown versions are rejected before any query
//!   flows,
//! * [`ShardServer`] — binds a listener over any [`crate::MatchService`]
//!   (an engine, a sharded engine, a faulty wrapper) and serves
//!   thread-per-connection; [`ShardServer::suspend`] simulates a crashed
//!   process without releasing the port,
//! * [`RemoteEngine`] — the client side: a connection pool, per-request
//!   deadlines, bounded retry with exponential backoff on transport errors —
//!   and never on protocol or server-reported errors,
//! * [`FaultyTransport`] — deterministic fault injection (scripted submit/wait
//!   failures, delays, a whole-shard kill switch) for the degraded-mode tests.
//!
//! No async runtime, no external networking crates: `std::net` only.

pub mod client;
pub mod fault;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{RemoteEngine, RemoteEngineConfig};
pub use fault::{Fault, FaultyTransport};
pub use frame::{read_frame, write_frame, FrameRead, MAX_FRAME_LEN};
pub use proto::{Hello, HelloOk, WireRequest, WireResponse, PROTOCOL_VERSION};
pub use server::ShardServer;
