//! The frame codec: `u32` big-endian length prefix, then that many payload bytes.
//!
//! Frames are the only unit the transport knows; what the bytes mean is
//! [`crate::net::proto`]'s business. The reader enforces [`MAX_FRAME_LEN`]
//! *before* allocating, so a corrupt or hostile length header cannot balloon
//! memory, and distinguishes three quiet outcomes a server loop needs to tell
//! apart: a whole frame, a clean timeout between frames ([`FrameRead::Idle`] —
//! keep polling), and a clean end of stream ([`FrameRead::Eof`] — peer hung up).
//! A timeout *mid-frame* gets a short grace budget — TCP is free to split a
//! frame across segments, and a reader with a fine-grained poll timeout can
//! wake between them — but a peer that stalls for many consecutive slices
//! inside one message is an error and the connection can only be closed.

use std::io::{self, Read, Write};

/// Upper bound on a frame's payload size (32 MiB). Large enough for any real
/// batch of schema trees, small enough that a garbage header cannot OOM the
/// server.
pub const MAX_FRAME_LEN: usize = 32 * 1024 * 1024;

/// Consecutive timeout slices tolerated *inside* a frame before the peer is
/// declared stalled. Any byte of progress resets the budget. One slice is
/// enough for the between-segments race on loopback; a few more absorb real
/// network jitter without letting a half-written frame pin a thread forever.
const MID_FRAME_TIMEOUT_GRACE: u32 = 8;

/// Outcome of one polling read attempt; see the module docs.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame's payload.
    Frame(Vec<u8>),
    /// The read timed out with **zero** header bytes consumed — no message was
    /// in flight; poll again.
    Idle,
    /// The peer closed the stream at a clean frame boundary.
    Eof,
}

/// Does this I/O error mean "the read timed out" on this platform?
/// (`read_timeout` surfaces as `WouldBlock` on Unix, `TimedOut` on Windows.)
fn is_timeout(error: &io::Error) -> bool {
    matches!(
        error.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Write one frame (length prefix + payload) and flush it.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame payload of {} bytes exceeds MAX_FRAME_LEN ({MAX_FRAME_LEN})",
                payload.len()
            ),
        ));
    }
    // One buffer, one write: with `TCP_NODELAY` two separate writes become two
    // segments, and a reader polling with a short timeout can wake between
    // them — a single write keeps header and payload in one segment for every
    // frame that fits.
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    writer.write_all(&frame)?;
    writer.flush()
}

/// Read one frame, honouring the stream's read timeout as an idle poll.
///
/// With a read timeout configured on the stream, a timeout before the first
/// header byte returns [`FrameRead::Idle`]; once any byte of a frame was
/// consumed, timeouts are retried up to the mid-frame grace budget and only
/// then become an error (the peer stalled mid-message).
pub fn read_frame_poll<R: Read>(reader: &mut R) -> io::Result<FrameRead> {
    let mut stalls = 0u32;
    let mut header = [0u8; 4];
    let mut filled = 0usize;
    while filled < header.len() {
        match reader.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(FrameRead::Eof)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "stream closed inside a frame header",
                    ))
                };
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) && filled == 0 => return Ok(FrameRead::Idle),
            Err(e) if is_timeout(&e) => stall_budget(&mut stalls, e)?,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header claims {len} bytes, exceeding MAX_FRAME_LEN ({MAX_FRAME_LEN})"),
        ));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match reader.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame payload",
                ))
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => stall_budget(&mut stalls, e)?,
            Err(e) => return Err(e),
        }
    }
    Ok(FrameRead::Frame(payload))
}

/// Charge one mid-frame timeout against the grace budget; error out once the
/// peer has stalled for too many consecutive slices without a byte of progress.
fn stall_budget(stalls: &mut u32, error: io::Error) -> io::Result<()> {
    *stalls += 1;
    if *stalls > MID_FRAME_TIMEOUT_GRACE {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("peer stalled mid-frame for {MID_FRAME_TIMEOUT_GRACE} read slices: {error}"),
        ));
    }
    Ok(())
}

/// Read one frame, treating a timeout and a clean close as hard errors — the
/// client-side shape, where a reply is expected.
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Vec<u8>> {
    match read_frame_poll(reader)? {
        FrameRead::Frame(payload) => Ok(payload),
        FrameRead::Idle => Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "timed out waiting for a reply frame",
        )),
        FrameRead::Eof => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "peer closed the connection before replying",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"world");
        assert!(matches!(
            read_frame_poll(&mut cursor).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(b"junk");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = write_frame(&mut Vec::new(), &vec![0u8; MAX_FRAME_LEN + 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn truncated_streams_are_clean_errors() {
        // Cut inside the header.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let err = read_frame(&mut Cursor::new(&buf[..2])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Cut inside the payload.
        let err = read_frame(&mut Cursor::new(&buf[..6])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
