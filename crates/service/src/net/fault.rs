//! Deterministic fault injection for the degraded-mode and recovery tests.
//!
//! A [`FaultyTransport`] wraps any [`MatchService`] and misbehaves *on
//! schedule*: a scripted queue of [`Fault`]s is consumed one per submission
//! (first in, first applied), plus a whole-shard kill switch for the
//! never-answering-shard scenarios. Because every fault is injected
//! deterministically — no randomness, no timing races — the tests can assert
//! exact outcomes: *this* submission fails at the submit stage, *that* one
//! fails at the wait stage, the third is merely slow, and the merged router
//! response must flag exactly these shards.
//!
//! The wrapper sits at the same seam a real transport does (a
//! `Box<dyn MatchService>` shard slot), so the router code under test cannot
//! tell fault injection from a genuinely flaky network.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::engine::PendingResponse;
use crate::error::{ServiceError, ServiceResult};
use crate::metrics::EngineMetrics;
use crate::planner::PlanStats;
use crate::query::MatchQuery;
use crate::service::MatchService;
use xsm_schema::SchemaTree;

/// One scripted misbehavior, consumed by one submission.
#[derive(Debug, Clone)]
pub enum Fault {
    /// The submission itself is rejected with this error (the request never
    /// reaches the backend) — a full queue or a dead connection at send time.
    FailSubmit(ServiceError),
    /// The submission is accepted but its [`PendingResponse`] resolves to this
    /// error — a reply lost in flight or a deadline expiring mid-call. The
    /// backend never sees the query.
    FailWait(ServiceError),
    /// The submission is served correctly but the response is delayed by this
    /// long — a slow-but-healthy shard.
    Delay(Duration),
}

/// A deterministic fail-K/succeed-M flapping cycle (see
/// [`FaultyTransport::set_flapping`]).
#[derive(Debug, Clone, Copy)]
struct Flapping {
    fail: u64,
    succeed: u64,
    /// Calls observed so far; position within the cycle is `calls % (fail + succeed)`.
    calls: u64,
}

impl Flapping {
    /// Advance one call; `true` means this call fails.
    fn next_fails(&mut self) -> bool {
        let period = self.fail + self.succeed;
        let position = self.calls % period;
        self.calls += 1;
        position < self.fail
    }
}

/// A [`MatchService`] wrapper that injects scripted faults; see the module docs.
pub struct FaultyTransport {
    inner: Box<dyn MatchService>,
    script: Arc<Mutex<VecDeque<Fault>>>,
    dead: Arc<AtomicBool>,
    /// Scripted flapping (fail K calls, succeed M, repeat); applies to
    /// submissions *and* pings, after the kill switch and before the script.
    flapping: Arc<Mutex<Option<Flapping>>>,
    /// A persistent delay added to every successful submission — the
    /// always-slow-but-healthy replica (what the hedging bench races against).
    slowdown: Arc<Mutex<Option<Duration>>>,
}

impl FaultyTransport {
    /// Wrap `inner` with an empty script (behaves perfectly until scripted).
    pub fn new(inner: Box<dyn MatchService>) -> Self {
        FaultyTransport {
            inner,
            script: Arc::new(Mutex::new(VecDeque::new())),
            dead: Arc::new(AtomicBool::new(false)),
            flapping: Arc::new(Mutex::new(None)),
            slowdown: Arc::new(Mutex::new(None)),
        }
    }

    /// Append faults to the script, builder-style.
    pub fn with_script(self, faults: impl IntoIterator<Item = Fault>) -> Self {
        self.script.lock().unwrap().extend(faults);
        self
    }

    /// A handle for appending faults after the transport was boxed into a
    /// router slot.
    pub fn script_handle(&self) -> Arc<Mutex<VecDeque<Fault>>> {
        Arc::clone(&self.script)
    }

    /// A handle to the kill switch: while `true`, **every** call — submissions,
    /// batches, planner statistics, metrics — fails immediately with a
    /// transport error. This is the never-answering shard; flip it back to
    /// `false` to simulate recovery.
    pub fn kill_switch(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.dead)
    }

    /// Enter scripted flapping: fail the next `fail` calls, serve the `succeed`
    /// after that, and repeat — a backend that keeps dying and recovering on a
    /// *call-counted* schedule, so circuit-breaker transitions are testable
    /// step by deterministic step instead of with timing sleeps. The cycle
    /// counts submissions and pings alike (a prober's redial advances it just
    /// like a query). `fail == 0` clears flapping; `succeed == 0` is pinned to
    /// 1 so the cycle always makes progress.
    pub fn set_flapping(&self, fail: u64, succeed: u64) {
        *self.flapping.lock().unwrap() = if fail == 0 {
            None
        } else {
            Some(Flapping {
                fail,
                succeed: succeed.max(1),
                calls: 0,
            })
        };
    }

    /// Add (or with `None` remove) a persistent delay on every successful
    /// submission — the always-slow-but-healthy replica. Unlike a scripted
    /// [`Fault::Delay`] this never runs out, which is what the hedging
    /// benchmark needs for its slow backend.
    pub fn set_slowdown(&self, delay: Option<Duration>) {
        *self.slowdown.lock().unwrap() = delay;
    }

    fn check_alive(&self) -> ServiceResult<()> {
        if self.dead.load(Ordering::SeqCst) {
            Err(ServiceError::transport(
                "fault injection: shard is unreachable",
            ))
        } else {
            Ok(())
        }
    }

    /// Advance the flapping cycle by one call, failing if it lands on the
    /// fail phase.
    fn check_flapping(&self) -> ServiceResult<()> {
        if let Some(flapping) = self.flapping.lock().unwrap().as_mut() {
            if flapping.next_fails() {
                return Err(ServiceError::transport(
                    "fault injection: flapping shard is down this call",
                ));
            }
        }
        Ok(())
    }
}

impl MatchService for FaultyTransport {
    fn submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse> {
        self.check_alive()?;
        self.check_flapping()?;
        if let Some(delay) = *self.slowdown.lock().unwrap() {
            let pending = self.inner.submit(query)?;
            let handle = std::thread::Builder::new()
                .name("xsm-fault-slowdown".to_string())
                .spawn(move || {
                    let result = pending.wait();
                    std::thread::sleep(delay);
                    result
                })
                .map_err(|e| ServiceError::internal(format!("failed to spawn slowdown: {e}")))?;
            return Ok(PendingResponse::from_task(handle));
        }
        match self.script.lock().unwrap().pop_front() {
            None => self.inner.submit(query),
            Some(Fault::FailSubmit(error)) => Err(error),
            Some(Fault::FailWait(error)) => Ok(PendingResponse::ready(Err(error))),
            Some(Fault::Delay(delay)) => {
                let pending = self.inner.submit(query)?;
                let handle = std::thread::Builder::new()
                    .name("xsm-fault-delay".to_string())
                    .spawn(move || {
                        let result = pending.wait();
                        std::thread::sleep(delay);
                        result
                    })
                    .map_err(|e| ServiceError::internal(format!("failed to spawn delay: {e}")))?;
                Ok(PendingResponse::from_task(handle))
            }
        }
    }

    fn metrics_snapshot(&self) -> ServiceResult<EngineMetrics> {
        self.check_alive()?;
        self.inner.metrics_snapshot()
    }

    fn plan_stats(&self, personal: &SchemaTree, length_floor: f64) -> ServiceResult<PlanStats> {
        self.check_alive()?;
        self.inner.plan_stats(personal, length_floor)
    }

    fn ping(&self) -> ServiceResult<()> {
        self.check_alive()?;
        self.check_flapping()?;
        self.inner.ping()
    }
}
