//! Deterministic fault injection for the degraded-mode and recovery tests.
//!
//! A [`FaultyTransport`] wraps any [`MatchService`] and misbehaves *on
//! schedule*: a scripted queue of [`Fault`]s is consumed one per submission
//! (first in, first applied), plus a whole-shard kill switch for the
//! never-answering-shard scenarios. Because every fault is injected
//! deterministically — no randomness, no timing races — the tests can assert
//! exact outcomes: *this* submission fails at the submit stage, *that* one
//! fails at the wait stage, the third is merely slow, and the merged router
//! response must flag exactly these shards.
//!
//! The wrapper sits at the same seam a real transport does (a
//! `Box<dyn MatchService>` shard slot), so the router code under test cannot
//! tell fault injection from a genuinely flaky network.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::engine::PendingResponse;
use crate::error::{ServiceError, ServiceResult};
use crate::metrics::EngineMetrics;
use crate::planner::PlanStats;
use crate::query::MatchQuery;
use crate::service::MatchService;
use xsm_schema::SchemaTree;

/// One scripted misbehavior, consumed by one submission.
#[derive(Debug, Clone)]
pub enum Fault {
    /// The submission itself is rejected with this error (the request never
    /// reaches the backend) — a full queue or a dead connection at send time.
    FailSubmit(ServiceError),
    /// The submission is accepted but its [`PendingResponse`] resolves to this
    /// error — a reply lost in flight or a deadline expiring mid-call. The
    /// backend never sees the query.
    FailWait(ServiceError),
    /// The submission is served correctly but the response is delayed by this
    /// long — a slow-but-healthy shard.
    Delay(Duration),
}

/// A [`MatchService`] wrapper that injects scripted faults; see the module docs.
pub struct FaultyTransport {
    inner: Box<dyn MatchService>,
    script: Arc<Mutex<VecDeque<Fault>>>,
    dead: Arc<AtomicBool>,
}

impl FaultyTransport {
    /// Wrap `inner` with an empty script (behaves perfectly until scripted).
    pub fn new(inner: Box<dyn MatchService>) -> Self {
        FaultyTransport {
            inner,
            script: Arc::new(Mutex::new(VecDeque::new())),
            dead: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Append faults to the script, builder-style.
    pub fn with_script(self, faults: impl IntoIterator<Item = Fault>) -> Self {
        self.script.lock().unwrap().extend(faults);
        self
    }

    /// A handle for appending faults after the transport was boxed into a
    /// router slot.
    pub fn script_handle(&self) -> Arc<Mutex<VecDeque<Fault>>> {
        Arc::clone(&self.script)
    }

    /// A handle to the kill switch: while `true`, **every** call — submissions,
    /// batches, planner statistics, metrics — fails immediately with a
    /// transport error. This is the never-answering shard; flip it back to
    /// `false` to simulate recovery.
    pub fn kill_switch(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.dead)
    }

    fn check_alive(&self) -> ServiceResult<()> {
        if self.dead.load(Ordering::SeqCst) {
            Err(ServiceError::transport(
                "fault injection: shard is unreachable",
            ))
        } else {
            Ok(())
        }
    }
}

impl MatchService for FaultyTransport {
    fn submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse> {
        self.check_alive()?;
        match self.script.lock().unwrap().pop_front() {
            None => self.inner.submit(query),
            Some(Fault::FailSubmit(error)) => Err(error),
            Some(Fault::FailWait(error)) => Ok(PendingResponse::ready(Err(error))),
            Some(Fault::Delay(delay)) => {
                let pending = self.inner.submit(query)?;
                let handle = std::thread::Builder::new()
                    .name("xsm-fault-delay".to_string())
                    .spawn(move || {
                        let result = pending.wait();
                        std::thread::sleep(delay);
                        result
                    })
                    .map_err(|e| ServiceError::internal(format!("failed to spawn delay: {e}")))?;
                Ok(PendingResponse::from_task(handle))
            }
        }
    }

    fn metrics_snapshot(&self) -> ServiceResult<EngineMetrics> {
        self.check_alive()?;
        self.inner.metrics_snapshot()
    }

    fn plan_stats(&self, personal: &SchemaTree, length_floor: f64) -> ServiceResult<PlanStats> {
        self.check_alive()?;
        self.inner.plan_stats(personal, length_floor)
    }
}
