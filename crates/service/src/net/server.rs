//! The shard server: any [`MatchService`] behind a TCP listener.
//!
//! One accept thread polls a nonblocking listener; each accepted connection
//! gets its own handler thread speaking the [`crate::net::proto`] protocol
//! with blocking reads and a short poll timeout, so every thread notices
//! shutdown within one poll interval. The served backend is an
//! `Arc<dyn MatchService>` — a [`crate::MatchEngine`] for a single shard, a
//! whole [`crate::ShardedEngine`] for a router-of-routers, or a
//! [`crate::net::FaultyTransport`] in tests.
//!
//! [`ShardServer::suspend`] freezes the server **without releasing the port**:
//! live handlers drop their connections, new connections are accepted and
//! immediately closed. To a client this is indistinguishable from a crashed
//! process that something keeps restarting — which is exactly what the
//! recovery tests need, and avoids the rebind-same-port flakiness of
//! `TIME_WAIT` (std's `TcpListener` cannot set `SO_REUSEADDR`).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::engine::PendingResponse;
use crate::error::ServiceError;
use crate::net::frame::{read_frame_poll, write_frame, FrameRead};
use crate::net::proto::{
    decode, encode, Hello, HelloOk, WireRequest, WireResponse, PROTOCOL_VERSION,
};
use crate::service::MatchService;

/// How often blocked reads and the accept loop wake to check the shutdown and
/// suspend flags.
const POLL: Duration = Duration::from_millis(25);

/// A TCP server exposing one [`MatchService`] to [`crate::net::RemoteEngine`]
/// clients. Shuts down (and joins every thread) on drop.
pub struct ShardServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    suspended: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ShardServer {
    /// Bind `addr` (use port 0 for an OS-assigned port — read it back with
    /// [`ShardServer::local_addr`]) and start serving `service`.
    pub fn bind<A: ToSocketAddrs>(addr: A, service: Arc<dyn MatchService>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let suspended = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let suspended = Arc::clone(&suspended);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name(format!("xsm-shard-server-{}", addr.port()))
                .spawn(move || {
                    while !shutdown.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                if suspended.load(Ordering::SeqCst) {
                                    // Crash simulation: the process answers the
                                    // TCP handshake (the port is taken) but the
                                    // connection dies immediately.
                                    drop(stream);
                                    continue;
                                }
                                let service = Arc::clone(&service);
                                let shutdown = Arc::clone(&shutdown);
                                let suspended = Arc::clone(&suspended);
                                let handle = std::thread::Builder::new()
                                    .name("xsm-shard-conn".to_string())
                                    .spawn(move || {
                                        handle_connection(stream, &*service, &shutdown, &suspended)
                                    })
                                    .expect("failed to spawn connection handler");
                                handlers.lock().unwrap().push(handle);
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                std::thread::sleep(POLL)
                            }
                            Err(_) => std::thread::sleep(POLL),
                        }
                    }
                })
                .expect("failed to spawn shard-server accept loop")
        };
        Ok(ShardServer {
            addr,
            shutdown,
            suspended,
            accept_handle: Some(accept_handle),
            handlers,
        })
    }

    /// Bind `addr` and serve a [`crate::MatchEngine`] reconstructed from the
    /// snapshot file at `path` — the warm-restart entry point: no index
    /// rebuild, just load, validate and listen. When `expected_generation` is
    /// `Some`, a snapshot of any other generation fails closed with
    /// [`crate::SnapshotServeError::Snapshot`] before the listener binds.
    pub fn bind_snapshot<A: ToSocketAddrs>(
        addr: A,
        path: impl AsRef<std::path::Path>,
        config: crate::engine::EngineConfig,
        expected_generation: Option<u64>,
    ) -> Result<Self, crate::snapshot::SnapshotServeError> {
        let start = std::time::Instant::now();
        let mut snapshot = xsm_repo::snapshot::SnapshotReader::read(path.as_ref())?;
        if let Some(expected) = expected_generation {
            snapshot = snapshot.expect_generation(expected)?;
        }
        let engine = crate::engine::MatchEngine::from_snapshot_parts(snapshot, config, start);
        Self::bind(addr, Arc::new(engine)).map_err(crate::snapshot::SnapshotServeError::Bind)
    }

    /// The bound address (with the OS-assigned port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Simulate a crash: drop every live connection and refuse new ones until
    /// [`ShardServer::resume`], while keeping the port bound.
    pub fn suspend(&self) {
        self.suspended.store(true, Ordering::SeqCst);
    }

    /// End a [`ShardServer::suspend`]: new connections serve normally again.
    pub fn resume(&self) {
        self.suspended.store(false, Ordering::SeqCst);
    }

    /// Stop accepting, drop every connection, join every thread. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> = self.handlers.lock().unwrap().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve one connection: handshake, then request/response until the peer hangs
/// up, the protocol is violated, or the server shuts down / suspends.
fn handle_connection(
    mut stream: TcpStream,
    service: &dyn MatchService,
    shutdown: &AtomicBool,
    suspended: &AtomicBool,
) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }

    // Handshake: the first frame must be a Hello with our protocol version.
    let hello: Hello = loop {
        match read_frame_poll(&mut stream) {
            Ok(FrameRead::Frame(payload)) => match decode(&payload) {
                Ok(hello) => break hello,
                Err(error) => {
                    send(&mut stream, &WireResponse::Error(error));
                    return;
                }
            },
            Ok(FrameRead::Idle) => {
                if shutdown.load(Ordering::SeqCst) || suspended.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(FrameRead::Eof) | Err(_) => return,
        }
    };
    if hello.protocol_version != PROTOCOL_VERSION {
        send(
            &mut stream,
            &WireResponse::Error(ServiceError::ProtocolMismatch {
                expected: PROTOCOL_VERSION,
                actual: hello.protocol_version,
            }),
        );
        return;
    }
    if !send(
        &mut stream,
        &HelloOk {
            protocol_version: PROTOCOL_VERSION,
        },
    ) {
        return;
    }

    loop {
        match read_frame_poll(&mut stream) {
            Ok(FrameRead::Frame(payload)) => {
                if suspended.load(Ordering::SeqCst) {
                    return; // crash simulation: die mid-request
                }
                let request: WireRequest = match decode(&payload) {
                    Ok(request) => request,
                    Err(error) => {
                        // One structured complaint, then close: a peer that
                        // sends garbage cannot be trusted with framing.
                        send(&mut stream, &WireResponse::Error(error));
                        return;
                    }
                };
                if !send(&mut stream, &dispatch(service, request)) {
                    return;
                }
            }
            Ok(FrameRead::Idle) => {
                if shutdown.load(Ordering::SeqCst) || suspended.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(FrameRead::Eof) | Err(_) => return,
        }
    }
}

/// Serve one decoded request against the backend.
fn dispatch(service: &dyn MatchService, request: WireRequest) -> WireResponse {
    match request {
        WireRequest::Ping => WireResponse::Pong,
        WireRequest::Query(query) => match service.submit(query).and_then(PendingResponse::wait) {
            Ok(response) => WireResponse::Response(response),
            Err(error) => WireResponse::Error(error),
        },
        WireRequest::Batch(queries) => match service.submit_batch(queries) {
            Ok(responses) => WireResponse::Batch(responses),
            Err(error) => WireResponse::Error(error),
        },
        WireRequest::PlanStats {
            personal,
            length_floor,
        } => match service.plan_stats(&personal, length_floor) {
            Ok(stats) => WireResponse::PlanStats(stats),
            Err(error) => WireResponse::Error(error),
        },
        WireRequest::Metrics => match service.metrics_snapshot() {
            Ok(metrics) => WireResponse::Metrics(metrics),
            Err(error) => WireResponse::Error(error),
        },
    }
}

/// Encode and write one message; `false` means the connection is done for
/// (encoding failed or the peer is gone).
fn send<T: serde::Serialize>(stream: &mut TcpStream, message: &T) -> bool {
    match encode(message) {
        Ok(payload) => write_frame(stream, &payload).is_ok(),
        Err(_) => false,
    }
}
