//! The wire protocol: a versioned handshake, then request/response DTOs.
//!
//! Every frame's payload is the UTF-8 JSON of exactly one of these types. A
//! connection opens with [`Hello`] → [`HelloOk`] (or a
//! [`crate::ServiceError::ProtocolMismatch`] and a close when the versions
//! disagree); after that the client sends [`WireRequest`]s and the server
//! answers each with one [`WireResponse`], in order, on the same connection.
//!
//! Versioning is deliberately blunt: [`PROTOCOL_VERSION`] is a single integer
//! and any skew refuses the connection. The DTOs themselves stay evolvable —
//! additions ride on `#[serde(default)]` fields (see
//! [`crate::MatchResponse::incomplete`]), while anything that would change the
//! *meaning* of existing fields must bump the version.

use serde::{Deserialize, Serialize};
use xsm_schema::SchemaTree;

use crate::error::{ServiceError, ServiceResult};
use crate::metrics::EngineMetrics;
use crate::planner::PlanStats;
use crate::query::{MatchQuery, MatchResponse};

/// The wire-protocol version this build speaks. Connections between builds
/// with different versions are refused at the handshake.
pub const PROTOCOL_VERSION: u32 = 1;

/// First frame on every connection, client → server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// The client's [`PROTOCOL_VERSION`].
    pub protocol_version: u32,
}

/// The server's acceptance of a [`Hello`] (a version mismatch is answered with
/// [`WireResponse::Error`] instead, then the connection closes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelloOk {
    /// The server's [`PROTOCOL_VERSION`] (equal to the client's, or the
    /// handshake would have failed).
    pub protocol_version: u32,
}

/// One request frame, client → server.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireRequest {
    /// Liveness probe; answered with [`WireResponse::Pong`].
    Ping,
    /// Serve one match query.
    Query(MatchQuery),
    /// Serve a whole batch; the reply preserves input order.
    Batch(Vec<MatchQuery>),
    /// Report the shard's additive planner statistics for this personal schema
    /// (the router's global `Auto` resolution depends on them).
    PlanStats {
        /// The personal schema the statistics are measured for.
        personal: SchemaTree,
        /// The element-similarity floor anchoring the planner's length window.
        length_floor: f64,
    },
    /// Report the shard's serving-metrics snapshot.
    Metrics,
}

/// One response frame, server → client; always exactly one per request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireResponse {
    /// Answer to [`WireRequest::Ping`].
    Pong,
    /// Answer to [`WireRequest::Query`].
    Response(MatchResponse),
    /// Answer to [`WireRequest::Batch`], in input order.
    Batch(Vec<MatchResponse>),
    /// Answer to [`WireRequest::PlanStats`].
    PlanStats(PlanStats),
    /// Answer to [`WireRequest::Metrics`].
    Metrics(EngineMetrics),
    /// The request failed server-side (or the handshake was refused); the
    /// structured error crosses the wire intact.
    Error(ServiceError),
}

/// Serialize one protocol message to a frame payload. Fails only on values
/// JSON cannot carry (a NaN threshold, say) — reported as
/// [`ServiceError::BadRequest`] because the *request* is unservable, not the
/// transport.
pub fn encode<T: Serialize>(message: &T) -> ServiceResult<Vec<u8>> {
    serde_json::to_string(message)
        .map(String::into_bytes)
        .map_err(|e| ServiceError::bad_request(format!("unserializable message: {e}")))
}

/// Decode one frame payload as a protocol message. Any failure — bad UTF-8,
/// bad JSON, the wrong shape — is [`ServiceError::BadRequest`]: the bytes
/// arrived fine but do not speak the protocol.
pub fn decode<T: serde::de::DeserializeOwned>(payload: &[u8]) -> ServiceResult<T> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| ServiceError::bad_request(format!("frame is not UTF-8: {e}")))?;
    serde_json::from_str(text)
        .map_err(|e| ServiceError::bad_request(format!("undecodable frame: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_schema::{SchemaNode, TreeBuilder};

    #[test]
    fn handshake_messages_round_trip() {
        let hello = Hello {
            protocol_version: PROTOCOL_VERSION,
        };
        let bytes = encode(&hello).unwrap();
        assert_eq!(decode::<Hello>(&bytes).unwrap(), hello);
        let ok = HelloOk {
            protocol_version: PROTOCOL_VERSION,
        };
        let bytes = encode(&ok).unwrap();
        assert_eq!(decode::<HelloOk>(&bytes).unwrap(), ok);
    }

    #[test]
    fn requests_round_trip_through_frames() {
        let personal = TreeBuilder::new("personal")
            .root(SchemaNode::element("book"))
            .child(SchemaNode::element("tïtle"))
            .build();
        let query = MatchQuery::new(personal).with_top_k(3);
        for request in [
            WireRequest::Ping,
            WireRequest::Query(query.clone()),
            WireRequest::Batch(vec![query.clone(), query.clone()]),
            WireRequest::PlanStats {
                personal: query.personal.clone(),
                length_floor: 0.6,
            },
            WireRequest::Metrics,
        ] {
            let bytes = encode(&request).unwrap();
            let back: WireRequest = decode(&bytes).unwrap();
            // Fingerprint equality is the strongest cheap check for the query
            // payloads; the unit variants just need to survive.
            match (&request, &back) {
                (WireRequest::Query(a), WireRequest::Query(b)) => {
                    assert_eq!(a.fingerprint(), b.fingerprint());
                }
                (WireRequest::Batch(a), WireRequest::Batch(b)) => {
                    assert_eq!(a.len(), b.len());
                    assert_eq!(a[0].fingerprint(), b[0].fingerprint());
                }
                (
                    WireRequest::PlanStats { length_floor, .. },
                    WireRequest::PlanStats {
                        length_floor: back_floor,
                        ..
                    },
                ) => {
                    assert_eq!(length_floor.to_bits(), back_floor.to_bits());
                }
                (WireRequest::Ping, WireRequest::Ping) => {}
                (WireRequest::Metrics, WireRequest::Metrics) => {}
                (a, b) => panic!("variant changed across the wire: {a:?} -> {b:?}"),
            }
        }
    }

    #[test]
    fn a_nan_threshold_cannot_cross_the_wire() {
        let mut query = MatchQuery::new(
            TreeBuilder::new("personal")
                .root(SchemaNode::element("x"))
                .build(),
        );
        query.threshold = f64::NAN;
        let err = encode(&WireRequest::Query(query)).unwrap_err();
        assert!(matches!(err, ServiceError::BadRequest { .. }));
    }

    #[test]
    fn garbage_decodes_to_bad_request() {
        assert!(matches!(
            decode::<WireRequest>(b"\xff\xfe not json"),
            Err(ServiceError::BadRequest { .. })
        ));
        assert!(matches!(
            decode::<WireRequest>(b"{\"NoSuchVariant\":1}"),
            Err(ServiceError::BadRequest { .. })
        ));
    }
}
