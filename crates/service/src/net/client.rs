//! The remote-shard client: a [`MatchService`] whose backend is on the far
//! side of a TCP connection.
//!
//! A [`RemoteEngine`] looks exactly like a local engine to its caller — the
//! router holds it as `Box<dyn MatchService>` and never learns the difference.
//! Underneath, each call frames one [`WireRequest`], sends it on a pooled
//! handshaked connection, and reads back exactly one [`WireResponse`], with
//! the failure policy the router's degraded mode is built on:
//!
//! * **Deadline** — every call is bounded by
//!   [`RemoteEngineConfig::request_deadline`] across *all* its attempts;
//!   when it elapses the call returns [`ServiceError::Timeout`] and the
//!   router degrades around this shard.
//! * **Bounded retry with backoff** — connect failures and mid-call I/O
//!   errors redial and resend, up to [`RemoteEngineConfig::retries`] times
//!   with jittered exponential backoff (deterministically seeded, so many
//!   clients of one restarted server do not retry in lockstep — and test
//!   runs stay reproducible). Safe because serving is read-only and
//!   idempotent by fingerprint: replaying a query cannot produce a duplicate
//!   side effect, at worst a cache hit.
//! * **Never retried** — [`ServiceError::ProtocolMismatch`] and
//!   [`ServiceError::BadRequest`] (the request itself is wrong), and any
//!   error the *server* answered with (the shard spoke authoritatively;
//!   retrying would just repeat it).

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::engine::PendingResponse;
use crate::error::{ServiceError, ServiceResult};
use crate::metrics::EngineMetrics;
use crate::net::frame::{read_frame_poll, write_frame, FrameRead};
use crate::net::proto::{
    decode, encode, Hello, HelloOk, WireRequest, WireResponse, PROTOCOL_VERSION,
};
use crate::planner::PlanStats;
use crate::query::{MatchQuery, MatchResponse};
use crate::service::MatchService;
use xsm_schema::SchemaTree;

/// Idle connections kept for reuse per remote shard.
const POOL_LIMIT: usize = 8;

/// Timeouts and retry policy of a [`RemoteEngine`].
#[derive(Debug, Clone)]
pub struct RemoteEngineConfig {
    /// TCP connect timeout per dial attempt.
    pub connect_timeout: Duration,
    /// Per-read/write I/O timeout once connected (also the handshake timeout).
    pub io_timeout: Duration,
    /// Hard wall-clock bound on one logical call, across all retries; on
    /// expiry the call returns [`ServiceError::Timeout`].
    pub request_deadline: Duration,
    /// Retries after the first attempt on retryable transport errors.
    pub retries: u32,
    /// Base sleep before the first retry; the base doubles per retry, and the
    /// actual delay is the base scaled into `[0.5, 1.0)` by a deterministic
    /// per-client jitter, so a fleet of clients retrying a recovering server
    /// spreads out instead of re-dialing in lockstep.
    pub backoff: Duration,
}

impl Default for RemoteEngineConfig {
    fn default() -> Self {
        RemoteEngineConfig {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(30),
            retries: 2,
            backoff: Duration::from_millis(50),
        }
    }
}

impl RemoteEngineConfig {
    /// Builder-style connect-timeout override.
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Builder-style I/O-timeout override.
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Builder-style request-deadline override.
    pub fn with_request_deadline(mut self, deadline: Duration) -> Self {
        self.request_deadline = deadline;
        self
    }

    /// Builder-style retry-count override.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Builder-style initial-backoff override.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

struct RemoteInner {
    addr: String,
    config: RemoteEngineConfig,
    pool: Mutex<Vec<TcpStream>>,
    /// Per-client seed decorrelating retry backoff across clients (see
    /// [`jittered_backoff`]): derived deterministically from a process-wide
    /// construction counter — no clock, no RNG state.
    jitter_seed: u64,
    /// Per-call sequence mixed into the jitter so successive calls of one
    /// client also spread out.
    call_seq: std::sync::atomic::AtomicU64,
}

/// SplitMix64 — one multiply-xorshift round, enough to decorrelate seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The retry delay for one attempt: the exponential base scaled into
/// `[0.5, 1.0)` by a deterministic per-(client, call, attempt) hash.
///
/// A *fixed* exponential schedule synchronizes clients: every client of a
/// restarted server retries at exactly +50ms, +100ms, ... after the crash and
/// the retries arrive as a thundering herd. Jitter spreads them across half
/// the backoff window while keeping the same worst-case delay; seeding it
/// from counters (not time or an RNG) keeps every run of a test bit-for-bit
/// reproducible.
fn jittered_backoff(base: Duration, seed: u64) -> Duration {
    let fraction = (seed >> 11) as f64 / (1u64 << 53) as f64;
    base.mul_f64(0.5 + 0.5 * fraction)
}

/// A [`MatchService`] client for one [`crate::net::ShardServer`]. Cheap to
/// clone (all clones share the connection pool).
#[derive(Clone)]
pub struct RemoteEngine {
    inner: Arc<RemoteInner>,
}

impl std::fmt::Debug for RemoteEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteEngine")
            .field("addr", &self.inner.addr)
            .field("config", &self.inner.config)
            .finish_non_exhaustive()
    }
}

impl RemoteEngine {
    /// Connect to a shard server, performing one eager handshake so an
    /// unreachable host or a protocol-version skew fails here — at wiring time
    /// — rather than on the first query.
    pub fn connect(addr: impl Into<String>, config: RemoteEngineConfig) -> ServiceResult<Self> {
        let engine = RemoteEngine {
            inner: Arc::new(RemoteInner {
                addr: addr.into(),
                config,
                pool: Mutex::new(Vec::new()),
                jitter_seed: {
                    static CLIENT_SEQ: std::sync::atomic::AtomicU64 =
                        std::sync::atomic::AtomicU64::new(0);
                    splitmix64(CLIENT_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed))
                },
                call_seq: std::sync::atomic::AtomicU64::new(0),
            }),
        };
        let stream = engine.inner.dial()?;
        engine.inner.park(stream);
        Ok(engine)
    }

    /// [`RemoteEngine::connect`] with the default timeouts and retry policy.
    pub fn with_defaults(addr: impl Into<String>) -> ServiceResult<Self> {
        Self::connect(addr, RemoteEngineConfig::default())
    }

    /// The address this client dials.
    pub fn addr(&self) -> &str {
        &self.inner.addr
    }

    /// Round-trip a liveness probe within the configured deadline.
    pub fn ping(&self) -> ServiceResult<()> {
        match self.inner.call(&WireRequest::Ping)? {
            WireResponse::Pong => Ok(()),
            other => Err(unexpected_reply(&other)),
        }
    }
}

impl MatchService for RemoteEngine {
    /// Sends the query on a dedicated thread so the router's scatter stays
    /// concurrent across shards; the handle resolves when the reply frame
    /// lands (or the deadline/retry policy gives up).
    fn submit(&self, query: MatchQuery) -> ServiceResult<PendingResponse> {
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name("xsm-remote-call".to_string())
            .spawn(move || match inner.call(&WireRequest::Query(query))? {
                WireResponse::Response(response) => Ok(response),
                WireResponse::Error(error) => Err(error),
                other => Err(unexpected_reply(&other)),
            })
            .map_err(|e| ServiceError::internal(format!("failed to spawn remote call: {e}")))?;
        Ok(PendingResponse::from_task(handle))
    }

    /// One `Batch` frame for the whole batch — a single round trip, answers in
    /// input order.
    fn submit_batch(&self, queries: Vec<MatchQuery>) -> ServiceResult<Vec<MatchResponse>> {
        match self.inner.call(&WireRequest::Batch(queries))? {
            WireResponse::Batch(responses) => Ok(responses),
            WireResponse::Error(error) => Err(error),
            other => Err(unexpected_reply(&other)),
        }
    }

    fn metrics_snapshot(&self) -> ServiceResult<EngineMetrics> {
        match self.inner.call(&WireRequest::Metrics)? {
            WireResponse::Metrics(metrics) => Ok(metrics),
            WireResponse::Error(error) => Err(error),
            other => Err(unexpected_reply(&other)),
        }
    }

    fn plan_stats(&self, personal: &SchemaTree, length_floor: f64) -> ServiceResult<PlanStats> {
        let request = WireRequest::PlanStats {
            personal: personal.clone(),
            length_floor,
        };
        match self.inner.call(&request)? {
            WireResponse::PlanStats(stats) => Ok(stats),
            WireResponse::Error(error) => Err(error),
            other => Err(unexpected_reply(&other)),
        }
    }

    /// A real wire round trip (dial → handshake → `Ping`), so a prober that
    /// calls this through the trait actually redials a crashed server.
    fn ping(&self) -> ServiceResult<()> {
        RemoteEngine::ping(self)
    }
}

/// The server answered with a variant the request cannot produce — a protocol
/// violation, reported as a transport error (and therefore retryable).
fn unexpected_reply(reply: &WireResponse) -> ServiceError {
    let kind = match reply {
        WireResponse::Pong => "Pong",
        WireResponse::Response(_) => "Response",
        WireResponse::Batch(_) => "Batch",
        WireResponse::PlanStats(_) => "PlanStats",
        WireResponse::Metrics(_) => "Metrics",
        WireResponse::Error(_) => "Error",
    };
    ServiceError::transport(format!("protocol violation: unexpected {kind} reply"))
}

impl RemoteInner {
    /// One logical call: attempt, and on retryable failure redial/resend with
    /// jittered exponential backoff until the retry budget or the deadline
    /// runs out.
    fn call(&self, request: &WireRequest) -> ServiceResult<WireResponse> {
        let payload = encode(request)?;
        let deadline = Instant::now() + self.config.request_deadline;
        let mut backoff = self.config.backoff;
        let mut attempt = 0u32;
        let mut seed = splitmix64(
            self.jitter_seed
                ^ self
                    .call_seq
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        );
        loop {
            match self.attempt(&payload, deadline) {
                Ok(reply) => return Ok(reply),
                Err(error) => {
                    if !error.is_retryable() || attempt >= self.config.retries {
                        return Err(error);
                    }
                    seed = splitmix64(seed);
                    let delay = jittered_backoff(backoff, seed);
                    if Instant::now() + delay >= deadline {
                        return Err(ServiceError::Timeout);
                    }
                    std::thread::sleep(delay);
                    backoff = backoff.saturating_mul(2);
                    attempt += 1;
                }
            }
        }
    }

    /// One wire round trip on one connection. The connection returns to the
    /// pool only after a complete success — any mid-call failure leaves it in
    /// an unknown framing state, so it is dropped and the retry dials fresh.
    fn attempt(&self, payload: &[u8], deadline: Instant) -> ServiceResult<WireResponse> {
        if Instant::now() >= deadline {
            return Err(ServiceError::Timeout);
        }
        let mut stream = self.checkout()?;
        write_frame(&mut stream, payload)
            .map_err(|e| ServiceError::transport(format!("send failed: {e}")))?;
        // Wait for the reply in io_timeout slices, re-checking the deadline
        // between slices: a shard legitimately computing a long query must not
        // be cut off by the per-read timeout, only by the call deadline.
        let reply = loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ServiceError::Timeout);
            }
            let slice = remaining
                .min(self.config.io_timeout)
                .max(Duration::from_millis(1));
            stream
                .set_read_timeout(Some(slice))
                .map_err(|e| ServiceError::transport(format!("set_read_timeout failed: {e}")))?;
            match read_frame_poll(&mut stream) {
                Ok(FrameRead::Frame(payload)) => break payload,
                Ok(FrameRead::Idle) => continue,
                Ok(FrameRead::Eof) => {
                    return Err(ServiceError::transport(
                        "server closed the connection before replying",
                    ))
                }
                Err(e) => return Err(ServiceError::transport(format!("receive failed: {e}"))),
            }
        };
        let response = decode::<WireResponse>(&reply)
            // An undecodable *reply* is the transport's fault, not the request's.
            .map_err(|e| ServiceError::transport(format!("undecodable reply: {e}")))?;
        self.park(stream);
        Ok(response)
    }

    /// A pooled connection, or a fresh dial-and-handshake.
    fn checkout(&self) -> ServiceResult<TcpStream> {
        if let Some(stream) = self.pool.lock().unwrap().pop() {
            return Ok(stream);
        }
        self.dial()
    }

    /// Return a healthy connection to the pool (bounded; extras just close).
    fn park(&self, stream: TcpStream) {
        let mut pool = self.pool.lock().unwrap();
        if pool.len() < POOL_LIMIT {
            pool.push(stream);
        }
    }

    /// Dial, configure timeouts, and run the version handshake.
    fn dial(&self) -> ServiceResult<TcpStream> {
        let addrs = self
            .addr
            .to_socket_addrs()
            .map_err(|e| ServiceError::transport(format!("cannot resolve {}: {e}", self.addr)))?;
        let mut last: Option<std::io::Error> = None;
        let mut stream: Option<TcpStream> = None;
        for addr in addrs {
            match TcpStream::connect_timeout(&addr, self.config.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let mut stream = stream.ok_or_else(|| {
            ServiceError::transport(match last {
                Some(e) => format!("cannot connect to {}: {e}", self.addr),
                None => format!("{} resolves to no addresses", self.addr),
            })
        })?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(self.config.io_timeout))
            .and_then(|_| stream.set_write_timeout(Some(self.config.io_timeout)))
            .map_err(|e| ServiceError::transport(format!("cannot configure socket: {e}")))?;

        let hello = encode(&Hello {
            protocol_version: PROTOCOL_VERSION,
        })?;
        write_frame(&mut stream, &hello)
            .map_err(|e| ServiceError::transport(format!("handshake send failed: {e}")))?;
        let reply = match read_frame_poll(&mut stream) {
            Ok(FrameRead::Frame(payload)) => payload,
            Ok(FrameRead::Idle) => {
                return Err(ServiceError::transport("handshake timed out"));
            }
            Ok(FrameRead::Eof) => {
                return Err(ServiceError::transport(
                    "server closed the connection during the handshake",
                ))
            }
            Err(e) => {
                return Err(ServiceError::transport(format!(
                    "handshake receive failed: {e}"
                )))
            }
        };
        if let Ok(ok) = decode::<HelloOk>(&reply) {
            if ok.protocol_version == PROTOCOL_VERSION {
                return Ok(stream);
            }
            return Err(ServiceError::ProtocolMismatch {
                expected: PROTOCOL_VERSION,
                actual: ok.protocol_version,
            });
        }
        // Not a HelloOk: a structured refusal (version skew) or garbage.
        match decode::<WireResponse>(&reply) {
            Ok(WireResponse::Error(error)) => Err(error),
            _ => Err(ServiceError::transport(
                "handshake reply is not part of the protocol",
            )),
        }
    }
}
