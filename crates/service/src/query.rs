//! Queries and responses of the serving engine.
//!
//! A [`MatchQuery`] is what a user of the repository submits: their personal schema,
//! how many mappings they want back, and (optionally) how candidates should be
//! generated. A [`MatchResponse`] is the ranked answer plus serving metadata.

use std::time::Duration;

use serde::{Deserialize, Serialize};
use xsm_matcher::SchemaMapping;
use xsm_schema::SchemaTree;

/// How the engine should generate candidate mapping elements for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum QueryStrategy {
    /// Let the planner choose per query from the repository's index statistics.
    #[default]
    Auto,
    /// Force q-gram index pruning (fast, may miss loosely-similar candidates).
    IndexPruned,
    /// Force the exhaustive personal × repository scan (the paper's element matcher).
    Exhaustive,
}

/// The candidate-generation path a query was actually served with (the planner's
/// resolution of [`QueryStrategy::Auto`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlannedStrategy {
    /// Candidates came from the prebuilt [`xsm_repo::NameIndex`].
    IndexPruned,
    /// Candidates came from the full repository scan.
    Exhaustive,
}

impl PlannedStrategy {
    /// Stable label used in metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            PlannedStrategy::IndexPruned => "index-pruned",
            PlannedStrategy::Exhaustive => "exhaustive",
        }
    }
}

/// One top-k schema-matching request against the engine's repository.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchQuery {
    /// The personal schema to match.
    pub personal: SchemaTree,
    /// Maximum number of mappings to return (best first).
    pub top_k: usize,
    /// Candidate-generation strategy.
    pub strategy: QueryStrategy,
    /// Acceptance threshold δ: only mappings with `Δ(s,t) ≥ δ` are returned.
    ///
    /// [`MatchQuery::with_threshold`] clamps to `[0,1]`; values smuggled past the
    /// builder (direct field writes, deserialization) are sanitised at serving time —
    /// out-of-range clamps, NaN serves as δ = 1.0 (only perfect matches).
    pub threshold: f64,
}

impl MatchQuery {
    /// A query with the default serving parameters (`top_k = 10`, `Auto`, δ = 0.6).
    pub fn new(personal: SchemaTree) -> Self {
        MatchQuery {
            personal,
            top_k: 10,
            strategy: QueryStrategy::Auto,
            threshold: 0.6,
        }
    }

    /// Builder-style `top_k` override.
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k;
        self
    }

    /// Builder-style strategy override.
    pub fn with_strategy(mut self, strategy: QueryStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Builder-style threshold override (clamped to `[0,1]`).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold.clamp(0.0, 1.0);
        self
    }

    /// Canonical fingerprint of the query, used as the result-cache key.
    ///
    /// Two queries share a fingerprint iff they have the same personal-schema *shape
    /// and names* (pre-order traversal with depths; the tree's own label is ignored),
    /// the same `top_k`, the same requested strategy and the same threshold bits.
    /// Each name is length-prefixed, so names containing the delimiter characters
    /// cannot make two different trees collide on one key.
    pub fn fingerprint(&self) -> String {
        let mut out = String::with_capacity(64);
        for node in self.personal.preorder() {
            let name = self.personal.name_of(node);
            out.push_str(&format!(
                "{}:{}:{};",
                self.personal.depth(node),
                name.len(),
                name
            ));
        }
        out.push_str(&format!(
            "|k={}|s={:?}|d={:016x}",
            self.top_k,
            self.strategy,
            self.threshold.to_bits()
        ));
        out
    }
}

/// The engine's answer to one [`MatchQuery`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchResponse {
    /// Fingerprint of the query this answers (also the result-cache key).
    pub fingerprint: String,
    /// The candidate-generation path actually used.
    pub strategy: PlannedStrategy,
    /// Whether the answer was served from the result cache.
    pub cache_hit: bool,
    /// The top-k schema mappings, best first, all with `Δ ≥ δ`.
    pub mappings: Vec<SchemaMapping>,
    /// Number of mapping elements the element-matching stage produced.
    pub candidate_count: usize,
    /// Total number of mappings that met the threshold (before the top-k cut).
    pub total_matches: usize,
    /// Whether this answer is **degraded**: one or more shards failed to answer
    /// within deadline and the response merges only the surviving shards'
    /// results ([`MatchResponse::failed_shards`] lists the missing ones). A
    /// degraded answer is never *wrong* — every mapping in it is a true mapping
    /// of the surviving repository slice — but it may be missing mappings the
    /// failed shards would have contributed. Degraded responses are never
    /// cached. Always `false` from a single in-process engine.
    #[serde(default)]
    pub incomplete: bool,
    /// Router-side indexes of the shards that failed to contribute (ascending);
    /// empty iff [`MatchResponse::incomplete`] is `false`.
    #[serde(default)]
    pub failed_shards: Vec<u32>,
    /// Generation stamp of the repository snapshot that answered (0 for a
    /// cold-built, unversioned engine). A sharded merge carries the shards'
    /// common generation — the router refuses to merge shards that disagree,
    /// so one response can never mix repository revisions.
    #[serde(default)]
    pub generation: u64,
    /// Wall-clock serving latency of this response (cache lookup or full pipeline).
    #[serde(skip)]
    pub latency: Duration,
}

impl MatchResponse {
    /// A compact digest of the *result content* (strategy, scores and images), i.e.
    /// everything that must be identical between two runs of the same query —
    /// explicitly excluding latency and cache-hit metadata. Tests and benches compare
    /// digests to assert determinism across worker counts.
    pub fn result_digest(&self) -> String {
        let mut out = format!(
            "{}|me={}|n={}",
            self.strategy.label(),
            self.candidate_count,
            self.total_matches
        );
        for m in &self.mappings {
            out.push_str(&format!("|{:016x}", m.score.to_bits()));
            for id in m.repo_nodes() {
                out.push_str(&format!(",{id}"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_schema::{SchemaNode, TreeBuilder};

    fn tree(root: &str, children: &[&str]) -> SchemaTree {
        let mut b = TreeBuilder::new("personal").root(SchemaNode::element(root));
        for (i, c) in children.iter().enumerate() {
            b = if i == 0 {
                b.child(SchemaNode::element(*c))
            } else {
                b.sibling(SchemaNode::element(*c))
            };
        }
        b.build()
    }

    #[test]
    fn fingerprint_is_stable_and_shape_sensitive() {
        let a = MatchQuery::new(tree("book", &["title", "author"]));
        let b = MatchQuery::new(tree("book", &["title", "author"]));
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different names, order, top_k, strategy or threshold change the key.
        assert_ne!(
            a.fingerprint(),
            MatchQuery::new(tree("book", &["author", "title"])).fingerprint()
        );
        assert_ne!(a.fingerprint(), a.clone().with_top_k(3).fingerprint());
        assert_ne!(
            a.fingerprint(),
            a.clone()
                .with_strategy(QueryStrategy::Exhaustive)
                .fingerprint()
        );
        assert_ne!(a.fingerprint(), a.clone().with_threshold(0.9).fingerprint());
    }

    #[test]
    fn fingerprint_survives_delimiter_characters_in_names() {
        // A name embedding the delimiter syntax must not collide with the nested
        // tree it mimics: "x;2:1:y" as one child vs. "x" with grandchild "y".
        let crafted = MatchQuery::new(tree("r", &["x;2:1:y"]));
        let nested = MatchQuery::new(
            TreeBuilder::new("personal")
                .root(SchemaNode::element("r"))
                .child(SchemaNode::element("x"))
                .child(SchemaNode::element("y"))
                .build(),
        );
        assert_ne!(crafted.fingerprint(), nested.fingerprint());
    }

    #[test]
    fn builders_clamp_and_apply() {
        let q = MatchQuery::new(tree("x", &[]))
            .with_top_k(3)
            .with_strategy(QueryStrategy::IndexPruned)
            .with_threshold(7.0);
        assert_eq!(q.top_k, 3);
        assert_eq!(q.strategy, QueryStrategy::IndexPruned);
        assert_eq!(q.threshold, 1.0);
    }

    #[test]
    fn digest_ignores_latency_and_cache_metadata() {
        let mut r1 = MatchResponse {
            fingerprint: "f".into(),
            strategy: PlannedStrategy::Exhaustive,
            cache_hit: false,
            mappings: Vec::new(),
            candidate_count: 5,
            total_matches: 0,
            incomplete: false,
            failed_shards: Vec::new(),
            generation: 0,
            latency: Duration::from_millis(3),
        };
        let mut r2 = r1.clone();
        r2.cache_hit = true;
        r2.latency = Duration::from_millis(9);
        assert_eq!(r1.result_digest(), r2.result_digest());
        r1.candidate_count = 6;
        assert_ne!(r1.result_digest(), r2.result_digest());
    }
}
