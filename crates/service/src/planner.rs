//! The per-query candidate-generation planner.
//!
//! An exhaustive element-matching pass costs `|N_s| · |N_R|` kernel evaluations; the
//! q-gram [`NameIndex`] can usually prune that to a small candidate set, but for
//! personal schemas made of very common names (`name`, `id`, `date` …) the posting
//! lists cover most of the repository and the index adds overhead without pruning
//! anything. The planner resolves [`QueryStrategy::Auto`] per query from the index's
//! posting-list statistics — no candidates are materialised to make the decision.

use serde::{Deserialize, Serialize};
use xsm_repo::NameIndex;
use xsm_schema::SchemaTree;
use xsm_similarity::features::for_each_gram;

use crate::query::{PlannedStrategy, QueryStrategy};

/// Tuning knobs of the [`QueryPlanner`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// q-gram overlap fraction passed to the approximate index lookups when the
    /// index-pruned path is taken.
    pub min_overlap: f64,
    /// Take the index-pruned path only when the estimated candidate volume is below
    /// this fraction of the exhaustive scan's kernel evaluations.
    pub max_pruned_fraction: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            min_overlap: 0.5,
            max_pruned_fraction: 0.5,
        }
    }
}

/// The planner's decision for one query, with the statistics it was based on.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The chosen candidate-generation path.
    pub strategy: PlannedStrategy,
    /// Estimated index work: summed posting-list lengths over the personal names.
    /// Only computed when the decision needed it, i.e. for [`QueryStrategy::Auto`];
    /// forced strategies skip the estimation pass and report 0.
    pub estimated_volume: usize,
    /// Exhaustive work: `|N_s| · |N_R|` kernel evaluations.
    pub exhaustive_volume: usize,
}

/// Chooses between index-pruned and exhaustive candidate generation.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryPlanner {
    config: PlannerConfig,
}

impl QueryPlanner {
    /// A planner with the given tuning.
    pub fn new(config: PlannerConfig) -> Self {
        QueryPlanner { config }
    }

    /// The planner's tuning knobs.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Resolve the strategy for one query. Forced strategies are honoured verbatim;
    /// `Auto` compares the index's estimated candidate volume against the exhaustive
    /// scan and picks whichever is cheaper by [`PlannerConfig::max_pruned_fraction`].
    pub fn plan(
        &self,
        personal: &SchemaTree,
        requested: QueryStrategy,
        index: &NameIndex,
    ) -> QueryPlan {
        self.plan_over(personal, requested, std::iter::once(index))
    }

    /// [`QueryPlanner::plan`] over a repository served by several indexes (one per
    /// shard). The statistics the decision reads are *additive* over a disjoint
    /// partition of the repository — a gram's posting lists across shards
    /// concatenate to its global posting list, and indexed-node counts sum — so
    /// planning over the shard indexes reaches **exactly** the decision the single
    /// engine's planner reaches over the whole repository. A sharded router plans
    /// once up here and forces the resolved strategy onto every shard; letting each
    /// shard re-plan `Auto` from its local statistics could split the fleet across
    /// strategies and silently diverge from the unsharded answer.
    pub fn plan_over<'a>(
        &self,
        personal: &SchemaTree,
        requested: QueryStrategy,
        indexes: impl Iterator<Item = &'a NameIndex> + Clone,
    ) -> QueryPlan {
        let indexed_nodes: usize = indexes.clone().map(|i| i.indexed_nodes()).sum();
        let exhaustive_volume = personal.len() * indexed_nodes;
        // The estimation pass walks every personal name's grams; it only runs when
        // the decision actually depends on it (forced strategies skip it).
        let (strategy, estimated_volume) = match requested {
            QueryStrategy::IndexPruned => (PlannedStrategy::IndexPruned, 0),
            QueryStrategy::Exhaustive => (PlannedStrategy::Exhaustive, 0),
            QueryStrategy::Auto => {
                // Each name's distinct grams are extracted once — gram *strings*
                // are shard-independent, only their interned ids differ per index —
                // and every index is then charged a posting-length lookup per gram.
                // All indexes must share one q (true by construction: a sharded
                // engine builds every shard with the same configuration); summing
                // `estimate_candidate_volume` per index would redo the gram
                // extraction once per shard.
                let q = indexes.clone().next().map_or(0, |i| i.q());
                let estimated: usize = personal
                    .nodes()
                    .map(|(_, node)| {
                        let mut grams: Vec<String> = Vec::new();
                        for_each_gram(&node.name.to_lowercase(), q.max(1), |gram| {
                            if !grams.iter().any(|g| g == gram) {
                                grams.push(gram.to_string());
                            }
                        });
                        grams
                            .iter()
                            .map(|gram| {
                                indexes
                                    .clone()
                                    .map(|i| i.gram_posting_len(gram))
                                    .sum::<usize>()
                            })
                            .sum::<usize>()
                    })
                    .sum();
                let budget = self.config.max_pruned_fraction * exhaustive_volume as f64;
                if exhaustive_volume > 0 && (estimated as f64) <= budget {
                    (PlannedStrategy::IndexPruned, estimated)
                } else {
                    (PlannedStrategy::Exhaustive, estimated)
                }
            }
        };
        QueryPlan {
            strategy,
            estimated_volume,
            exhaustive_volume,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_repo::SchemaRepository;
    use xsm_schema::{SchemaNode, TreeBuilder};

    fn repo_of(names: &[&str]) -> SchemaRepository {
        let mut b = TreeBuilder::new("t").root(SchemaNode::element(names[0]));
        for n in &names[1..] {
            b = b.sibling(SchemaNode::element(*n));
        }
        SchemaRepository::from_trees(vec![b.build()])
    }

    fn personal(name: &str) -> SchemaTree {
        TreeBuilder::new("p")
            .root(SchemaNode::element(name))
            .build()
    }

    #[test]
    fn forced_strategies_are_honoured() {
        let repo = repo_of(&["alpha", "beta", "gamma"]);
        let index = NameIndex::build(&repo);
        let planner = QueryPlanner::default();
        let p = personal("alpha");
        assert_eq!(
            planner
                .plan(&p, QueryStrategy::IndexPruned, &index)
                .strategy,
            PlannedStrategy::IndexPruned
        );
        assert_eq!(
            planner.plan(&p, QueryStrategy::Exhaustive, &index).strategy,
            PlannedStrategy::Exhaustive
        );
    }

    #[test]
    fn auto_prunes_rare_names_and_scans_common_ones() {
        // 40 distinct names plus one name repeated everywhere.
        let mut names: Vec<String> = (0..40).map(|i| format!("field{i:02}")).collect();
        for _ in 0..40 {
            names.push("shared".to_string());
        }
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let repo = repo_of(&refs);
        let index = NameIndex::build(&repo);
        let planner = QueryPlanner::default();

        // A name unrelated to everything: tiny posting volume → index pruning.
        let rare = planner.plan(&personal("zzqx"), QueryStrategy::Auto, &index);
        assert_eq!(rare.strategy, PlannedStrategy::IndexPruned);
        assert!(rare.estimated_volume < rare.exhaustive_volume / 2);

        // The ubiquitous name floods the postings → exhaustive scan.
        let common = planner.plan(&personal("shared"), QueryStrategy::Auto, &index);
        assert_eq!(common.strategy, PlannedStrategy::Exhaustive);
    }

    #[test]
    fn plan_over_shard_indexes_matches_the_whole_index() {
        use xsm_repo::{RepositoryPartition, ShardPlacement};
        let mut names: Vec<String> = (0..30).map(|i| format!("field{i:02}")).collect();
        names.push("shared".to_string());
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut forest = SchemaRepository::new();
        for chunk in refs.chunks(7) {
            let mut b = TreeBuilder::new("t").root(SchemaNode::element(chunk[0]));
            for n in &chunk[1..] {
                b = b.sibling(SchemaNode::element(*n));
            }
            forest.add_tree(b.build());
        }
        let whole = NameIndex::build(&forest);
        let planner = QueryPlanner::default();
        for shards in [1, 2, 3] {
            for placement in [ShardPlacement::Contiguous, ShardPlacement::TreeHash] {
                let partition = RepositoryPartition::build(&forest, shards, placement);
                let indexes: Vec<NameIndex> =
                    partition.shards().iter().map(NameIndex::build).collect();
                for name in ["field07", "shared", "zzqx", "fiel"] {
                    let single = planner.plan(&personal(name), QueryStrategy::Auto, &whole);
                    let sharded =
                        planner.plan_over(&personal(name), QueryStrategy::Auto, indexes.iter());
                    assert_eq!(single.strategy, sharded.strategy, "{name}");
                    assert_eq!(single.estimated_volume, sharded.estimated_volume, "{name}");
                    assert_eq!(
                        single.exhaustive_volume, sharded.exhaustive_volume,
                        "{name}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_repository_falls_back_to_exhaustive() {
        let repo = SchemaRepository::new();
        let index = NameIndex::build(&repo);
        let plan = QueryPlanner::default().plan(&personal("x"), QueryStrategy::Auto, &index);
        assert_eq!(plan.strategy, PlannedStrategy::Exhaustive);
        assert_eq!(plan.exhaustive_volume, 0);
    }
}
