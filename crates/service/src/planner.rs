//! The per-query candidate-generation planner.
//!
//! An exhaustive element-matching pass costs `|N_s| · |N_R|` kernel evaluations; the
//! q-gram [`NameIndex`] can usually prune that to a small candidate set, but for
//! personal schemas made of very common names (`name`, `id`, `date` …) the posting
//! lists cover most of the repository and the index adds overhead without pruning
//! anything. The planner resolves [`QueryStrategy::Auto`] per query from the index's
//! posting-list statistics — no candidates are materialised to make the decision.
//!
//! Since the filter–verify rewrite the estimate is **length-aware**: every personal
//! name is resolved against each index's interner exactly once
//! ([`NameIndex::resolve_query`] — the same resolution the candidate lookup runs
//! on), and only posting segments inside the [`LengthWindow`] derived from the
//! engine's similarity floor are charged, because those are the only postings the
//! index-pruned path will merge.

use serde::{Deserialize, Serialize};
use xsm_repo::{LengthWindow, NameIndex, ResolvedQuery};
use xsm_schema::SchemaTree;

use crate::query::{PlannedStrategy, QueryStrategy};

/// Tuning knobs of the [`QueryPlanner`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// q-gram overlap fraction passed to the approximate index lookups when the
    /// index-pruned path is taken.
    pub min_overlap: f64,
    /// Take the index-pruned path only when the estimated candidate volume is below
    /// this fraction of the exhaustive scan's kernel evaluations.
    pub max_pruned_fraction: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            min_overlap: 0.5,
            max_pruned_fraction: 0.5,
        }
    }
}

/// Additive posting-list statistics of one repository slice, measured for one
/// personal schema — the planner inputs that survive a wire boundary.
///
/// Stats are **additive over a disjoint partition of the repository**: a gram's
/// posting lists across shards concatenate to its global posting list and
/// indexed-node counts sum, so [`PlanStats::merge`]-ing per-shard measurements
/// reaches exactly the numbers a single index over the whole repository reports.
/// That additivity is what lets a router ask each shard for its local stats
/// (`MatchService::plan_stats`, possibly over TCP) and resolve
/// [`QueryStrategy::Auto`] globally with [`QueryPlanner::plan_from_stats`],
/// reaching **exactly** the decision the unsharded planner reaches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Number of indexed repository nodes in this slice.
    pub indexed_nodes: u64,
    /// Summed in-window posting-segment lengths over the personal names — the
    /// candidate volume the index-pruned path would merge against this slice.
    pub estimated_volume: u64,
}

impl PlanStats {
    /// Measure `personal` against one shard's index: the same per-name
    /// [`NameIndex::resolve_query`] + windowed volume estimate the `Auto`
    /// planning pass runs, so a stats-based plan can never diverge from a
    /// direct one.
    pub fn measure(personal: &SchemaTree, index: &NameIndex, length_floor: f64) -> PlanStats {
        let window = LengthWindow::fuzzy_floor(length_floor);
        let estimated: u64 = personal
            .nodes()
            .map(|(_, node)| {
                let resolved = index.resolve_query(&node.name);
                index.estimate_candidate_volume_resolved(&resolved, window) as u64
            })
            .sum();
        PlanStats {
            indexed_nodes: index.indexed_nodes() as u64,
            estimated_volume: estimated,
        }
    }

    /// Combine two disjoint slices' statistics (saturating; repositories nowhere
    /// near overflow in practice).
    pub fn merge(self, other: PlanStats) -> PlanStats {
        PlanStats {
            indexed_nodes: self.indexed_nodes.saturating_add(other.indexed_nodes),
            estimated_volume: self.estimated_volume.saturating_add(other.estimated_volume),
        }
    }
}

/// The planner's decision for one query, with the statistics it was based on.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QueryPlan {
    /// The chosen candidate-generation path.
    pub strategy: PlannedStrategy,
    /// Estimated index work: summed **in-window** posting-segment lengths over the
    /// personal names (the post-length-filter volume the filter–verify lookup will
    /// actually merge). Only computed when the decision needed it, i.e. for
    /// [`QueryStrategy::Auto`]; forced strategies skip the estimation pass and
    /// report 0.
    pub estimated_volume: usize,
    /// Exhaustive work: `|N_s| · |N_R|` kernel evaluations.
    pub exhaustive_volume: usize,
}

/// Chooses between index-pruned and exhaustive candidate generation.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryPlanner {
    config: PlannerConfig,
}

impl QueryPlanner {
    /// A planner with the given tuning.
    pub fn new(config: PlannerConfig) -> Self {
        QueryPlanner { config }
    }

    /// The planner's tuning knobs.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Resolve the strategy for one query. Forced strategies are honoured verbatim;
    /// `Auto` compares the index's estimated candidate volume against the exhaustive
    /// scan and picks whichever is cheaper by [`PlannerConfig::max_pruned_fraction`].
    ///
    /// `length_floor` is the similarity floor the index-pruned path will derive its
    /// length window from (the engine's `ElementMatchConfig::min_similarity`);
    /// `0.0` disables length filtering and reproduces the unwindowed estimate.
    pub fn plan(
        &self,
        personal: &SchemaTree,
        requested: QueryStrategy,
        index: &NameIndex,
        length_floor: f64,
    ) -> QueryPlan {
        self.plan_over(personal, requested, std::iter::once(index), length_floor)
    }

    /// [`QueryPlanner::plan`] over a repository served by several indexes (one per
    /// shard). The statistics the decision reads are *additive* over a disjoint
    /// partition of the repository — a gram's posting lists across shards
    /// concatenate to its global posting list, and indexed-node counts sum — so
    /// planning over the shard indexes reaches **exactly** the decision the single
    /// engine's planner reaches over the whole repository. A sharded router plans
    /// once up here and forces the resolved strategy onto every shard; letting each
    /// shard re-plan `Auto` from its local statistics could split the fleet across
    /// strategies and silently diverge from the unsharded answer.
    pub fn plan_over<'a>(
        &self,
        personal: &SchemaTree,
        requested: QueryStrategy,
        indexes: impl Iterator<Item = &'a NameIndex> + Clone,
        length_floor: f64,
    ) -> QueryPlan {
        match requested {
            QueryStrategy::IndexPruned | QueryStrategy::Exhaustive => {
                // Forced strategies never need the estimation pass.
                let indexed_nodes: u64 = indexes.map(|i| i.indexed_nodes() as u64).sum();
                self.plan_from_stats(
                    personal,
                    requested,
                    PlanStats {
                        indexed_nodes,
                        estimated_volume: 0,
                    },
                )
            }
            QueryStrategy::Auto => {
                // One `PlanStats::measure` per index — the same per-name
                // resolution the candidate lookup itself runs on, so the planner
                // and the lookup can never disagree about a query's grams.
                // Merging per-index stats reaches exactly the single-index
                // numbers (posting segments are additive over a disjoint forest
                // partition).
                let stats = indexes.fold(PlanStats::default(), |acc, index| {
                    acc.merge(PlanStats::measure(personal, index, length_floor))
                });
                self.plan_from_stats(personal, requested, stats)
            }
        }
    }

    /// Resolve a strategy from already-measured [`PlanStats`] — the entry point a
    /// sharded router uses after gathering per-shard statistics (possibly over
    /// the wire). Feeding the merged stats of every shard reaches **exactly**
    /// the decision [`QueryPlanner::plan`] reaches over the whole index; the
    /// property suite pins that equality.
    pub fn plan_from_stats(
        &self,
        personal: &SchemaTree,
        requested: QueryStrategy,
        stats: PlanStats,
    ) -> QueryPlan {
        let exhaustive_volume = personal.len() * stats.indexed_nodes as usize;
        let (strategy, estimated_volume) = match requested {
            QueryStrategy::IndexPruned => (PlannedStrategy::IndexPruned, 0),
            QueryStrategy::Exhaustive => (PlannedStrategy::Exhaustive, 0),
            QueryStrategy::Auto => self.decide(stats.estimated_volume as usize, exhaustive_volume),
        };
        QueryPlan {
            strategy,
            estimated_volume,
            exhaustive_volume,
        }
    }

    /// [`QueryPlanner::plan`] when the caller has already resolved every personal
    /// name against `index` ([`NameIndex::resolve_query`], one entry per node —
    /// order does not matter for the additive estimate): the `Auto` decision
    /// reuses those resolutions, so an engine that generates candidates from the
    /// same slice resolves each query name exactly once end to end.
    pub fn plan_resolved(
        &self,
        personal: &SchemaTree,
        requested: QueryStrategy,
        index: &NameIndex,
        length_floor: f64,
        resolved: &[ResolvedQuery],
    ) -> QueryPlan {
        let exhaustive_volume = personal.len() * index.indexed_nodes();
        let (strategy, estimated_volume) = match requested {
            QueryStrategy::IndexPruned => (PlannedStrategy::IndexPruned, 0),
            QueryStrategy::Exhaustive => (PlannedStrategy::Exhaustive, 0),
            QueryStrategy::Auto => {
                let window = LengthWindow::fuzzy_floor(length_floor);
                let estimated: usize = resolved
                    .iter()
                    .map(|r| index.estimate_candidate_volume_resolved(r, window))
                    .sum();
                self.decide(estimated, exhaustive_volume)
            }
        };
        QueryPlan {
            strategy,
            estimated_volume,
            exhaustive_volume,
        }
    }

    /// The `Auto` resolution shared by every planning entry point: index-pruned
    /// iff the estimated merge volume fits the pruning budget.
    fn decide(&self, estimated: usize, exhaustive_volume: usize) -> (PlannedStrategy, usize) {
        let budget = self.config.max_pruned_fraction * exhaustive_volume as f64;
        if exhaustive_volume > 0 && (estimated as f64) <= budget {
            (PlannedStrategy::IndexPruned, estimated)
        } else {
            (PlannedStrategy::Exhaustive, estimated)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_repo::SchemaRepository;
    use xsm_schema::{SchemaNode, TreeBuilder};

    fn repo_of(names: &[&str]) -> SchemaRepository {
        let mut b = TreeBuilder::new("t").root(SchemaNode::element(names[0]));
        for n in &names[1..] {
            b = b.sibling(SchemaNode::element(*n));
        }
        SchemaRepository::from_trees(vec![b.build()])
    }

    fn personal(name: &str) -> SchemaTree {
        TreeBuilder::new("p")
            .root(SchemaNode::element(name))
            .build()
    }

    #[test]
    fn forced_strategies_are_honoured() {
        let repo = repo_of(&["alpha", "beta", "gamma"]);
        let index = NameIndex::build(&repo);
        let planner = QueryPlanner::default();
        let p = personal("alpha");
        assert_eq!(
            planner
                .plan(&p, QueryStrategy::IndexPruned, &index, 0.5)
                .strategy,
            PlannedStrategy::IndexPruned
        );
        assert_eq!(
            planner
                .plan(&p, QueryStrategy::Exhaustive, &index, 0.5)
                .strategy,
            PlannedStrategy::Exhaustive
        );
    }

    #[test]
    fn auto_prunes_rare_names_and_scans_common_ones() {
        // 40 distinct names plus one name repeated everywhere.
        let mut names: Vec<String> = (0..40).map(|i| format!("field{i:02}")).collect();
        for _ in 0..40 {
            names.push("shared".to_string());
        }
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let repo = repo_of(&refs);
        let index = NameIndex::build(&repo);
        let planner = QueryPlanner::default();

        // A name unrelated to everything: tiny posting volume → index pruning.
        let rare = planner.plan(&personal("zzqx"), QueryStrategy::Auto, &index, 0.5);
        assert_eq!(rare.strategy, PlannedStrategy::IndexPruned);
        assert!(rare.estimated_volume < rare.exhaustive_volume / 2);

        // The ubiquitous name floods the postings → exhaustive scan.
        let common = planner.plan(&personal("shared"), QueryStrategy::Auto, &index, 0.5);
        assert_eq!(common.strategy, PlannedStrategy::Exhaustive);
    }

    #[test]
    fn length_floor_shrinks_the_estimate_monotonically() {
        // Short and long names sharing grams with a mid-length query: tighter
        // floors exclude more length segments from the estimate.
        let repo = repo_of(&[
            "na",
            "nam",
            "name",
            "names",
            "nameplate",
            "namespaces",
            "namespaceuri",
        ]);
        let index = NameIndex::build(&repo);
        let planner = QueryPlanner::default();
        let p = personal("name");
        let mut last = usize::MAX;
        for floor in [0.0, 0.4, 0.7, 0.95] {
            let plan = planner.plan(&p, QueryStrategy::Auto, &index, floor);
            assert!(
                plan.estimated_volume <= last,
                "floor {floor} grew the estimate"
            );
            last = plan.estimated_volume;
        }
        // floor 0.0 must equal the unwindowed estimate.
        let unwindowed = planner.plan(&p, QueryStrategy::Auto, &index, 0.0);
        assert_eq!(
            unwindowed.estimated_volume,
            index.estimate_candidate_volume("name")
        );
        // A strict floor keeps only near-equal lengths.
        assert!(last < unwindowed.estimated_volume);
    }

    #[test]
    fn plan_resolved_matches_plan() {
        let repo = repo_of(&["alpha", "beta", "gamma", "name", "names", "nameplate"]);
        let index = NameIndex::build(&repo);
        let planner = QueryPlanner::default();
        for name in ["alpha", "name", "zzqx"] {
            let p = personal(name);
            let resolved = vec![index.resolve_query(name)];
            for (requested, floor) in [
                (QueryStrategy::Auto, 0.0),
                (QueryStrategy::Auto, 0.6),
                (QueryStrategy::IndexPruned, 0.5),
                (QueryStrategy::Exhaustive, 0.5),
            ] {
                let direct = planner.plan(&p, requested, &index, floor);
                let shared = planner.plan_resolved(&p, requested, &index, floor, &resolved);
                assert_eq!(direct.strategy, shared.strategy, "{name}");
                assert_eq!(direct.estimated_volume, shared.estimated_volume, "{name}");
                assert_eq!(direct.exhaustive_volume, shared.exhaustive_volume, "{name}");
            }
        }
    }

    #[test]
    fn plan_over_shard_indexes_matches_the_whole_index() {
        use xsm_repo::{RepositoryPartition, ShardPlacement};
        let mut names: Vec<String> = (0..30).map(|i| format!("field{i:02}")).collect();
        names.push("shared".to_string());
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut forest = SchemaRepository::new();
        for chunk in refs.chunks(7) {
            let mut b = TreeBuilder::new("t").root(SchemaNode::element(chunk[0]));
            for n in &chunk[1..] {
                b = b.sibling(SchemaNode::element(*n));
            }
            forest.add_tree(b.build());
        }
        let whole = NameIndex::build(&forest);
        let planner = QueryPlanner::default();
        for shards in [1, 2, 3] {
            for placement in [ShardPlacement::Contiguous, ShardPlacement::TreeHash] {
                let partition = RepositoryPartition::build(&forest, shards, placement);
                let indexes: Vec<NameIndex> =
                    partition.shards().iter().map(NameIndex::build).collect();
                for name in ["field07", "shared", "zzqx", "fiel"] {
                    for floor in [0.0, 0.5, 0.9] {
                        let single =
                            planner.plan(&personal(name), QueryStrategy::Auto, &whole, floor);
                        let sharded = planner.plan_over(
                            &personal(name),
                            QueryStrategy::Auto,
                            indexes.iter(),
                            floor,
                        );
                        assert_eq!(single.strategy, sharded.strategy, "{name}");
                        assert_eq!(single.estimated_volume, sharded.estimated_volume, "{name}");
                        assert_eq!(
                            single.exhaustive_volume, sharded.exhaustive_volume,
                            "{name}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn plan_from_merged_shard_stats_matches_the_whole_index() {
        use xsm_repo::{RepositoryPartition, ShardPlacement};
        let names: Vec<String> = (0..24)
            .map(|i| format!("field{i:02}"))
            .chain(std::iter::repeat_with(|| "shared".to_string()).take(12))
            .collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let mut forest = SchemaRepository::new();
        for chunk in refs.chunks(5) {
            let mut b = TreeBuilder::new("t").root(SchemaNode::element(chunk[0]));
            for n in &chunk[1..] {
                b = b.sibling(SchemaNode::element(*n));
            }
            forest.add_tree(b.build());
        }
        let whole = NameIndex::build(&forest);
        let planner = QueryPlanner::default();
        for shards in [1, 3] {
            let partition = RepositoryPartition::build(&forest, shards, ShardPlacement::Contiguous);
            for name in ["shared", "field11", "zzqx"] {
                for floor in [0.0, 0.5, 0.9] {
                    let p = personal(name);
                    // The router path: measure each shard independently, merge.
                    let stats = partition
                        .shards()
                        .iter()
                        .map(NameIndex::build)
                        .fold(PlanStats::default(), |acc, index| {
                            acc.merge(PlanStats::measure(&p, &index, floor))
                        });
                    let from_stats = planner.plan_from_stats(&p, QueryStrategy::Auto, stats);
                    let direct = planner.plan(&p, QueryStrategy::Auto, &whole, floor);
                    assert_eq!(direct.strategy, from_stats.strategy, "{name}/{floor}");
                    assert_eq!(
                        direct.estimated_volume, from_stats.estimated_volume,
                        "{name}/{floor}"
                    );
                    assert_eq!(
                        direct.exhaustive_volume, from_stats.exhaustive_volume,
                        "{name}/{floor}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_repository_falls_back_to_exhaustive() {
        let repo = SchemaRepository::new();
        let index = NameIndex::build(&repo);
        let plan = QueryPlanner::default().plan(&personal("x"), QueryStrategy::Auto, &index, 0.5);
        assert_eq!(plan.strategy, PlannedStrategy::Exhaustive);
        assert_eq!(plan.exhaustive_volume, 0);
    }
}
