//! Deterministic serving workloads for tests and benches.
//!
//! The determinism integration test and the `serve` throughput bench need the *same*
//! reproducible query mix: personal schemas assembled from names the repository
//! actually contains, with a fraction perturbed into near-miss names to exercise
//! fuzzy scoring. Keeping the generator here (the crate both depend on) stops the
//! two workloads from silently diverging.

use std::collections::BTreeSet;

use xsm_repo::SchemaRepository;
use xsm_schema::{SchemaNode, SchemaTree, TreeBuilder};

/// Build `n` deterministic three-node personal schemas from the repository's own
/// vocabulary. Names are drawn in a fixed stride pattern from the sorted distinct
/// name set; every fourth drawn name gets an `x` appended (a near-miss that only
/// fuzzy matching can relate back). The same repository and `n` always produce the
/// same schemas.
pub fn seeded_personal_schemas(repo: &SchemaRepository, n: usize) -> Vec<SchemaTree> {
    let names: Vec<String> = repo
        .nodes()
        .map(|(_, node)| node.name.clone())
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    assert!(
        !names.is_empty(),
        "cannot build a workload over an empty repository"
    );
    let name = |i: usize| {
        let base = &names[i % names.len()];
        if i % 4 == 3 {
            format!("{base}x")
        } else {
            base.clone()
        }
    };
    (0..n)
        .map(|i| {
            TreeBuilder::new("personal")
                .root(SchemaNode::element(name(i * 3)))
                .child(SchemaNode::element(name(i * 5 + 1)))
                .sibling(SchemaNode::element(name(i * 7 + 2)))
                .build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_schema::tree::paper_repository_fragment;

    #[test]
    fn workload_is_deterministic_and_shaped() {
        let repo = SchemaRepository::from_trees(vec![paper_repository_fragment()]);
        let a = seeded_personal_schemas(&repo, 12);
        let b = seeded_personal_schemas(&repo, 12);
        assert_eq!(a.len(), 12);
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.len(), 3);
            let names_a: Vec<&str> = ta.preorder().iter().map(|&n| ta.name_of(n)).collect();
            let names_b: Vec<&str> = tb.preorder().iter().map(|&n| tb.name_of(n)).collect();
            assert_eq!(names_a, names_b);
        }
        // The perturbation actually fires somewhere in the mix.
        assert!(a.iter().any(|t| t
            .preorder()
            .iter()
            .any(|&n| t.name_of(n).ends_with('x') && t.name_of(n).len() > 1)));
    }

    #[test]
    #[should_panic(expected = "empty repository")]
    fn empty_repository_is_rejected() {
        seeded_personal_schemas(&SchemaRepository::new(), 3);
    }
}
