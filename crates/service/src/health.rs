//! Per-backend health tracking: a circuit breaker with deterministic
//! transitions.
//!
//! Every backend of a [`crate::ReplicaSet`] carries one [`CircuitBreaker`]
//! summarising its recent behaviour into three states:
//!
//! * **Closed** — healthy; requests flow. [`HealthConfig::failure_threshold`]
//!   *consecutive* failures trip the breaker open (one success resets the
//!   count, so a backend that intermittently succeeds is never suspected).
//! * **Open** — suspected dead; the replica set routes around it. After
//!   [`HealthConfig::open_cooldown`] the breaker admits exactly **one** trial
//!   request at a time (moving to `HalfProbe`); until then admission is
//!   refused so a struggling backend is not hammered while it restarts.
//! * **HalfProbe** — one trial in flight. Success closes the breaker
//!   (full traffic resumes), failure re-opens it and restarts the cooldown.
//!
//! Two things make the breaker testable without timing sleeps, which is what
//! the state-transition unit tests below rely on:
//!
//! 1. Transitions happen only inside explicit calls ([`CircuitBreaker::admit`],
//!    [`CircuitBreaker::record_success`], [`CircuitBreaker::record_failure`]) —
//!    there is no background timer mutating state.
//! 2. The cooldown is data, not behaviour: with `open_cooldown = 0` every
//!    `admit` after a trip immediately offers the trial slot, and with a large
//!    cooldown it deterministically never does.
//!
//! The breaker itself never touches a backend; the [`crate::ReplicaSet`]'s
//! routing consults it per query and its background prober thread redials
//! open backends ([`crate::MatchService::ping`]) and closes the breaker on a
//! successful handshake.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The three circuit-breaker states; see the module docs for the transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow freely.
    Closed,
    /// Suspected dead: requests are refused until the cooldown elapses.
    Open,
    /// One trial request in flight; its outcome decides Closed vs Open.
    HalfProbe,
}

/// What a [`CircuitBreaker::record_failure`] / [`CircuitBreaker::record_success`]
/// call did to the breaker — returned so the caller can count state changes
/// (e.g. `breaker_opens`, `probe_redials`) without re-deriving them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerEvent {
    /// The state did not change.
    None,
    /// The breaker tripped (Closed or HalfProbe → Open).
    Opened,
    /// The breaker closed (Open or HalfProbe → Closed).
    Closed,
}

/// Tuning of one backend's [`CircuitBreaker`].
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive failures that trip Closed → Open (`>= 1`; a success resets
    /// the count).
    pub failure_threshold: u32,
    /// How long an open breaker refuses all traffic before admitting one
    /// trial request. `Duration::ZERO` makes every post-trip `admit` offer
    /// the trial immediately — the deterministic-test configuration.
    pub open_cooldown: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(250),
        }
    }
}

impl HealthConfig {
    /// Builder-style failure-threshold override (`0` is clamped to `1`).
    pub fn with_failure_threshold(mut self, threshold: u32) -> Self {
        self.failure_threshold = threshold.max(1);
        self
    }

    /// Builder-style cooldown override.
    pub fn with_open_cooldown(mut self, cooldown: Duration) -> Self {
        self.open_cooldown = cooldown;
        self
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    /// When the breaker last tripped (meaningful in `Open`).
    opened_at: Instant,
}

/// One backend's error-window circuit breaker; see the module docs.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: HealthConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: HealthConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: Instant::now(),
            }),
        }
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().unwrap().state
    }

    /// Ask to route one request through this backend.
    ///
    /// * `Closed` → admitted.
    /// * `Open` before the cooldown → refused.
    /// * `Open` after the cooldown → admitted as the trial (state becomes
    ///   `HalfProbe`).
    /// * `HalfProbe` → refused (exactly one trial at a time).
    ///
    /// An admitted caller **must** report the outcome with
    /// [`CircuitBreaker::record_success`] or [`CircuitBreaker::record_failure`],
    /// otherwise a `HalfProbe` trial slot leaks until the next outcome report.
    pub fn admit(&self) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfProbe => false,
            BreakerState::Open => {
                if inner.opened_at.elapsed() >= self.config.open_cooldown {
                    inner.state = BreakerState::HalfProbe;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Report a successful request (or probe). Closes an open breaker — a
    /// probe that got through proves the backend is back — and completes a
    /// `HalfProbe` trial.
    pub fn record_success(&self) -> BreakerEvent {
        let mut inner = self.inner.lock().unwrap();
        inner.consecutive_failures = 0;
        match inner.state {
            BreakerState::Closed => BreakerEvent::None,
            BreakerState::Open | BreakerState::HalfProbe => {
                inner.state = BreakerState::Closed;
                BreakerEvent::Closed
            }
        }
    }

    /// Report a failed request (or probe). Trips the breaker after
    /// `failure_threshold` consecutive failures, re-opens a failed trial, and
    /// restarts an open breaker's cooldown (the backend is still down).
    pub fn record_failure(&self) -> BreakerEvent {
        let mut inner = self.inner.lock().unwrap();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        match inner.state {
            BreakerState::Closed => {
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Instant::now();
                    BreakerEvent::Opened
                } else {
                    BreakerEvent::None
                }
            }
            BreakerState::HalfProbe => {
                inner.state = BreakerState::Open;
                inner.opened_at = Instant::now();
                BreakerEvent::Opened
            }
            BreakerState::Open => {
                inner.opened_at = Instant::now();
                BreakerEvent::None
            }
        }
    }

    /// Whether a background probe is due: the breaker is open and the cooldown
    /// has elapsed. (A `HalfProbe` breaker already has a trial in flight, so
    /// probing it again would double up.)
    pub fn probe_due(&self) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.state == BreakerState::Open && inner.opened_at.elapsed() >= self.config.open_cooldown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker::new(
            HealthConfig::default()
                .with_failure_threshold(threshold)
                .with_open_cooldown(cooldown),
        )
    }

    #[test]
    fn closed_admits_and_success_resets_the_failure_count() {
        let b = breaker(2, Duration::ZERO);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
        // fail, succeed, fail, fail: the success resets the streak, so only
        // the last two failures count.
        assert_eq!(b.record_failure(), BreakerEvent::None);
        assert_eq!(b.record_success(), BreakerEvent::None);
        assert_eq!(b.record_failure(), BreakerEvent::None);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.record_failure(), BreakerEvent::Opened);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_refuses_until_the_cooldown_then_admits_one_trial() {
        let b = breaker(1, Duration::from_secs(3600));
        assert_eq!(b.record_failure(), BreakerEvent::Opened);
        // Cooldown far in the future: no admission, no probe due.
        assert!(!b.admit());
        assert!(!b.probe_due());
        assert_eq!(b.state(), BreakerState::Open);

        let b = breaker(1, Duration::ZERO);
        assert_eq!(b.record_failure(), BreakerEvent::Opened);
        assert!(b.probe_due());
        // Zero cooldown: the next admit is the trial...
        assert!(b.admit());
        assert_eq!(b.state(), BreakerState::HalfProbe);
        // ...and exactly one: concurrent admits are refused until the outcome.
        assert!(!b.admit());
        assert!(!b.probe_due());
    }

    #[test]
    fn trial_success_closes_and_trial_failure_reopens() {
        let b = breaker(1, Duration::ZERO);
        b.record_failure();
        assert!(b.admit());
        assert_eq!(b.record_success(), BreakerEvent::Closed);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());

        let b = breaker(1, Duration::ZERO);
        b.record_failure();
        assert!(b.admit());
        assert_eq!(b.record_failure(), BreakerEvent::Opened);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn probe_success_closes_an_open_breaker_directly() {
        // The background prober path: ping succeeds while Open (no trial was
        // admitted) — the breaker closes without passing through HalfProbe.
        let b = breaker(1, Duration::ZERO);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.record_success(), BreakerEvent::Closed);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failures_while_open_restart_the_cooldown_without_reopening() {
        let b = breaker(1, Duration::from_secs(3600));
        assert_eq!(b.record_failure(), BreakerEvent::Opened);
        // Further failures (e.g. a failed background probe) are not new trips.
        assert_eq!(b.record_failure(), BreakerEvent::None);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn flapping_sequence_walks_every_state() {
        // fail-2 / succeed-1 flapping against threshold 2: trip, trial, close,
        // trip again — each step deterministic, no sleeps.
        let b = breaker(2, Duration::ZERO);
        assert_eq!(b.record_failure(), BreakerEvent::None);
        assert_eq!(b.record_failure(), BreakerEvent::Opened); // Closed → Open
        assert!(b.admit()); // Open → HalfProbe
        assert_eq!(b.record_success(), BreakerEvent::Closed); // HalfProbe → Closed
        assert_eq!(b.record_failure(), BreakerEvent::None);
        assert_eq!(b.record_failure(), BreakerEvent::Opened); // and around again
        assert!(b.admit());
        assert_eq!(b.record_failure(), BreakerEvent::Opened); // HalfProbe → Open
        assert_eq!(b.state(), BreakerState::Open);
    }
}
