//! Parser for a pragmatic subset of W3C XML Schema (XSD).
//!
//! Supports global and local `xs:element`, named and anonymous `xs:complexType`,
//! `xs:sequence` / `xs:choice` / `xs:all`, `xs:attribute`, `type="…"` references to
//! both built-in simple types and named complex types, `ref="…"` element references,
//! and `minOccurs` / `maxOccurs`. `xs:extension` / `xs:restriction` bases are followed
//! one level (the extended content is appended after the base's). Imports, includes,
//! groups, substitution groups and identity constraints are ignored.
//!
//! Each top-level `xs:element` becomes the root of one [`SchemaTree`] ("one schema can
//! have multiple roots, each represented with one tree").

use super::xml::{local_name, tokenize, XmlEvent};
use super::MAX_EXPANSION_DEPTH;
use crate::error::{Result, SchemaError};
use crate::node::{Cardinality, SchemaNode};
use crate::tree::SchemaTree;
use crate::XsdType;
use std::collections::BTreeMap;

/// An in-memory element of the raw XSD document tree (before semantic interpretation).
#[derive(Debug, Clone)]
struct RawElem {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<RawElem>,
}

impl RawElem {
    fn attr(&self, key: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| local_name(k) == key)
            .map(|(_, v)| v.as_str())
    }

    fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a RawElem> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }
}

/// Build the raw document tree from the tokenizer events.
fn build_raw_tree(input: &str) -> Result<RawElem> {
    let events = tokenize(input)?;
    let mut stack: Vec<RawElem> = vec![RawElem {
        name: "#document".into(),
        attrs: vec![],
        children: vec![],
    }];
    for ev in events {
        match ev {
            XmlEvent::StartElement {
                name,
                attributes,
                self_closing,
            } => {
                let elem = RawElem {
                    name: local_name(&name).to_string(),
                    attrs: attributes,
                    children: vec![],
                };
                if self_closing {
                    stack.last_mut().unwrap().children.push(elem);
                } else {
                    stack.push(elem);
                }
            }
            XmlEvent::EndElement { name } => {
                let done = stack
                    .pop()
                    .ok_or_else(|| SchemaError::parse(0, "unbalanced end tag"))?;
                if done.name != local_name(&name) {
                    return Err(SchemaError::parse(
                        0,
                        format!("mismatched end tag </{}> for <{}>", name, done.name),
                    ));
                }
                stack
                    .last_mut()
                    .ok_or_else(|| SchemaError::parse(0, "end tag after document root"))?
                    .children
                    .push(done);
            }
            XmlEvent::Text(_) => {}
        }
    }
    if stack.len() != 1 {
        return Err(SchemaError::parse(
            0,
            "unclosed elements at end of document",
        ));
    }
    Ok(stack.pop().unwrap())
}

/// The interpretation context: named global declarations.
struct XsdContext {
    complex_types: BTreeMap<String, RawElem>,
    global_elements: BTreeMap<String, RawElem>,
}

/// Parse an XSD document into a forest of schema trees.
pub fn parse_xsd(schema_name: &str, input: &str) -> Result<Vec<SchemaTree>> {
    let doc = build_raw_tree(input)?;
    let schema = doc
        .children
        .iter()
        .find(|c| c.name == "schema")
        .ok_or(SchemaError::EmptyDocument)?;

    let mut ctx = XsdContext {
        complex_types: BTreeMap::new(),
        global_elements: BTreeMap::new(),
    };
    for child in &schema.children {
        match child.name.as_str() {
            "complexType" => {
                if let Some(name) = child.attr("name") {
                    ctx.complex_types.insert(name.to_string(), child.clone());
                }
            }
            "element" => {
                if let Some(name) = child.attr("name") {
                    ctx.global_elements.insert(name.to_string(), child.clone());
                }
            }
            _ => {}
        }
    }
    if ctx.global_elements.is_empty() {
        return Err(SchemaError::EmptyDocument);
    }

    // Roots: global elements that are not referenced (`ref=`) by any other declaration.
    let mut referenced: Vec<String> = Vec::new();
    collect_refs(schema, &mut referenced);
    let mut forest = Vec::new();
    let multi = ctx
        .global_elements
        .keys()
        .filter(|n| !referenced.contains(n))
        .count()
        > 1;
    let mut index = 0usize;
    for (name, raw) in &ctx.global_elements {
        if referenced.contains(name) {
            continue;
        }
        let tree_name = if multi {
            format!("{schema_name}#{index}")
        } else {
            schema_name.to_string()
        };
        index += 1;
        let mut tree = SchemaTree::new(tree_name);
        let root_node = element_node(raw);
        let root_id = tree.add_root(root_node)?;
        expand_element(&mut tree, root_id, raw, &ctx, 0)?;
        forest.push(tree);
    }
    if forest.is_empty() {
        // Everything referenced (cyclic refs): take the first global element anyway.
        let (_, raw) = ctx.global_elements.iter().next().unwrap();
        let mut tree = SchemaTree::new(schema_name.to_string());
        let root_id = tree.add_root(element_node(raw))?;
        expand_element(&mut tree, root_id, raw, &ctx, 0)?;
        forest.push(tree);
    }
    Ok(forest)
}

/// Record every `ref="…"` attribute value under `elem`.
fn collect_refs(elem: &RawElem, out: &mut Vec<String>) {
    for c in &elem.children {
        if c.name == "element" {
            if let Some(r) = c.attr("ref") {
                out.push(local_name(r).to_string());
            }
        }
        collect_refs(c, out);
    }
}

/// Build the [`SchemaNode`] for an `xs:element` declaration.
fn element_node(raw: &RawElem) -> SchemaNode {
    let name = raw
        .attr("name")
        .or_else(|| raw.attr("ref").map(local_name))
        .unwrap_or("anonymous");
    let mut node = SchemaNode::element(name);
    node.cardinality = occurs(raw);
    if let Some(ty) = raw.attr("type") {
        if let Ok(t) = ty.parse::<XsdType>() {
            node.datatype = Some(t);
        }
    }
    node
}

/// Effective cardinality from `minOccurs` / `maxOccurs`.
fn occurs(raw: &RawElem) -> Cardinality {
    let min: u32 = raw
        .attr("minOccurs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let max: Option<u32> = match raw.attr("maxOccurs") {
        Some("unbounded") => None,
        Some(v) => v.parse().ok(),
        None => Some(1),
    };
    Cardinality::from_occurs(min, max)
}

/// Expand the content of an `xs:element` declaration under `parent`.
fn expand_element(
    tree: &mut SchemaTree,
    parent: crate::NodeId,
    raw: &RawElem,
    ctx: &XsdContext,
    depth: usize,
) -> Result<()> {
    if depth > MAX_EXPANSION_DEPTH {
        return Ok(()); // truncate gracefully, like the DTD parser
    }
    // Case 1: element with a named complex type.
    if let Some(ty) = raw.attr("type") {
        let local = local_name(ty);
        if let Some(ct) = ctx.complex_types.get(local) {
            expand_complex_type(tree, parent, ct, ctx, depth + 1)?;
            return Ok(());
        }
        // Simple/built-in type: nothing further to expand.
        return Ok(());
    }
    // Case 2: element referencing a global element.
    if let Some(r) = raw.attr("ref") {
        let local = local_name(r);
        if let Some(global) = ctx.global_elements.get(local) {
            expand_element(tree, parent, global, ctx, depth + 1)?;
        }
        return Ok(());
    }
    // Case 3: inline anonymous complexType.
    for ct in raw.children_named("complexType") {
        expand_complex_type(tree, parent, ct, ctx, depth + 1)?;
    }
    // Inline simpleType: record as string-ish datatype if none set.
    if raw.children_named("simpleType").next().is_some() {
        if let Some(n) = tree.node_mut(parent) {
            if n.datatype.is_none() {
                n.datatype = Some(XsdType::String);
            }
        }
    }
    Ok(())
}

/// Expand a complexType body (attributes + particles) under `parent`.
fn expand_complex_type(
    tree: &mut SchemaTree,
    parent: crate::NodeId,
    ct: &RawElem,
    ctx: &XsdContext,
    depth: usize,
) -> Result<()> {
    if depth > MAX_EXPANSION_DEPTH {
        return Ok(());
    }
    for child in &ct.children {
        match child.name.as_str() {
            "attribute" => add_attribute(tree, parent, child)?,
            "sequence" | "choice" | "all" => expand_particle(tree, parent, child, ctx, depth + 1)?,
            "complexContent" | "simpleContent" => {
                for ext in &child.children {
                    if ext.name == "extension" || ext.name == "restriction" {
                        // Follow the base type one level.
                        if let Some(base) = ext.attr("base") {
                            if let Some(base_ct) = ctx.complex_types.get(local_name(base)) {
                                expand_complex_type(tree, parent, base_ct, ctx, depth + 1)?;
                            } else if let Ok(t) = base.parse::<XsdType>() {
                                if let Some(n) = tree.node_mut(parent) {
                                    if n.datatype.is_none() {
                                        n.datatype = Some(t);
                                    }
                                }
                            }
                        }
                        expand_complex_type(tree, parent, ext, ctx, depth + 1)?;
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Expand an `xs:sequence` / `xs:choice` / `xs:all` particle under `parent`.
fn expand_particle(
    tree: &mut SchemaTree,
    parent: crate::NodeId,
    particle: &RawElem,
    ctx: &XsdContext,
    depth: usize,
) -> Result<()> {
    if depth > MAX_EXPANSION_DEPTH {
        return Ok(());
    }
    // In a choice, every branch is effectively optional.
    let in_choice = particle.name == "choice";
    for child in &particle.children {
        match child.name.as_str() {
            "element" => {
                let mut node = element_node(child);
                if in_choice && node.cardinality == Cardinality::One {
                    node.cardinality = Cardinality::Optional;
                }
                let id = tree.add_child(parent, node)?;
                expand_element(tree, id, child, ctx, depth + 1)?;
            }
            "sequence" | "choice" | "all" => {
                expand_particle(tree, parent, child, ctx, depth + 1)?;
            }
            "attribute" => add_attribute(tree, parent, child)?,
            _ => {}
        }
    }
    Ok(())
}

/// Add an `xs:attribute` declaration as an attribute node.
fn add_attribute(tree: &mut SchemaTree, parent: crate::NodeId, attr: &RawElem) -> Result<()> {
    let name = attr
        .attr("name")
        .or_else(|| attr.attr("ref").map(local_name))
        .unwrap_or("anonymous");
    let mut node = SchemaNode::attribute(name);
    if let Some(ty) = attr.attr("type") {
        node.datatype = ty.parse().ok().or(Some(XsdType::String));
    } else {
        node.datatype = Some(XsdType::String);
    }
    node.cardinality = match attr.attr("use") {
        Some("required") => Cardinality::One,
        _ => Cardinality::Optional,
    };
    tree.add_child(parent, node)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    const LIB_XSD: &str = r#"
    <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="lib">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="book" maxOccurs="unbounded">
              <xs:complexType>
                <xs:sequence>
                  <xs:element name="data" type="DataType"/>
                  <xs:element name="shelf" type="xs:string" minOccurs="0"/>
                </xs:sequence>
                <xs:attribute name="isbn" type="xs:ID" use="required"/>
              </xs:complexType>
            </xs:element>
            <xs:element name="address" type="xs:string"/>
          </xs:sequence>
        </xs:complexType>
      </xs:element>
      <xs:complexType name="DataType">
        <xs:sequence>
          <xs:element name="title" type="xs:string"/>
          <xs:element name="authorName" type="xs:string" maxOccurs="unbounded"/>
        </xs:sequence>
      </xs:complexType>
    </xs:schema>"#;

    #[test]
    fn parses_library_xsd() {
        let forest = parse_xsd("lib.xsd", LIB_XSD).unwrap();
        assert_eq!(forest.len(), 1);
        let t = &forest[0];
        assert_eq!(t.name_of(t.root().unwrap()), "lib");
        let title = t.find_by_name("title").unwrap();
        assert_eq!(t.absolute_path(title), "/lib/book/data/title");
        assert!(t.validate().is_ok());
        // lib, book, data, title, authorName, shelf, isbn, address = 8 nodes.
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn named_complex_type_reference_is_followed() {
        let forest = parse_xsd("lib.xsd", LIB_XSD).unwrap();
        let t = &forest[0];
        let data = t.find_by_name("data").unwrap();
        assert_eq!(t.children(data).len(), 2);
    }

    #[test]
    fn attribute_use_and_types() {
        let forest = parse_xsd("lib.xsd", LIB_XSD).unwrap();
        let t = &forest[0];
        let isbn = t.find_by_name("isbn").unwrap();
        let n = t.node(isbn).unwrap();
        assert_eq!(n.kind, NodeKind::Attribute);
        assert_eq!(n.datatype, Some(XsdType::Id));
        assert_eq!(n.cardinality, Cardinality::One);
    }

    #[test]
    fn min_max_occurs_to_cardinality() {
        let forest = parse_xsd("lib.xsd", LIB_XSD).unwrap();
        let t = &forest[0];
        let book = t.find_by_name("book").unwrap();
        assert_eq!(t.node(book).unwrap().cardinality, Cardinality::OneOrMore);
        let shelf = t.find_by_name("shelf").unwrap();
        assert_eq!(t.node(shelf).unwrap().cardinality, Cardinality::Optional);
        let author = t.find_by_name("authorName").unwrap();
        assert_eq!(t.node(author).unwrap().cardinality, Cardinality::OneOrMore);
    }

    #[test]
    fn multiple_global_elements_produce_forest() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="person"><xs:complexType><xs:sequence>
            <xs:element name="name" type="xs:string"/>
          </xs:sequence></xs:complexType></xs:element>
          <xs:element name="company"><xs:complexType><xs:sequence>
            <xs:element name="name" type="xs:string"/>
            <xs:element name="address" type="xs:string"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let forest = parse_xsd("multi.xsd", xsd).unwrap();
        assert_eq!(forest.len(), 2);
    }

    #[test]
    fn element_ref_resolves_to_global_element() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="order"><xs:complexType><xs:sequence>
            <xs:element ref="item" maxOccurs="unbounded"/>
          </xs:sequence></xs:complexType></xs:element>
          <xs:element name="item"><xs:complexType><xs:sequence>
            <xs:element name="sku" type="xs:string"/>
            <xs:element name="qty" type="xs:int"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let forest = parse_xsd("order.xsd", xsd).unwrap();
        // 'item' is referenced, so only 'order' is a root.
        assert_eq!(forest.len(), 1);
        let t = &forest[0];
        let sku = t.find_by_name("sku").unwrap();
        assert_eq!(t.absolute_path(sku), "/order/item/sku");
        let qty = t.find_by_name("qty").unwrap();
        assert_eq!(t.node(qty).unwrap().datatype, Some(XsdType::Int));
    }

    #[test]
    fn choice_children_are_optional() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="contact"><xs:complexType><xs:choice>
            <xs:element name="phone" type="xs:string"/>
            <xs:element name="email" type="xs:string"/>
          </xs:choice></xs:complexType></xs:element>
        </xs:schema>"#;
        let forest = parse_xsd("c.xsd", xsd).unwrap();
        let t = &forest[0];
        let phone = t.find_by_name("phone").unwrap();
        assert_eq!(t.node(phone).unwrap().cardinality, Cardinality::Optional);
    }

    #[test]
    fn extension_appends_base_content() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:complexType name="Base"><xs:sequence>
            <xs:element name="id" type="xs:int"/>
          </xs:sequence></xs:complexType>
          <xs:element name="thing"><xs:complexType><xs:complexContent>
            <xs:extension base="Base"><xs:sequence>
              <xs:element name="label" type="xs:string"/>
            </xs:sequence></xs:extension>
          </xs:complexContent></xs:complexType></xs:element>
        </xs:schema>"#;
        let forest = parse_xsd("e.xsd", xsd).unwrap();
        let t = &forest[0];
        assert!(t.find_by_name("id").is_some());
        assert!(t.find_by_name("label").is_some());
    }

    #[test]
    fn schema_without_elements_errors() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:complexType name="Orphan"><xs:sequence/></xs:complexType>
        </xs:schema>"#;
        assert!(matches!(
            parse_xsd("o.xsd", xsd),
            Err(SchemaError::EmptyDocument)
        ));
    }

    #[test]
    fn non_schema_document_errors() {
        assert!(parse_xsd("x", "<html><body/></html>").is_err());
    }

    #[test]
    fn mismatched_tags_error() {
        let xsd = "<xs:schema><xs:element name=\"a\"></xs:schema>";
        assert!(parse_xsd("bad.xsd", xsd).is_err());
    }
}
