//! A minimal, dependency-free XML tokenizer.
//!
//! Produces a stream of [`XmlEvent`]s (start tag with attributes, end tag, empty tag,
//! text, comments are skipped). It supports exactly what well-formed XSD documents
//! need: elements, attributes with single- or double-quoted values, comments,
//! processing instructions, CDATA and character data. It does not resolve entities
//! beyond the five predefined ones and does not validate.

use crate::error::{Result, SchemaError};

/// One event produced by the tokenizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="v" …>` — `self_closing` is true for `<name …/>`.
    StartElement {
        /// Qualified tag name as written (prefix preserved).
        name: String,
        /// Attribute `(name, value)` pairs in document order.
        attributes: Vec<(String, String)>,
        /// Whether the element closed itself (`/>`).
        self_closing: bool,
    },
    /// `</name>`.
    EndElement {
        /// Qualified tag name as written.
        name: String,
    },
    /// Character data between tags (whitespace-only text is skipped).
    Text(String),
}

/// Tokenize an XML document into events.
pub fn tokenize(input: &str) -> Result<Vec<XmlEvent>> {
    let bytes = input.as_bytes();
    let mut events = Vec::new();
    let mut i = 0usize;
    let n = bytes.len();

    while i < n {
        if bytes[i] == b'<' {
            if input[i..].starts_with("<!--") {
                // Comment.
                match input[i + 4..].find("-->") {
                    Some(end) => i = i + 4 + end + 3,
                    None => return Err(SchemaError::parse(i, "unterminated comment")),
                }
            } else if input[i..].starts_with("<![CDATA[") {
                match input[i + 9..].find("]]>") {
                    Some(end) => {
                        let text = &input[i + 9..i + 9 + end];
                        if !text.trim().is_empty() {
                            events.push(XmlEvent::Text(unescape(text)));
                        }
                        i = i + 9 + end + 3;
                    }
                    None => return Err(SchemaError::parse(i, "unterminated CDATA section")),
                }
            } else if input[i..].starts_with("<?") {
                match input[i + 2..].find("?>") {
                    Some(end) => i = i + 2 + end + 2,
                    None => {
                        return Err(SchemaError::parse(i, "unterminated processing instruction"))
                    }
                }
            } else if input[i..].starts_with("<!") {
                // DOCTYPE or other declaration: skip to matching '>', tracking nesting
                // of '[' … ']' for internal DTD subsets.
                let mut depth = 0i32;
                let mut j = i + 2;
                loop {
                    if j >= n {
                        return Err(SchemaError::parse(i, "unterminated declaration"));
                    }
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => depth -= 1,
                        b'>' if depth <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
            } else if input[i..].starts_with("</") {
                let close = input[i..]
                    .find('>')
                    .ok_or_else(|| SchemaError::parse(i, "unterminated end tag"))?;
                let name = input[i + 2..i + close].trim().to_string();
                if name.is_empty() {
                    return Err(SchemaError::parse(i, "empty end tag name"));
                }
                events.push(XmlEvent::EndElement { name });
                i += close + 1;
            } else {
                // Start tag.
                let (event, consumed) = parse_start_tag(&input[i..], i)?;
                events.push(event);
                i += consumed;
            }
        } else {
            // Text run until next '<'.
            let next = input[i..].find('<').map(|p| i + p).unwrap_or(n);
            let text = &input[i..next];
            if !text.trim().is_empty() {
                events.push(XmlEvent::Text(unescape(text.trim())));
            }
            i = next;
        }
    }
    Ok(events)
}

/// Parse one start tag beginning at `input[0] == '<'`; returns the event and the
/// number of bytes consumed.
fn parse_start_tag(input: &str, global_offset: usize) -> Result<(XmlEvent, usize)> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes[0], b'<');
    let mut i = 1usize;
    let n = bytes.len();

    // Tag name.
    let name_start = i;
    while i < n && !bytes[i].is_ascii_whitespace() && bytes[i] != b'>' && bytes[i] != b'/' {
        i += 1;
    }
    let name = input[name_start..i].to_string();
    if name.is_empty() {
        return Err(SchemaError::parse(global_offset, "empty start tag name"));
    }

    let mut attributes = Vec::new();
    loop {
        // Skip whitespace.
        while i < n && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= n {
            return Err(SchemaError::parse(global_offset, "unterminated start tag"));
        }
        if bytes[i] == b'>' {
            return Ok((
                XmlEvent::StartElement {
                    name,
                    attributes,
                    self_closing: false,
                },
                i + 1,
            ));
        }
        if bytes[i] == b'/' {
            // Expect '/>'.
            if i + 1 < n && bytes[i + 1] == b'>' {
                return Ok((
                    XmlEvent::StartElement {
                        name,
                        attributes,
                        self_closing: true,
                    },
                    i + 2,
                ));
            }
            return Err(SchemaError::parse(global_offset + i, "expected '/>'"));
        }
        // Attribute name.
        let attr_start = i;
        while i < n && bytes[i] != b'=' && !bytes[i].is_ascii_whitespace() && bytes[i] != b'>' {
            i += 1;
        }
        let attr_name = input[attr_start..i].to_string();
        while i < n && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= n || bytes[i] != b'=' {
            // Attribute without value (not standard XML but seen in the wild); record empty.
            attributes.push((attr_name, String::new()));
            continue;
        }
        i += 1; // consume '='
        while i < n && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= n || (bytes[i] != b'"' && bytes[i] != b'\'') {
            return Err(SchemaError::parse(
                global_offset + i.min(n),
                "expected quoted attribute value",
            ));
        }
        let quote = bytes[i];
        i += 1;
        let val_start = i;
        while i < n && bytes[i] != quote {
            i += 1;
        }
        if i >= n {
            return Err(SchemaError::parse(
                global_offset + val_start,
                "unterminated attribute value",
            ));
        }
        attributes.push((attr_name, unescape(&input[val_start..i])));
        i += 1; // closing quote
    }
}

/// Replace the five predefined XML entities.
fn unescape(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

/// Strip a namespace prefix from a qualified name (`xs:element` → `element`).
pub fn local_name(qname: &str) -> &str {
    qname.rsplit(':').next().unwrap_or(qname)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_simple_document() {
        let events = tokenize("<a x=\"1\"><b/>text</a>").unwrap();
        assert_eq!(
            events,
            vec![
                XmlEvent::StartElement {
                    name: "a".into(),
                    attributes: vec![("x".into(), "1".into())],
                    self_closing: false
                },
                XmlEvent::StartElement {
                    name: "b".into(),
                    attributes: vec![],
                    self_closing: true
                },
                XmlEvent::Text("text".into()),
                XmlEvent::EndElement { name: "a".into() },
            ]
        );
    }

    #[test]
    fn comments_pis_and_doctype_are_skipped() {
        let doc = "<?xml version=\"1.0\"?><!-- hi --><!DOCTYPE r [ <!ELEMENT r EMPTY> ]><r/>";
        let events = tokenize(doc).unwrap();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], XmlEvent::StartElement { name, .. } if name == "r"));
    }

    #[test]
    fn attributes_single_and_double_quoted() {
        let events = tokenize("<e a='x' b=\"y\" />").unwrap();
        match &events[0] {
            XmlEvent::StartElement {
                attributes,
                self_closing,
                ..
            } => {
                assert_eq!(
                    attributes,
                    &vec![
                        ("a".to_string(), "x".to_string()),
                        ("b".to_string(), "y".to_string())
                    ]
                );
                assert!(self_closing);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn entities_are_unescaped() {
        let events = tokenize("<e a=\"a &amp; b\">&lt;x&gt;</e>").unwrap();
        match &events[0] {
            XmlEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0].1, "a & b");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(events[1], XmlEvent::Text("<x>".into()));
    }

    #[test]
    fn cdata_becomes_text() {
        let events = tokenize("<e><![CDATA[a < b]]></e>").unwrap();
        assert_eq!(events[1], XmlEvent::Text("a < b".into()));
    }

    #[test]
    fn errors_are_reported_with_offsets() {
        assert!(tokenize("<a").is_err());
        assert!(tokenize("<a b=>").is_err());
        assert!(tokenize("<!-- never closed").is_err());
        assert!(tokenize("<a b='x></a>").is_err());
    }

    #[test]
    fn local_name_strips_prefix() {
        assert_eq!(local_name("xs:element"), "element");
        assert_eq!(local_name("element"), "element");
        assert_eq!(local_name("a:b:c"), "c");
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let events = tokenize("<a>\n   \t</a>").unwrap();
        assert_eq!(events.len(), 2);
    }
}
