//! Parsers turning schema documents into [`crate::SchemaTree`] forests.
//!
//! The Bellflower repository in the paper was assembled from "1700 non-recursive DTDs
//! and XML schemas" crawled from the web. To be able to ingest such a corpus, this
//! module provides hand-written, dependency-free parsers for a pragmatic subset of:
//!
//! * **DTD** ([`dtd`]) — `<!ELEMENT …>` content models and `<!ATTLIST …>` declarations,
//! * **XSD** ([`xsd`]) — global/local `xs:element`, `xs:complexType`, `xs:sequence` /
//!   `xs:choice` / `xs:all`, `xs:attribute` and named-type references,
//! * the minimal XML tokenizer ([`xml`]) the XSD parser is built on.
//!
//! The parsers aim to recover the *tree shape and names* of the schemas (which is all
//! the matching algorithms consume), not to be validating parsers. Recursive element
//! definitions are expanded up to a small depth limit and then cut, matching the
//! paper's use of *non-recursive* schemas. One document can produce several trees
//! ("one schema can have multiple roots, each represented with one tree").

pub mod dtd;
pub mod xml;
pub mod xsd;

use crate::error::Result;
use crate::tree::SchemaTree;

/// Maximum expansion depth for (accidentally) recursive definitions.
pub const MAX_EXPANSION_DEPTH: usize = 24;

/// The schema dialect of a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dialect {
    /// A Document Type Definition.
    Dtd,
    /// A W3C XML Schema document.
    Xsd,
}

/// Guess the dialect of a schema document from its content.
pub fn sniff_dialect(input: &str) -> Dialect {
    let head: String = input.chars().take(2048).collect();
    if head.contains("<!ELEMENT") || head.contains("<!ATTLIST") {
        Dialect::Dtd
    } else if head.contains(":schema") || head.contains("<schema") {
        Dialect::Xsd
    } else {
        // Fall back on file-extension-free heuristics: XSD documents are XML.
        if head.trim_start().starts_with('<') && !head.contains("<!ELEMENT") {
            Dialect::Xsd
        } else {
            Dialect::Dtd
        }
    }
}

/// Parse a schema document of unknown dialect into a forest of trees.
pub fn parse_schema(name: &str, input: &str) -> Result<Vec<SchemaTree>> {
    match sniff_dialect(input) {
        Dialect::Dtd => dtd::parse_dtd(name, input),
        Dialect::Xsd => xsd::parse_xsd(name, input),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniff_recognises_dtd() {
        assert_eq!(
            sniff_dialect("<!ELEMENT book (title, author)>"),
            Dialect::Dtd
        );
    }

    #[test]
    fn sniff_recognises_xsd() {
        assert_eq!(
            sniff_dialect("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\"/>"),
            Dialect::Xsd
        );
        assert_eq!(
            sniff_dialect("<schema><element name=\"a\"/></schema>"),
            Dialect::Xsd
        );
    }

    #[test]
    fn parse_schema_dispatches_on_dialect() {
        let dtd = "<!ELEMENT book (title)> <!ELEMENT title (#PCDATA)>";
        let forest = parse_schema("books.dtd", dtd).unwrap();
        assert_eq!(forest.len(), 1);
        assert!(forest[0].find_by_name("title").is_some());

        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
            <xs:element name="book">
              <xs:complexType><xs:sequence>
                <xs:element name="title" type="xs:string"/>
              </xs:sequence></xs:complexType>
            </xs:element>
        </xs:schema>"#;
        let forest = parse_schema("books.xsd", xsd).unwrap();
        assert_eq!(forest.len(), 1);
        assert!(forest[0].find_by_name("title").is_some());
    }
}
