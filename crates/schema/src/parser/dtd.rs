//! Parser for a pragmatic subset of DTDs.
//!
//! Supports `<!ELEMENT name (content-model)>` with sequences, choices, nesting,
//! occurrence indicators (`?`, `*`, `+`), `#PCDATA`, `EMPTY` and `ANY`, plus
//! `<!ATTLIST name attr TYPE default>` declarations. Entities and conditional sections
//! are ignored. Parameter entities are textually expanded when declared inline with
//! `<!ENTITY % name "replacement">`.
//!
//! Trees are produced by expanding the element declarations starting from every *root
//! candidate*: an element that is declared but never referenced by another element's
//! content model. Recursive models are cut at [`super::MAX_EXPANSION_DEPTH`].

use super::MAX_EXPANSION_DEPTH;
use crate::error::{Result, SchemaError};
use crate::node::{Cardinality, SchemaNode};
use crate::tree::SchemaTree;
use crate::XsdType;
use std::collections::{BTreeMap, BTreeSet};

/// One parsed `<!ELEMENT>` declaration.
#[derive(Debug, Clone, PartialEq)]
struct ElementDecl {
    name: String,
    children: Vec<ChildRef>,
    /// Whether the content model allows character data (`#PCDATA`, `ANY`).
    has_text: bool,
}

/// A child reference inside a content model, with its effective cardinality.
#[derive(Debug, Clone, PartialEq)]
struct ChildRef {
    name: String,
    cardinality: Cardinality,
}

/// One parsed `<!ATTLIST>` attribute.
#[derive(Debug, Clone, PartialEq)]
struct AttrDecl {
    element: String,
    name: String,
    datatype: XsdType,
    required: bool,
}

/// Parse a DTD document into a forest of schema trees (one per root candidate).
pub fn parse_dtd(schema_name: &str, input: &str) -> Result<Vec<SchemaTree>> {
    let expanded = expand_parameter_entities(input);
    let (elements, attributes) = parse_declarations(&expanded)?;
    if elements.is_empty() {
        return Err(SchemaError::EmptyDocument);
    }

    // Attribute index by owning element.
    let mut attrs_by_element: BTreeMap<&str, Vec<&AttrDecl>> = BTreeMap::new();
    for a in &attributes {
        attrs_by_element
            .entry(a.element.as_str())
            .or_default()
            .push(a);
    }

    // Root candidates: declared elements never referenced as a child.
    let declared: BTreeSet<&str> = elements.keys().map(|s| s.as_str()).collect();
    let mut referenced: BTreeSet<&str> = BTreeSet::new();
    for decl in elements.values() {
        for c in &decl.children {
            referenced.insert(c.name.as_str());
        }
    }
    let mut roots: Vec<&str> = declared.difference(&referenced).copied().collect();
    if roots.is_empty() {
        // Fully cyclic DTD: fall back on the first declared element.
        roots.push(elements.keys().next().unwrap().as_str());
    }

    let mut forest = Vec::with_capacity(roots.len());
    for (i, root) in roots.iter().enumerate() {
        let tree_name = if roots.len() == 1 {
            schema_name.to_string()
        } else {
            format!("{schema_name}#{i}")
        };
        let mut tree = SchemaTree::new(tree_name);
        let root_id = tree.add_root(SchemaNode::element(root.to_string()))?;
        expand_element(&mut tree, root_id, root, &elements, &attrs_by_element, 0)?;
        forest.push(tree);
    }
    Ok(forest)
}

/// Recursively expand an element declaration into the tree.
fn expand_element(
    tree: &mut SchemaTree,
    parent: crate::NodeId,
    name: &str,
    elements: &BTreeMap<String, ElementDecl>,
    attrs: &BTreeMap<&str, Vec<&AttrDecl>>,
    depth: usize,
) -> Result<()> {
    if depth > MAX_EXPANSION_DEPTH {
        return Err(SchemaError::RecursionLimit { name: name.into() });
    }
    // Attributes first (document-order convention: attributes precede children).
    if let Some(list) = attrs.get(name) {
        for a in list {
            let mut node = SchemaNode::attribute(a.name.clone()).with_datatype(a.datatype);
            node.cardinality = if a.required {
                Cardinality::One
            } else {
                Cardinality::Optional
            };
            tree.add_child(parent, node)?;
        }
    }
    if let Some(decl) = elements.get(name) {
        for child in &decl.children {
            let mut node =
                SchemaNode::element(child.name.clone()).with_cardinality(child.cardinality);
            // Leaf-with-text elements get a string datatype.
            let grandchildren_known = elements.contains_key(&child.name);
            if !grandchildren_known {
                node.datatype = Some(XsdType::String);
            }
            let child_id = tree.add_child(parent, node)?;
            if grandchildren_known {
                // Cut recursion instead of erroring for self-referencing models: a
                // schema that mentions itself deeper than the limit is truncated.
                if depth + 1 > MAX_EXPANSION_DEPTH {
                    continue;
                }
                // Avoid trivially infinite expansion: if the child equals any ancestor
                // name on the current expansion path we still expand, but the depth
                // limit bounds it. (The paper restricts itself to non-recursive
                // schemas; recursive inputs are handled gracefully rather than exactly.)
                expand_element(tree, child_id, &child.name, elements, attrs, depth + 1)?;
                // Mark text-bearing interior nodes.
                if elements
                    .get(&child.name)
                    .map(|d| d.has_text)
                    .unwrap_or(false)
                    && tree.children(child_id).is_empty()
                {
                    if let Some(n) = tree.node_mut(child_id) {
                        n.datatype = Some(XsdType::String);
                    }
                }
            }
        }
        if decl.children.is_empty() && decl.has_text {
            if let Some(n) = tree.node_mut(parent) {
                if n.datatype.is_none() {
                    n.datatype = Some(XsdType::String);
                }
            }
        }
    }
    Ok(())
}

/// Expand inline parameter entities (`<!ENTITY % x "…"> … %x;`).
fn expand_parameter_entities(input: &str) -> String {
    let mut entities: Vec<(String, String)> = Vec::new();
    let mut rest = input;
    while let Some(pos) = rest.find("<!ENTITY") {
        let after = &rest[pos + 8..];
        if let Some(end) = after.find('>') {
            let decl = &after[..end];
            let decl = decl.trim();
            if let Some(stripped) = decl.strip_prefix('%') {
                let mut parts = stripped.trim().splitn(2, char::is_whitespace);
                if let (Some(name), Some(val)) = (parts.next(), parts.next()) {
                    let val = val.trim().trim_matches('"').trim_matches('\'');
                    entities.push((name.trim().to_string(), val.to_string()));
                }
            }
            rest = &after[end + 1..];
        } else {
            break;
        }
    }
    let mut out = input.to_string();
    // Iterate a few times so nested entities resolve.
    for _ in 0..4 {
        let mut changed = false;
        for (name, val) in &entities {
            let pat = format!("%{name};");
            if out.contains(&pat) {
                out = out.replace(&pat, val);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    out
}

/// Parse all `<!ELEMENT>` and `<!ATTLIST>` declarations.
fn parse_declarations(input: &str) -> Result<(BTreeMap<String, ElementDecl>, Vec<AttrDecl>)> {
    let mut elements = BTreeMap::new();
    let mut attributes = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if input[i..].starts_with("<!ELEMENT") {
            let end = find_decl_end(input, i)?;
            let body = &input[i + "<!ELEMENT".len()..end];
            if let Some(decl) = parse_element_decl(body) {
                elements.insert(decl.name.clone(), decl);
            }
            i = end + 1;
        } else if input[i..].starts_with("<!ATTLIST") {
            let end = find_decl_end(input, i)?;
            let body = &input[i + "<!ATTLIST".len()..end];
            attributes.extend(parse_attlist_decl(body));
            i = end + 1;
        } else if input[i..].starts_with("<!--") {
            match input[i + 4..].find("-->") {
                Some(e) => i = i + 4 + e + 3,
                None => return Err(SchemaError::parse(i, "unterminated comment")),
            }
        } else {
            i += 1;
        }
    }
    Ok((elements, attributes))
}

/// Find the closing `>` of a declaration starting at `start`.
fn find_decl_end(input: &str, start: usize) -> Result<usize> {
    let mut depth = 0i32;
    for (off, c) in input[start..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            '>' if depth <= 0 => return Ok(start + off),
            _ => {}
        }
    }
    Err(SchemaError::parse(start, "unterminated declaration"))
}

/// Parse the body of an `<!ELEMENT name model>` declaration.
fn parse_element_decl(body: &str) -> Option<ElementDecl> {
    let body = body.trim();
    let mut parts = body.splitn(2, char::is_whitespace);
    let name = parts.next()?.trim().to_string();
    if name.is_empty() {
        return None;
    }
    let model = parts.next().unwrap_or("EMPTY").trim();
    let mut children = Vec::new();
    let mut has_text = false;
    let upper = model.to_ascii_uppercase();
    if upper.starts_with("EMPTY") {
        // no children
    } else if upper.starts_with("ANY") {
        has_text = true;
    } else {
        // Content model: collect identifiers and their trailing occurrence indicators.
        has_text = model.contains("#PCDATA");
        let mut seen = BTreeSet::new();
        let mut ident = String::new();
        let chars: Vec<char> = model.chars().collect();
        let mut k = 0usize;
        while k < chars.len() {
            let c = chars[k];
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':' {
                ident.push(c);
            } else {
                if !ident.is_empty() && !ident.starts_with('#') {
                    // Occurrence indicator immediately after the identifier.
                    let card = match c {
                        '?' => Cardinality::Optional,
                        '*' => Cardinality::ZeroOrMore,
                        '+' => Cardinality::OneOrMore,
                        _ => Cardinality::One,
                    };
                    if seen.insert(ident.clone()) {
                        children.push(ChildRef {
                            name: ident.clone(),
                            cardinality: card,
                        });
                    }
                }
                ident.clear();
                if c == '#' {
                    ident.push('#');
                }
            }
            k += 1;
        }
        if !ident.is_empty() && !ident.starts_with('#') && seen.insert(ident.clone()) {
            children.push(ChildRef {
                name: ident,
                cardinality: Cardinality::One,
            });
        }
    }
    Some(ElementDecl {
        name,
        children,
        has_text,
    })
}

/// Parse the body of an `<!ATTLIST element attr TYPE default …>` declaration.
fn parse_attlist_decl(body: &str) -> Vec<AttrDecl> {
    let mut out = Vec::new();
    let tokens: Vec<&str> = body.split_whitespace().collect();
    if tokens.is_empty() {
        return out;
    }
    let element = tokens[0].to_string();
    let mut i = 1usize;
    while i < tokens.len() {
        let name = tokens[i].to_string();
        let ty = tokens.get(i + 1).copied().unwrap_or("CDATA");
        // Enumerated types look like "(a|b|c)": possibly split across tokens; collapse.
        let (datatype, mut consumed) = if ty.starts_with('(') {
            // Skip until token containing ')'.
            let mut j = i + 1;
            while j < tokens.len() && !tokens[j].contains(')') {
                j += 1;
            }
            (XsdType::Enumeration, j - i)
        } else {
            (ty.parse().unwrap_or(XsdType::String), 1)
        };
        let default = tokens.get(i + 1 + consumed).copied().unwrap_or("#IMPLIED");
        let required = default.eq_ignore_ascii_case("#REQUIRED");
        // #FIXED is followed by a value token.
        if default.eq_ignore_ascii_case("#FIXED") {
            consumed += 1;
        }
        out.push(AttrDecl {
            element: element.clone(),
            name,
            datatype,
            required,
        });
        i += 2 + consumed;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    const BOOK_DTD: &str = r#"
        <!-- a small library schema -->
        <!ELEMENT lib (book*, address)>
        <!ELEMENT book (data, shelf?)>
        <!ELEMENT data (title, authorName+)>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT authorName (#PCDATA)>
        <!ELEMENT shelf (#PCDATA)>
        <!ELEMENT address (#PCDATA)>
        <!ATTLIST book isbn CDATA #REQUIRED year CDATA #IMPLIED>
    "#;

    #[test]
    fn parses_paper_like_library_dtd() {
        let forest = parse_dtd("lib.dtd", BOOK_DTD).unwrap();
        assert_eq!(forest.len(), 1);
        let t = &forest[0];
        assert_eq!(t.name_of(t.root().unwrap()), "lib");
        // lib + book + isbn + year + data + title + authorName + shelf + address = 9
        assert_eq!(t.len(), 9);
        let title = t.find_by_name("title").unwrap();
        assert_eq!(t.absolute_path(title), "/lib/book/data/title");
        assert!(t.validate().is_ok());
    }

    #[test]
    fn attributes_become_attribute_nodes_with_types() {
        let forest = parse_dtd("lib.dtd", BOOK_DTD).unwrap();
        let t = &forest[0];
        let isbn = t.find_by_name("isbn").unwrap();
        let node = t.node(isbn).unwrap();
        assert_eq!(node.kind, NodeKind::Attribute);
        assert_eq!(node.datatype, Some(XsdType::String));
        assert_eq!(node.cardinality, Cardinality::One); // #REQUIRED
        let year = t.find_by_name("year").unwrap();
        assert_eq!(t.node(year).unwrap().cardinality, Cardinality::Optional);
    }

    #[test]
    fn cardinalities_from_occurrence_indicators() {
        let forest = parse_dtd("lib.dtd", BOOK_DTD).unwrap();
        let t = &forest[0];
        let book = t.find_by_name("book").unwrap();
        assert_eq!(t.node(book).unwrap().cardinality, Cardinality::ZeroOrMore);
        let shelf = t.find_by_name("shelf").unwrap();
        assert_eq!(t.node(shelf).unwrap().cardinality, Cardinality::Optional);
        let author = t.find_by_name("authorName").unwrap();
        assert_eq!(t.node(author).unwrap().cardinality, Cardinality::OneOrMore);
    }

    #[test]
    fn multiple_roots_produce_a_forest() {
        let dtd = r#"
            <!ELEMENT person (name, email)>
            <!ELEMENT name (#PCDATA)>
            <!ELEMENT email (#PCDATA)>
            <!ELEMENT company (name, address)>
            <!ELEMENT address (#PCDATA)>
        "#;
        let forest = parse_dtd("multi.dtd", dtd).unwrap();
        assert_eq!(forest.len(), 2);
        let roots: Vec<&str> = forest
            .iter()
            .map(|t| t.name_of(t.root().unwrap()))
            .collect();
        assert!(roots.contains(&"person"));
        assert!(roots.contains(&"company"));
        // Tree names disambiguate roots.
        assert!(forest[0].name().starts_with("multi.dtd#"));
    }

    #[test]
    fn recursive_dtd_is_truncated_not_infinite() {
        let dtd = r#"
            <!ELEMENT part (name, part*)>
            <!ELEMENT name (#PCDATA)>
        "#;
        let forest = parse_dtd("rec.dtd", dtd).unwrap();
        assert_eq!(forest.len(), 1);
        // Should terminate and be bounded.
        assert!(forest[0].len() < 100);
        assert!(forest[0].max_depth() as usize <= MAX_EXPANSION_DEPTH + 1);
    }

    #[test]
    fn empty_and_any_content_models() {
        let dtd = "<!ELEMENT img EMPTY> <!ELEMENT note ANY> <!ELEMENT root (img, note)>";
        let forest = parse_dtd("x.dtd", dtd).unwrap();
        let t = &forest[0];
        assert_eq!(t.name_of(t.root().unwrap()), "root");
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn parameter_entities_expand() {
        let dtd = r#"
            <!ENTITY % common "name, email">
            <!ELEMENT person (%common;)>
            <!ELEMENT name (#PCDATA)>
            <!ELEMENT email (#PCDATA)>
        "#;
        let forest = parse_dtd("pe.dtd", dtd).unwrap();
        let t = &forest[0];
        assert!(t.find_by_name("name").is_some());
        assert!(t.find_by_name("email").is_some());
    }

    #[test]
    fn document_without_declarations_errors() {
        assert_eq!(parse_dtd("x", "just text"), Err(SchemaError::EmptyDocument));
    }

    #[test]
    fn enumerated_attribute_types() {
        let dtd = r#"
            <!ELEMENT task EMPTY>
            <!ATTLIST task status (open|closed) "open" owner CDATA #IMPLIED>
        "#;
        let forest = parse_dtd("t.dtd", dtd).unwrap();
        let t = &forest[0];
        let status = t.find_by_name("status").unwrap();
        assert_eq!(t.node(status).unwrap().datatype, Some(XsdType::Enumeration));
        assert!(t.find_by_name("owner").is_some());
    }
}
