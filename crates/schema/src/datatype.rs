//! XSD built-in datatypes and a datatype compatibility measure.
//!
//! COMA-style matchers combine name similarity with datatype similarity; the paper's
//! Bellflower system uses only name similarity, but the datatype matcher is part of
//! the generic architecture (Fig. 2 step ②) and is exercised by the extended element
//! matchers in `xsm-matcher`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A pragmatic subset of the XML Schema built-in simple types, plus the coarse
/// categories DTDs can express (`CDATA`, `ID`, `IDREF`, enumerations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum XsdType {
    String,
    NormalizedString,
    Token,
    Boolean,
    Decimal,
    Integer,
    NonNegativeInteger,
    PositiveInteger,
    Long,
    Int,
    Short,
    Byte,
    UnsignedInt,
    Float,
    Double,
    Date,
    Time,
    DateTime,
    Duration,
    GYear,
    GMonth,
    GDay,
    AnyUri,
    QName,
    Id,
    IdRef,
    Enumeration,
    Base64Binary,
    HexBinary,
    AnyType,
}

/// Broad categories used for cross-type compatibility scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TypeCategory {
    /// Free text and tokens.
    Text,
    /// Whole numbers.
    Integer,
    /// Real numbers.
    Real,
    /// Truth values.
    Boolean,
    /// Dates, times and durations.
    Temporal,
    /// References, identifiers, URIs and QNames.
    Reference,
    /// Binary blobs.
    Binary,
    /// The wildcard `anyType`.
    Any,
}

impl XsdType {
    /// The category the type belongs to.
    pub fn category(self) -> TypeCategory {
        use XsdType::*;
        match self {
            String | NormalizedString | Token | Enumeration => TypeCategory::Text,
            Integer | NonNegativeInteger | PositiveInteger | Long | Int | Short | Byte
            | UnsignedInt => TypeCategory::Integer,
            Decimal | Float | Double => TypeCategory::Real,
            Boolean => TypeCategory::Boolean,
            Date | Time | DateTime | Duration | GYear | GMonth | GDay => TypeCategory::Temporal,
            AnyUri | QName | Id | IdRef => TypeCategory::Reference,
            Base64Binary | HexBinary => TypeCategory::Binary,
            AnyType => TypeCategory::Any,
        }
    }

    /// The canonical `xs:` local name of the type.
    pub fn xsd_name(self) -> &'static str {
        use XsdType::*;
        match self {
            String => "string",
            NormalizedString => "normalizedString",
            Token => "token",
            Boolean => "boolean",
            Decimal => "decimal",
            Integer => "integer",
            NonNegativeInteger => "nonNegativeInteger",
            PositiveInteger => "positiveInteger",
            Long => "long",
            Int => "int",
            Short => "short",
            Byte => "byte",
            UnsignedInt => "unsignedInt",
            Float => "float",
            Double => "double",
            Date => "date",
            Time => "time",
            DateTime => "dateTime",
            Duration => "duration",
            GYear => "gYear",
            GMonth => "gMonth",
            GDay => "gDay",
            AnyUri => "anyURI",
            QName => "QName",
            Id => "ID",
            IdRef => "IDREF",
            Enumeration => "enumeration",
            Base64Binary => "base64Binary",
            HexBinary => "hexBinary",
            AnyType => "anyType",
        }
    }

    /// Datatype compatibility in `[0,1]`.
    ///
    /// 1.0 for identical types, 0.9 within the same category for numeric widening,
    /// 0.7 for same category otherwise, 0.5 when either side is text or `anyType`
    /// (everything serialises to text in XML), 0.1 across incompatible categories.
    pub fn compatibility(self, other: XsdType) -> f64 {
        if self == other {
            return 1.0;
        }
        let (a, b) = (self.category(), other.category());
        if a == TypeCategory::Any || b == TypeCategory::Any {
            return 0.5;
        }
        if a == b {
            return match a {
                TypeCategory::Integer | TypeCategory::Real | TypeCategory::Temporal => 0.9,
                _ => 0.7,
            };
        }
        // Integer and Real are mutually promotable.
        if matches!(
            (a, b),
            (TypeCategory::Integer, TypeCategory::Real)
                | (TypeCategory::Real, TypeCategory::Integer)
        ) {
            return 0.8;
        }
        if a == TypeCategory::Text || b == TypeCategory::Text {
            return 0.5;
        }
        0.1
    }

    /// All type variants (useful for the synthetic generator and property tests).
    pub fn all() -> &'static [XsdType] {
        use XsdType::*;
        &[
            String,
            NormalizedString,
            Token,
            Boolean,
            Decimal,
            Integer,
            NonNegativeInteger,
            PositiveInteger,
            Long,
            Int,
            Short,
            Byte,
            UnsignedInt,
            Float,
            Double,
            Date,
            Time,
            DateTime,
            Duration,
            GYear,
            GMonth,
            GDay,
            AnyUri,
            QName,
            Id,
            IdRef,
            Enumeration,
            Base64Binary,
            HexBinary,
            AnyType,
        ]
    }
}

impl fmt::Display for XsdType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xs:{}", self.xsd_name())
    }
}

impl FromStr for XsdType {
    type Err = ();

    /// Parse an XSD type name. Accepts an optional namespace prefix (`xs:`, `xsd:`,
    /// any prefix really) and is case-insensitive, because real-world schemas are
    /// sloppy. DTD attribute types (`CDATA`, `ID`, `IDREF`, `NMTOKEN`) map onto the
    /// closest XSD equivalent. Unknown names map to an error, which callers usually
    /// turn into [`XsdType::AnyType`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let local = s.rsplit(':').next().unwrap_or(s).trim();
        let lower = local.to_ascii_lowercase();
        use XsdType::*;
        Ok(match lower.as_str() {
            "string" | "cdata" => String,
            "normalizedstring" => NormalizedString,
            "token" | "nmtoken" | "nmtokens" => Token,
            "boolean" | "bool" => Boolean,
            "decimal" => Decimal,
            "integer" | "nonpositiveinteger" | "negativeinteger" => Integer,
            "nonnegativeinteger" | "unsignedlong" | "unsignedshort" | "unsignedbyte" => {
                NonNegativeInteger
            }
            "positiveinteger" => PositiveInteger,
            "long" => Long,
            "int" => Int,
            "short" => Short,
            "byte" => Byte,
            "unsignedint" => UnsignedInt,
            "float" => Float,
            "double" => Double,
            "date" => Date,
            "time" => Time,
            "datetime" => DateTime,
            "duration" => Duration,
            "gyear" | "gyearmonth" => GYear,
            "gmonth" | "gmonthday" => GMonth,
            "gday" => GDay,
            "anyuri" => AnyUri,
            "qname" => QName,
            "id" => Id,
            "idref" | "idrefs" | "entity" | "entities" => IdRef,
            "enumeration" | "notation" => Enumeration,
            "base64binary" => Base64Binary,
            "hexbinary" => HexBinary,
            "anytype" | "anysimpletype" => AnyType,
            _ => return Err(()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_types_are_fully_compatible() {
        for &t in XsdType::all() {
            assert_eq!(t.compatibility(t), 1.0, "{t}");
        }
    }

    #[test]
    fn compatibility_is_symmetric() {
        for &a in XsdType::all() {
            for &b in XsdType::all() {
                assert_eq!(a.compatibility(b), b.compatibility(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn compatibility_within_bounds() {
        for &a in XsdType::all() {
            for &b in XsdType::all() {
                let c = a.compatibility(b);
                assert!((0.0..=1.0).contains(&c));
                assert!(c >= 0.1, "compatibility never fully zero: {a} vs {b} = {c}");
            }
        }
    }

    #[test]
    fn numeric_widening_scores_high() {
        assert_eq!(XsdType::Int.compatibility(XsdType::Long), 0.9);
        assert_eq!(XsdType::Int.compatibility(XsdType::Double), 0.8);
        assert_eq!(XsdType::Date.compatibility(XsdType::DateTime), 0.9);
        assert!(XsdType::Boolean.compatibility(XsdType::DateTime) < 0.5);
    }

    #[test]
    fn text_is_a_universal_sink() {
        assert_eq!(XsdType::String.compatibility(XsdType::Int), 0.5);
        assert_eq!(XsdType::Token.compatibility(XsdType::Date), 0.5);
        assert_eq!(XsdType::AnyType.compatibility(XsdType::HexBinary), 0.5);
    }

    #[test]
    fn parse_with_and_without_prefix() {
        assert_eq!("xs:string".parse::<XsdType>().unwrap(), XsdType::String);
        assert_eq!(
            "xsd:dateTime".parse::<XsdType>().unwrap(),
            XsdType::DateTime
        );
        assert_eq!("integer".parse::<XsdType>().unwrap(), XsdType::Integer);
        assert_eq!("CDATA".parse::<XsdType>().unwrap(), XsdType::String);
        assert_eq!("IDREF".parse::<XsdType>().unwrap(), XsdType::IdRef);
        assert!("notatype".parse::<XsdType>().is_err());
    }

    #[test]
    fn display_uses_xs_prefix() {
        assert_eq!(XsdType::PositiveInteger.to_string(), "xs:positiveInteger");
        assert_eq!(XsdType::AnyUri.to_string(), "xs:anyURI");
    }

    #[test]
    fn categories_cover_expected_members() {
        assert_eq!(XsdType::Token.category(), TypeCategory::Text);
        assert_eq!(XsdType::UnsignedInt.category(), TypeCategory::Integer);
        assert_eq!(XsdType::Double.category(), TypeCategory::Real);
        assert_eq!(XsdType::GDay.category(), TypeCategory::Temporal);
        assert_eq!(XsdType::Id.category(), TypeCategory::Reference);
        assert_eq!(XsdType::HexBinary.category(), TypeCategory::Binary);
        assert_eq!(XsdType::AnyType.category(), TypeCategory::Any);
    }
}
