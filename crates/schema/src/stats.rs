//! Descriptive statistics over schema trees and forests.
//!
//! Used to characterise generated repositories (so EXPERIMENTS.md can show that a
//! synthetic corpus has the same shape as the paper's crawled corpus) and by tests.

use crate::node::NodeKind;
use crate::tree::SchemaTree;
use serde::{Deserialize, Serialize};

/// Summary statistics of one schema tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Total nodes (elements + attributes).
    pub node_count: usize,
    /// Element nodes.
    pub element_count: usize,
    /// Attribute nodes.
    pub attribute_count: usize,
    /// Leaf nodes.
    pub leaf_count: usize,
    /// Maximum depth (root = 0).
    pub max_depth: u32,
    /// Average depth over all nodes.
    pub avg_depth: f64,
    /// Average number of children over internal (non-leaf) nodes.
    pub avg_fanout: f64,
    /// Number of distinct node names.
    pub distinct_names: usize,
}

impl TreeStats {
    /// Compute statistics for one tree.
    pub fn of(tree: &SchemaTree) -> Self {
        let node_count = tree.len();
        let mut element_count = 0usize;
        let mut attribute_count = 0usize;
        let mut leaf_count = 0usize;
        let mut depth_sum = 0u64;
        let mut internal = 0usize;
        let mut fanout_sum = 0u64;
        let mut names = std::collections::BTreeSet::new();
        for (id, node) in tree.nodes() {
            match node.kind {
                NodeKind::Element => element_count += 1,
                NodeKind::Attribute => attribute_count += 1,
            }
            if tree.is_leaf(id) {
                leaf_count += 1;
            } else {
                internal += 1;
                fanout_sum += tree.children(id).len() as u64;
            }
            depth_sum += tree.depth(id) as u64;
            names.insert(node.name.to_ascii_lowercase());
        }
        TreeStats {
            node_count,
            element_count,
            attribute_count,
            leaf_count,
            max_depth: tree.max_depth(),
            avg_depth: if node_count == 0 {
                0.0
            } else {
                depth_sum as f64 / node_count as f64
            },
            avg_fanout: if internal == 0 {
                0.0
            } else {
                fanout_sum as f64 / internal as f64
            },
            distinct_names: names.len(),
        }
    }
}

/// Aggregate statistics over a forest of trees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestStats {
    /// Number of trees.
    pub tree_count: usize,
    /// Total node count over all trees.
    pub total_nodes: usize,
    /// Smallest tree size.
    pub min_tree_size: usize,
    /// Largest tree size.
    pub max_tree_size: usize,
    /// Mean tree size.
    pub avg_tree_size: f64,
    /// Mean of the per-tree maximum depths.
    pub avg_max_depth: f64,
    /// Number of distinct names across the forest.
    pub distinct_names: usize,
}

impl ForestStats {
    /// Compute statistics for a forest.
    pub fn of<'a>(trees: impl IntoIterator<Item = &'a SchemaTree>) -> Self {
        let mut tree_count = 0usize;
        let mut total_nodes = 0usize;
        let mut min_tree_size = usize::MAX;
        let mut max_tree_size = 0usize;
        let mut depth_sum = 0f64;
        let mut names = std::collections::BTreeSet::new();
        for t in trees {
            tree_count += 1;
            let n = t.len();
            total_nodes += n;
            min_tree_size = min_tree_size.min(n);
            max_tree_size = max_tree_size.max(n);
            depth_sum += t.max_depth() as f64;
            for (_, node) in t.nodes() {
                names.insert(node.name.to_ascii_lowercase());
            }
        }
        ForestStats {
            tree_count,
            total_nodes,
            min_tree_size: if tree_count == 0 { 0 } else { min_tree_size },
            max_tree_size,
            avg_tree_size: if tree_count == 0 {
                0.0
            } else {
                total_nodes as f64 / tree_count as f64
            },
            avg_max_depth: if tree_count == 0 {
                0.0
            } else {
                depth_sum / tree_count as f64
            },
            distinct_names: names.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{paper_personal_schema, paper_repository_fragment};

    #[test]
    fn tree_stats_of_paper_fragment() {
        let t = paper_repository_fragment();
        let s = TreeStats::of(&t);
        assert_eq!(s.node_count, 7);
        assert_eq!(s.element_count, 7);
        assert_eq!(s.attribute_count, 0);
        assert_eq!(s.leaf_count, 4);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.distinct_names, 7);
        assert!(s.avg_depth > 0.0 && s.avg_depth < 3.0);
        assert!(s.avg_fanout >= 1.0);
    }

    #[test]
    fn empty_tree_stats_are_zero() {
        let t = SchemaTree::new("empty");
        let s = TreeStats::of(&t);
        assert_eq!(s.node_count, 0);
        assert_eq!(s.avg_depth, 0.0);
        assert_eq!(s.avg_fanout, 0.0);
    }

    #[test]
    fn forest_stats_aggregate() {
        let f = vec![paper_personal_schema(), paper_repository_fragment()];
        let s = ForestStats::of(&f);
        assert_eq!(s.tree_count, 2);
        assert_eq!(s.total_nodes, 10);
        assert_eq!(s.min_tree_size, 3);
        assert_eq!(s.max_tree_size, 7);
        assert_eq!(s.avg_tree_size, 5.0);
        // "book", "title", "author" overlap partially with the repository fragment.
        assert!(s.distinct_names >= 7);
    }

    #[test]
    fn forest_stats_of_empty_iterator() {
        let s = ForestStats::of(std::iter::empty());
        assert_eq!(s.tree_count, 0);
        assert_eq!(s.min_tree_size, 0);
        assert_eq!(s.avg_tree_size, 0.0);
    }

    use crate::tree::SchemaTree;
}
