//! Node labelling for fast tree-distance queries.
//!
//! The paper (Sec. 4, "Distance measure") notes that distances are computed very often
//! during k-means clustering and that Bellflower "uses node labeling techniques
//! \[Kaplan & Milo\] to provide low-cost computation of path lengths". We implement the
//! standard Euler-tour + sparse-table LCA labelling: after an `O(n log n)` preprocessing
//! pass, the path length between any two nodes of the same tree is answered in `O(1)`.
//!
//! The labelling also exposes pre/post order intervals, which give `O(1)`
//! ancestor/descendant tests — used by the structural element matchers.

use crate::node::NodeId;
use crate::tree::SchemaTree;

/// The flat label arrays `(depth, first_occurrence, euler, pre, post)` as
/// borrowed slices — what [`TreeLabeling::raw_parts`] hands to a serializer.
pub type RawLabelParts<'a> = (&'a [u32], &'a [u32], &'a [u32], &'a [u32], &'a [u32]);

/// Precomputed labels for one [`SchemaTree`].
#[derive(Debug, Clone)]
pub struct TreeLabeling {
    /// depth[node] — number of edges from the root.
    depth: Vec<u32>,
    /// First index of each node in the Euler tour.
    first_occurrence: Vec<u32>,
    /// Euler tour of node indices.
    euler: Vec<u32>,
    /// Sparse table over the Euler tour: `sparse[k][i]` packs
    /// `depth << 32 | euler_index` for the minimum-depth node in the window
    /// `[i, i + 2^k)`. Packing the comparison key next to the index makes the
    /// table build a sequential branch-free `min` scan (no indirection through
    /// `euler` and `depth` per cell) and ties break toward the lower euler
    /// index — the same leftward preference the unpacked table had.
    ///
    /// Built **on the first range-minimum query** (thread-safe; concurrent
    /// first calls race benignly): the depth/pre/post labels answer the
    /// ancestor tests and depth lookups that dominate many workloads, and a
    /// snapshot-loaded repository should not spend startup time on RMQ tables
    /// for trees no LCA query ever touches.
    sparse: std::sync::OnceLock<Vec<Vec<u64>>>,
    /// Pre-order entry numbers (for ancestor tests).
    pre: Vec<u32>,
    /// Pre-order exit numbers (size of subtree encoded as interval end).
    post: Vec<u32>,
    node_count: usize,
}

impl TreeLabeling {
    /// Build the labelling for a tree. Empty trees produce an empty labelling whose
    /// queries all return `None`.
    pub fn build(tree: &SchemaTree) -> Self {
        let n = tree.len();
        let mut depth = vec![0u32; n];
        let mut first_occurrence = vec![u32::MAX; n];
        let mut euler = Vec::with_capacity(2 * n);
        let mut pre = vec![0u32; n];
        let mut post = vec![0u32; n];

        if let Some(root) = tree.root() {
            // Iterative DFS producing the Euler tour and pre/post numbers.
            #[derive(Debug)]
            enum Step {
                Enter(NodeId),
                Return(NodeId),
            }
            let mut counter = 0u32;
            let mut stack = vec![Step::Enter(root)];
            while let Some(step) = stack.pop() {
                match step {
                    Step::Enter(id) => {
                        let d = tree.depth(id);
                        depth[id.index()] = d;
                        pre[id.index()] = counter;
                        counter += 1;
                        first_occurrence[id.index()] = euler.len() as u32;
                        euler.push(id.0);
                        let children = tree.children(id);
                        // Interleave: after each child subtree, revisit the parent.
                        for &c in children.iter().rev() {
                            stack.push(Step::Return(id));
                            stack.push(Step::Enter(c));
                        }
                    }
                    Step::Return(id) => {
                        euler.push(id.0);
                    }
                }
            }
            // Post numbers: a node's interval is [pre, post]; compute by DFS sizes.
            // Since ids are appended in pre-order by the builder we can compute post
            // from the pre-order traversal directly.
            let order = tree.preorder();
            // post[v] = pre[v] + size(subtree(v)) - 1; compute sizes bottom-up.
            let mut size = vec![1u32; n];
            for &id in order.iter().rev() {
                if let Some(p) = tree.parent(id) {
                    size[p.index()] += size[id.index()];
                }
            }
            for &id in &order {
                post[id.index()] = pre[id.index()] + size[id.index()] - 1;
            }
        }

        TreeLabeling {
            depth,
            first_occurrence,
            euler,
            sparse: std::sync::OnceLock::new(),
            pre,
            post,
            node_count: n,
        }
    }

    /// The flat label arrays, in `(depth, first_occurrence, euler, pre, post)`
    /// order — everything [`TreeLabeling::from_raw_parts`] needs to reassemble
    /// the labelling without re-walking the tree. The derived sparse RMQ table
    /// is deliberately not exposed: it is lazily rebuilt on first use, so
    /// shipping it would trade file size for nothing.
    pub fn raw_parts(&self) -> RawLabelParts<'_> {
        (
            &self.depth,
            &self.first_occurrence,
            &self.euler,
            &self.pre,
            &self.post,
        )
    }

    /// Reassemble a labelling from arrays previously obtained via
    /// [`TreeLabeling::raw_parts`]; the sparse RMQ table stays lazy. The
    /// arrays must describe the same tree they were built from; this
    /// constructor trusts them (snapshot loading validates array lengths and
    /// checksums before calling it, and equivalence tests pin the behaviour).
    pub fn from_raw_parts(
        depth: Vec<u32>,
        first_occurrence: Vec<u32>,
        euler: Vec<u32>,
        pre: Vec<u32>,
        post: Vec<u32>,
    ) -> Self {
        let node_count = depth.len();
        TreeLabeling {
            depth,
            first_occurrence,
            euler,
            sparse: std::sync::OnceLock::new(),
            pre,
            post,
            node_count,
        }
    }

    /// Number of nodes covered by this labelling.
    pub fn len(&self) -> usize {
        self.node_count
    }

    /// True when the labelling covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_count == 0
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, id: NodeId) -> Option<u32> {
        self.depth.get(id.index()).copied()
    }

    /// Lowest common ancestor in `O(1)`.
    pub fn lca(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        let fa = *self.first_occurrence.get(a.index())? as usize;
        let fb = *self.first_occurrence.get(b.index())? as usize;
        if fa == usize::from(u16::MAX) && self.euler.is_empty() {
            return None;
        }
        let (lo, hi) = if fa <= fb { (fa, fb) } else { (fb, fa) };
        let idx = self.range_min(lo, hi)?;
        Some(NodeId(self.euler[idx]))
    }

    /// Path length (number of edges) between two nodes, in `O(1)`.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let l = self.lca(a, b)?;
        Some(self.depth[a.index()] + self.depth[b.index()] - 2 * self.depth[l.index()])
    }

    /// `true` if `ancestor` is an ancestor of (or equal to) `descendant`.
    pub fn is_ancestor(&self, ancestor: NodeId, descendant: NodeId) -> Option<bool> {
        let pa = *self.pre.get(ancestor.index())?;
        let qa = *self.post.get(ancestor.index())?;
        let pd = *self.pre.get(descendant.index())?;
        Some(pa <= pd && pd <= qa)
    }

    /// Pre-order rank of a node.
    pub fn preorder_rank(&self, id: NodeId) -> Option<u32> {
        self.pre.get(id.index()).copied()
    }

    /// Size of the subtree rooted at `id`.
    pub fn subtree_size(&self, id: NodeId) -> Option<u32> {
        let p = *self.pre.get(id.index())?;
        let q = *self.post.get(id.index())?;
        Some(q - p + 1)
    }

    /// Index (into the euler tour) of the minimum-depth entry in `[lo, hi]`.
    fn range_min(&self, lo: usize, hi: usize) -> Option<usize> {
        if self.euler.is_empty() || hi >= self.euler.len() {
            return None;
        }
        let span = hi - lo + 1;
        let k = usize::BITS as usize - 1 - span.leading_zeros() as usize;
        let sparse = self
            .sparse
            .get_or_init(|| build_sparse_table(&self.euler, &self.depth));
        let left = sparse[k][lo];
        let right = sparse[k][hi + 1 - (1 << k)];
        Some((left.min(right) & 0xffff_ffff) as usize)
    }
}

/// Build the sparse table for range-minimum (by depth) queries over the Euler tour.
///
/// Cells pack `depth << 32 | euler_index`, so each level is a plain sequential
/// `min` over the previous level with no lookups into `euler`/`depth`. On ties
/// the lower euler index (the packed low bits) wins, preserving the leftward
/// preference of the classic formulation.
fn build_sparse_table(euler: &[u32], depth: &[u32]) -> Vec<Vec<u64>> {
    let m = euler.len();
    if m == 0 {
        return vec![];
    }
    let levels = (usize::BITS - m.leading_zeros()) as usize;
    let mut sparse: Vec<Vec<u64>> = Vec::with_capacity(levels);
    sparse.push(
        euler
            .iter()
            .enumerate()
            .map(|(i, &e)| (depth[e as usize] as u64) << 32 | i as u64)
            .collect(),
    );
    let mut k = 1usize;
    while (1 << k) <= m {
        let prev = &sparse[k - 1];
        let width = 1 << (k - 1);
        let row = (0..=(m - (1 << k)))
            .map(|i| prev[i].min(prev[i + width]))
            .collect();
        sparse.push(row);
        k += 1;
    }
    sparse
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::SchemaNode;
    use crate::tree::{paper_repository_fragment, SchemaTree, TreeBuilder};

    fn labeled_fig1() -> (SchemaTree, TreeLabeling) {
        let t = paper_repository_fragment();
        let l = TreeLabeling::build(&t);
        (t, l)
    }

    #[test]
    fn empty_tree_labeling() {
        let t = SchemaTree::new("empty");
        let l = TreeLabeling::build(&t);
        assert!(l.is_empty());
        assert_eq!(l.distance(NodeId(0), NodeId(1)), None);
        assert_eq!(l.lca(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn single_node_tree() {
        let t = TreeBuilder::new("one")
            .root(SchemaNode::element("only"))
            .build();
        let l = TreeLabeling::build(&t);
        let r = t.root().unwrap();
        assert_eq!(l.distance(r, r), Some(0));
        assert_eq!(l.lca(r, r), Some(r));
        assert_eq!(l.subtree_size(r), Some(1));
        assert_eq!(l.is_ancestor(r, r), Some(true));
    }

    #[test]
    fn distances_agree_with_naive_tree_distance() {
        let (t, l) = labeled_fig1();
        for a in t.node_ids() {
            for b in t.node_ids() {
                assert_eq!(
                    l.distance(a, b),
                    t.distance(a, b),
                    "distance mismatch for {a},{b}"
                );
            }
        }
    }

    #[test]
    fn lca_agrees_with_naive() {
        let (t, l) = labeled_fig1();
        for a in t.node_ids() {
            for b in t.node_ids() {
                assert_eq!(l.lca(a, b), t.lca(a, b), "lca mismatch for {a},{b}");
            }
        }
    }

    #[test]
    fn ancestor_tests() {
        let (t, l) = labeled_fig1();
        let lib = t.root().unwrap();
        let title = t.find_by_name("title").unwrap();
        let address = t.find_by_name("address").unwrap();
        assert_eq!(l.is_ancestor(lib, title), Some(true));
        assert_eq!(l.is_ancestor(title, lib), Some(false));
        assert_eq!(l.is_ancestor(address, title), Some(false));
        assert_eq!(l.is_ancestor(title, title), Some(true));
    }

    #[test]
    fn subtree_sizes() {
        let (t, l) = labeled_fig1();
        let lib = t.root().unwrap();
        let book = t.find_by_name("book").unwrap();
        let data = t.find_by_name("data").unwrap();
        assert_eq!(l.subtree_size(lib), Some(7));
        assert_eq!(l.subtree_size(book), Some(5));
        assert_eq!(l.subtree_size(data), Some(3));
    }

    #[test]
    fn distance_symmetric_and_triangle_on_random_tree() {
        // Build a deterministic "comb" tree with some branching to stress the LCA.
        let mut t = SchemaTree::new("comb");
        let root = t.add_root(SchemaNode::element("r")).unwrap();
        let mut spine = root;
        let mut all = vec![root];
        for i in 0..50 {
            let s = t
                .add_child(spine, SchemaNode::element(format!("s{i}")))
                .unwrap();
            let leaf = t
                .add_child(spine, SchemaNode::element(format!("l{i}")))
                .unwrap();
            all.push(s);
            all.push(leaf);
            spine = s;
        }
        let l = TreeLabeling::build(&t);
        for (i, &a) in all.iter().enumerate().step_by(7) {
            for &b in all.iter().skip(i).step_by(11) {
                let d_ab = l.distance(a, b).unwrap();
                let d_ba = l.distance(b, a).unwrap();
                assert_eq!(d_ab, d_ba);
                assert_eq!(l.distance(a, b), t.distance(a, b));
                for &c in all.iter().step_by(13) {
                    let d_ac = l.distance(a, c).unwrap();
                    let d_cb = l.distance(c, b).unwrap();
                    assert!(d_ab <= d_ac + d_cb, "triangle inequality violated");
                }
            }
        }
    }

    #[test]
    fn preorder_rank_is_dense_permutation() {
        let (t, l) = labeled_fig1();
        let mut ranks: Vec<u32> = t
            .node_ids()
            .map(|id| l.preorder_rank(id).unwrap())
            .collect();
        ranks.sort_unstable();
        let expected: Vec<u32> = (0..t.len() as u32).collect();
        assert_eq!(ranks, expected);
    }
}
