//! Node types of a schema tree: identifiers, kinds, cardinalities and properties.

use crate::datatype::XsdType;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node inside a single [`crate::SchemaTree`].
///
/// Node ids are dense indices into the tree's arena; they are assigned in insertion
/// order, which for trees built by the parsers and the builder corresponds to a
/// pre-order traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index form for vector-indexed storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a node id from an arena index.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Whether a schema node came from an element declaration or an attribute declaration.
///
/// The paper counts "element (attribute) nodes" together; both participate in matching
/// identically, but the distinction is kept because datatype information is far more
/// common on attributes and because structural matchers may want to treat attribute
/// edges differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An XML element declaration.
    Element,
    /// An XML attribute declaration.
    Attribute,
}

impl NodeKind {
    /// Short lowercase label used in debugging output.
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::Element => "element",
            NodeKind::Attribute => "attribute",
        }
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Occurrence constraint of a node under its parent (a simplified `minOccurs`/`maxOccurs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Cardinality {
    /// Exactly one occurrence (`minOccurs=1, maxOccurs=1`, the XSD default).
    #[default]
    One,
    /// Optional occurrence (`?` in DTD, `minOccurs=0, maxOccurs=1`).
    Optional,
    /// One or more (`+` in DTD).
    OneOrMore,
    /// Zero or more (`*` in DTD, `maxOccurs=unbounded`).
    ZeroOrMore,
}

impl Cardinality {
    /// Parse from min/max occurs values; `None` for max means `unbounded`.
    pub fn from_occurs(min: u32, max: Option<u32>) -> Self {
        match (min, max) {
            (0, Some(0)) => Cardinality::Optional,
            (0, Some(1)) => Cardinality::Optional,
            (0, _) => Cardinality::ZeroOrMore,
            (_, Some(1)) => Cardinality::One,
            (_, _) => Cardinality::OneOrMore,
        }
    }

    /// The DTD occurrence-indicator character for this cardinality, if any.
    pub fn dtd_indicator(self) -> Option<char> {
        match self {
            Cardinality::One => None,
            Cardinality::Optional => Some('?'),
            Cardinality::OneOrMore => Some('+'),
            Cardinality::ZeroOrMore => Some('*'),
        }
    }

    /// Whether the node may repeat under its parent.
    pub fn repeatable(self) -> bool {
        matches!(self, Cardinality::OneOrMore | Cardinality::ZeroOrMore)
    }

    /// Whether the node may be absent.
    pub fn optional(self) -> bool {
        matches!(self, Cardinality::Optional | Cardinality::ZeroOrMore)
    }
}

/// A node of a schema tree: the `H` property function of Def. 1 materialised as a struct.
///
/// Every node carries a `name` (the property the Bellflower element matcher uses), an
/// optional datatype, a kind and a cardinality. Arbitrary extra `(property, value)`
/// pairs can be attached through [`SchemaNode::set_property`]; they are preserved but
/// not interpreted by the core system, mirroring the open-ended `H` function of the
/// paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaNode {
    /// Element or attribute name (local name, prefix stripped).
    pub name: String,
    /// Element vs attribute.
    pub kind: NodeKind,
    /// Declared simple type, when known.
    pub datatype: Option<XsdType>,
    /// Occurrence constraint under the parent.
    pub cardinality: Cardinality,
    /// Additional uninterpreted properties (annotation text, namespace, …).
    properties: Vec<(String, String)>,
}

impl SchemaNode {
    /// Create an element node with the given name and default properties.
    pub fn element(name: impl Into<String>) -> Self {
        SchemaNode {
            name: name.into(),
            kind: NodeKind::Element,
            datatype: None,
            cardinality: Cardinality::One,
            properties: Vec::new(),
        }
    }

    /// Create an attribute node with the given name.
    pub fn attribute(name: impl Into<String>) -> Self {
        SchemaNode {
            name: name.into(),
            kind: NodeKind::Attribute,
            datatype: None,
            cardinality: Cardinality::Optional,
            properties: Vec::new(),
        }
    }

    /// Builder-style setter for the datatype.
    pub fn with_datatype(mut self, t: XsdType) -> Self {
        self.datatype = Some(t);
        self
    }

    /// Builder-style setter for the cardinality.
    pub fn with_cardinality(mut self, c: Cardinality) -> Self {
        self.cardinality = c;
        self
    }

    /// Attach or overwrite an uninterpreted `(property, value)` pair.
    pub fn set_property(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        if let Some(slot) = self.properties.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value.into();
        } else {
            self.properties.push((key, value.into()));
        }
    }

    /// Look up an uninterpreted property.
    pub fn property(&self, key: &str) -> Option<&str> {
        self.properties
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// All extra properties in insertion order.
    pub fn properties(&self) -> &[(String, String)] {
        &self.properties
    }

    /// Whether this node is a leaf-typed node (has a simple datatype).
    pub fn is_typed(&self) -> bool {
        self.datatype.is_some()
    }
}

impl fmt::Display for SchemaNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            NodeKind::Element => write!(f, "<{}>", self.name),
            NodeKind::Attribute => write!(f, "@{}", self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn cardinality_from_occurs_matrix() {
        assert_eq!(Cardinality::from_occurs(1, Some(1)), Cardinality::One);
        assert_eq!(Cardinality::from_occurs(0, Some(1)), Cardinality::Optional);
        assert_eq!(Cardinality::from_occurs(0, None), Cardinality::ZeroOrMore);
        assert_eq!(
            Cardinality::from_occurs(0, Some(5)),
            Cardinality::ZeroOrMore
        );
        assert_eq!(Cardinality::from_occurs(1, None), Cardinality::OneOrMore);
        assert_eq!(Cardinality::from_occurs(2, Some(7)), Cardinality::OneOrMore);
    }

    #[test]
    fn cardinality_predicates() {
        assert!(Cardinality::ZeroOrMore.repeatable());
        assert!(Cardinality::ZeroOrMore.optional());
        assert!(Cardinality::OneOrMore.repeatable());
        assert!(!Cardinality::OneOrMore.optional());
        assert!(!Cardinality::One.repeatable());
        assert_eq!(Cardinality::Optional.dtd_indicator(), Some('?'));
        assert_eq!(Cardinality::One.dtd_indicator(), None);
    }

    #[test]
    fn element_and_attribute_constructors() {
        let e = SchemaNode::element("book");
        assert_eq!(e.kind, NodeKind::Element);
        assert_eq!(e.cardinality, Cardinality::One);
        assert_eq!(e.to_string(), "<book>");

        let a = SchemaNode::attribute("isbn").with_datatype(XsdType::String);
        assert_eq!(a.kind, NodeKind::Attribute);
        assert_eq!(a.cardinality, Cardinality::Optional);
        assert!(a.is_typed());
        assert_eq!(a.to_string(), "@isbn");
    }

    #[test]
    fn properties_set_get_overwrite() {
        let mut n = SchemaNode::element("author");
        assert_eq!(n.property("ns"), None);
        n.set_property("ns", "http://example.org/a");
        n.set_property("doc", "the author of the book");
        assert_eq!(n.property("ns"), Some("http://example.org/a"));
        n.set_property("ns", "http://example.org/b");
        assert_eq!(n.property("ns"), Some("http://example.org/b"));
        assert_eq!(n.properties().len(), 2);
    }

    #[test]
    fn node_kind_labels() {
        assert_eq!(NodeKind::Element.to_string(), "element");
        assert_eq!(NodeKind::Attribute.to_string(), "attribute");
    }
}
