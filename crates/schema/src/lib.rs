//! # xsm-schema — XML schema data model
//!
//! This crate provides the data model used throughout the Bellflower clustered
//! schema-matching system (a reproduction of Smiljanic et al., *Using Element
//! Clustering to Increase the Efficiency of XML Schema Matching*, ICDE 2006):
//!
//! * [`SchemaTree`] — an arena-backed rooted, ordered, labelled tree representing one
//!   XML schema (Def. 1 of the paper restricted to trees),
//! * [`SchemaNode`] — an element or attribute declaration with a name, an optional
//!   [`datatype::XsdType`], and a cardinality,
//! * [`labeling::TreeLabeling`] — the Kaplan–Milo style node-labelling substrate that
//!   lets the matcher and the clusterer compute tree (path-length) distances between
//!   any two nodes in constant time after a linear-time preprocessing pass,
//! * [`parser`] — hand-written parsers for a pragmatic subset of DTD and XML Schema
//!   (XSD), plus the minimal XML tokenizer they share,
//! * [`datatype`] — the XSD built-in datatype lattice and a compatibility measure.
//!
//! The crate has no I/O besides the parsers taking `&str` input; loading files is the
//! responsibility of `xsm-repo`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datatype;
pub mod error;
pub mod labeling;
pub mod node;
pub mod parser;
pub mod path;
pub mod stats;
pub mod tree;

pub use datatype::XsdType;
pub use error::SchemaError;
pub use labeling::TreeLabeling;
pub use node::{Cardinality, NodeId, NodeKind, SchemaNode};
pub use path::NodePath;
pub use tree::{SchemaTree, TreeBuilder};

/// Identifier of a tree within a forest / repository.
///
/// The repository in the paper is "a collection of a large number of trees, i.e. a
/// forest"; `TreeId` is how the rest of the system refers to one member of that forest.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct TreeId(pub u32);

impl TreeId {
    /// Index form for vector-indexed storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TreeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A node address that is unique across a whole repository: tree + node within tree.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct GlobalNodeId {
    /// The tree the node belongs to.
    pub tree: TreeId,
    /// The node within that tree.
    pub node: NodeId,
}

impl GlobalNodeId {
    /// Convenience constructor.
    #[inline]
    pub fn new(tree: TreeId, node: NodeId) -> Self {
        Self { tree, node }
    }
}

impl std::fmt::Display for GlobalNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.tree, self.node)
    }
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn tree_id_display_and_index() {
        let t = TreeId(7);
        assert_eq!(t.to_string(), "t7");
        assert_eq!(t.index(), 7);
    }

    #[test]
    fn global_node_id_ordering_groups_by_tree() {
        let a = GlobalNodeId::new(TreeId(1), NodeId(9));
        let b = GlobalNodeId::new(TreeId(2), NodeId(0));
        assert!(a < b);
        assert_eq!(a.to_string(), "t1:n9");
    }
}
