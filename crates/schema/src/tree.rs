//! Arena-backed schema trees (Def. 1 of the paper, restricted to trees).

use crate::error::{Result, SchemaError};
use crate::node::{NodeId, SchemaNode};
use crate::path::NodePath;
use serde::{Deserialize, Serialize};

/// Internal per-node bookkeeping of the arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct NodeSlot {
    data: SchemaNode,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    depth: u32,
}

/// A rooted, ordered, labelled tree representing one XML schema.
///
/// This is the `PS = (N, E, I, H)` structure of Def. 1: nodes live in an arena indexed
/// by [`NodeId`]; edges are represented implicitly by the parent/children links (the
/// incidence function `I`); node properties (`H`) live in [`SchemaNode`].
///
/// Trees are append-only: nodes can be added but not removed, which keeps `NodeId`s
/// stable and dense — a property the repository indexes and the node labelling rely on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaTree {
    /// Human readable name of the schema (file name, generated name, …).
    name: String,
    slots: Vec<NodeSlot>,
    root: Option<NodeId>,
}

impl SchemaTree {
    /// Create an empty tree with the given schema name.
    pub fn new(name: impl Into<String>) -> Self {
        SchemaTree {
            name: name.into(),
            slots: Vec::new(),
            root: None,
        }
    }

    /// The schema's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the schema.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of nodes in the tree.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of edges (`|E|`); for a tree this is `len() - 1`.
    pub fn edge_count(&self) -> usize {
        self.slots.len().saturating_sub(1)
    }

    /// The root node id, if the tree is non-empty.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Add the root node. Fails if a root already exists.
    pub fn add_root(&mut self, node: SchemaNode) -> Result<NodeId> {
        if self.root.is_some() {
            return Err(SchemaError::MultipleRoots);
        }
        let id = NodeId::from_index(self.slots.len());
        self.slots.push(NodeSlot {
            data: node,
            parent: None,
            children: Vec::new(),
            depth: 0,
        });
        self.root = Some(id);
        Ok(id)
    }

    /// Rebuild a tree from a parent table in one pass: `parents[i]` is the
    /// parent slot of node `i` (`None` for the root), and a parent must
    /// precede its children. Children keep slot order, which is insertion
    /// order — the exact shape a sequence of [`SchemaTree::add_root`] /
    /// [`SchemaTree::add_child`] calls produces, validated the same way
    /// ([`SchemaError::UnknownNode`] for a parent at or after its child,
    /// [`SchemaError::MultipleRoots`] for a second root) but without the
    /// per-node slot growth — bulk callers (snapshot load) allocate each
    /// child list exactly once.
    pub fn from_parent_table(
        name: impl Into<String>,
        nodes: Vec<SchemaNode>,
        parents: &[Option<NodeId>],
    ) -> Result<Self> {
        if nodes.len() != parents.len() {
            return Err(SchemaError::UnknownNode(parents.len() as u32));
        }
        let mut child_counts = vec![0u32; nodes.len()];
        let mut root = None;
        for (i, parent) in parents.iter().enumerate() {
            match parent {
                None => {
                    if root.is_some() {
                        return Err(SchemaError::MultipleRoots);
                    }
                    root = Some(NodeId::from_index(i));
                }
                // `parent < i` also forces slot 0 to be the root, so `depth`
                // and `children` fill in a single forward pass below.
                Some(p) if p.index() < i => child_counts[p.index()] += 1,
                Some(p) => return Err(SchemaError::UnknownNode(p.0)),
            }
        }
        let mut slots: Vec<NodeSlot> = nodes
            .into_iter()
            .zip(parents)
            .enumerate()
            .map(|(i, (data, &parent))| NodeSlot {
                data,
                parent,
                children: Vec::with_capacity(child_counts[i] as usize),
                depth: 0,
            })
            .collect();
        for i in 0..slots.len() {
            if let Some(p) = slots[i].parent {
                let depth = slots[p.index()].depth + 1;
                slots[i].depth = depth;
                slots[p.index()].children.push(NodeId::from_index(i));
            }
        }
        Ok(SchemaTree {
            name: name.into(),
            slots,
            root,
        })
    }

    /// Add a child of `parent`. Children are ordered by insertion.
    pub fn add_child(&mut self, parent: NodeId, node: SchemaNode) -> Result<NodeId> {
        let parent_depth = self
            .slots
            .get(parent.index())
            .ok_or(SchemaError::UnknownNode(parent.0))?
            .depth;
        let id = NodeId::from_index(self.slots.len());
        self.slots.push(NodeSlot {
            data: node,
            parent: Some(parent),
            children: Vec::new(),
            depth: parent_depth + 1,
        });
        self.slots[parent.index()].children.push(id);
        Ok(id)
    }

    /// Immutable access to a node's data.
    pub fn node(&self, id: NodeId) -> Option<&SchemaNode> {
        self.slots.get(id.index()).map(|s| &s.data)
    }

    /// Mutable access to a node's data.
    pub fn node_mut(&mut self, id: NodeId) -> Option<&mut SchemaNode> {
        self.slots.get_mut(id.index()).map(|s| &mut s.data)
    }

    /// Panic-free name lookup; returns `""` for unknown nodes.
    pub fn name_of(&self, id: NodeId) -> &str {
        self.node(id).map(|n| n.name.as_str()).unwrap_or("")
    }

    /// Parent of a node (`None` for the root or unknown nodes).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.slots.get(id.index()).and_then(|s| s.parent)
    }

    /// Children of a node, in document order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        self.slots
            .get(id.index())
            .map(|s| s.children.as_slice())
            .unwrap_or(&[])
    }

    /// Depth of a node (root has depth 0).
    pub fn depth(&self, id: NodeId) -> u32 {
        self.slots.get(id.index()).map(|s| s.depth).unwrap_or(0)
    }

    /// True when `id` has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.children(id).is_empty()
    }

    /// Iterator over all node ids in insertion (pre-order for built trees) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.slots.len()).map(NodeId::from_index)
    }

    /// Iterator over `(NodeId, &SchemaNode)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &SchemaNode)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| (NodeId::from_index(i), &s.data))
    }

    /// Pre-order traversal starting from the root.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.len());
        let Some(root) = self.root else {
            return order;
        };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            order.push(id);
            // Push children in reverse so they pop in document order.
            for &c in self.children(id).iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Post-order traversal starting from the root.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.len());
        let Some(root) = self.root else {
            return order;
        };
        // Iterative post-order: reverse of (node, children-reversed) pre-order.
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            order.push(id);
            for &c in self.children(id) {
                stack.push(c);
            }
        }
        order.reverse();
        order
    }

    /// Ancestor chain from `id` (inclusive) up to the root (inclusive).
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            if self.slots.get(c.index()).is_none() {
                break;
            }
            chain.push(c);
            cur = self.parent(c);
        }
        chain
    }

    /// Lowest common ancestor of two nodes, computed by walking up the deeper node.
    ///
    /// This is the reference O(depth) implementation; the constant-time variant lives
    /// in [`crate::labeling::TreeLabeling`].
    pub fn lca(&self, a: NodeId, b: NodeId) -> Option<NodeId> {
        if self.slots.get(a.index()).is_none() || self.slots.get(b.index()).is_none() {
            return None;
        }
        let (mut a, mut b) = (a, b);
        while self.depth(a) > self.depth(b) {
            a = self.parent(a)?;
        }
        while self.depth(b) > self.depth(a) {
            b = self.parent(b)?;
        }
        while a != b {
            a = self.parent(a)?;
            b = self.parent(b)?;
        }
        Some(a)
    }

    /// Tree (path-length) distance between two nodes: the number of edges on the
    /// unique path connecting them.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Option<u32> {
        let l = self.lca(a, b)?;
        Some(self.depth(a) + self.depth(b) - 2 * self.depth(l))
    }

    /// The unique path between two nodes as a [`NodePath`].
    pub fn path_between(&self, a: NodeId, b: NodeId) -> Option<NodePath> {
        let l = self.lca(a, b)?;
        let mut up = Vec::new();
        let mut cur = a;
        while cur != l {
            up.push(cur);
            cur = self.parent(cur)?;
        }
        up.push(l);
        let mut down = Vec::new();
        let mut cur = b;
        while cur != l {
            down.push(cur);
            cur = self.parent(cur)?;
        }
        down.reverse();
        up.extend(down);
        Some(NodePath::new(up))
    }

    /// The root-to-node path, expressed as a slash separated string of names
    /// (e.g. `/lib/book/title`). Useful for debugging and for the examples.
    pub fn absolute_path(&self, id: NodeId) -> String {
        let mut chain = self.ancestors(id);
        chain.reverse();
        let mut s = String::new();
        for n in chain {
            s.push('/');
            s.push_str(self.name_of(n));
        }
        if s.is_empty() {
            s.push('/');
        }
        s
    }

    /// Find the first node (in pre-order) whose name equals `name`.
    pub fn find_by_name(&self, name: &str) -> Option<NodeId> {
        self.preorder()
            .into_iter()
            .find(|&id| self.name_of(id) == name)
    }

    /// All nodes whose name equals `name`, in pre-order.
    pub fn find_all_by_name(&self, name: &str) -> Vec<NodeId> {
        self.preorder()
            .into_iter()
            .filter(|&id| self.name_of(id) == name)
            .collect()
    }

    /// Number of leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        self.node_ids().filter(|&id| self.is_leaf(id)).count()
    }

    /// Maximum depth over all nodes (0 for a single-node tree, 0 for an empty tree).
    pub fn max_depth(&self) -> u32 {
        self.slots.iter().map(|s| s.depth).max().unwrap_or(0)
    }

    /// Validates structural invariants (acyclicity by construction, depth consistency,
    /// parent/child symmetry). Intended for tests and debug assertions.
    pub fn validate(&self) -> Result<()> {
        if self.slots.is_empty() {
            return Ok(());
        }
        let root = self.root.ok_or(SchemaError::EmptyTree)?;
        if self.slots[root.index()].parent.is_some() {
            return Err(SchemaError::WouldCycle);
        }
        for (i, slot) in self.slots.iter().enumerate() {
            let id = NodeId::from_index(i);
            if let Some(p) = slot.parent {
                let pslot = self
                    .slots
                    .get(p.index())
                    .ok_or(SchemaError::UnknownNode(p.0))?;
                if !pslot.children.contains(&id) {
                    return Err(SchemaError::UnknownNode(id.0));
                }
                if slot.depth != pslot.depth + 1 {
                    return Err(SchemaError::WouldCycle);
                }
            } else if id != root {
                return Err(SchemaError::MultipleRoots);
            }
            for &c in &slot.children {
                let cslot = self
                    .slots
                    .get(c.index())
                    .ok_or(SchemaError::UnknownNode(c.0))?;
                if cslot.parent != Some(id) {
                    return Err(SchemaError::UnknownNode(c.0));
                }
            }
        }
        // Reachability: every node must be reachable from the root.
        if self.preorder().len() != self.slots.len() {
            return Err(SchemaError::WouldCycle);
        }
        Ok(())
    }
}

/// Fluent builder for hand-constructing small schema trees (used heavily in tests,
/// examples and the synthetic corpus generator).
///
/// ```
/// use xsm_schema::{TreeBuilder, SchemaNode};
///
/// let tree = TreeBuilder::new("personal")
///     .root(SchemaNode::element("book"))
///     .child(SchemaNode::element("title"))
///     .sibling(SchemaNode::element("author"))
///     .build();
/// assert_eq!(tree.len(), 3);
/// assert_eq!(tree.name_of(tree.root().unwrap()), "book");
/// ```
#[derive(Debug, Clone)]
pub struct TreeBuilder {
    tree: SchemaTree,
    /// Stack of "open" nodes; the last entry is the current insertion parent.
    cursor: Vec<NodeId>,
    /// The most recently inserted node (target of `sibling` / `up`).
    last: Option<NodeId>,
}

impl TreeBuilder {
    /// Start building a schema with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TreeBuilder {
            tree: SchemaTree::new(name),
            cursor: Vec::new(),
            last: None,
        }
    }

    /// Set the root node. Must be called exactly once and first.
    pub fn root(mut self, node: SchemaNode) -> Self {
        let id = self
            .tree
            .add_root(node)
            .expect("TreeBuilder::root called twice");
        self.cursor.push(id);
        self.last = Some(id);
        self
    }

    /// Add a child of the most recently inserted node and descend into it.
    pub fn child(mut self, node: SchemaNode) -> Self {
        let parent = self.last.expect("TreeBuilder::child before root");
        let id = self.tree.add_child(parent, node).expect("valid parent");
        self.cursor.push(parent);
        self.last = Some(id);
        self
    }

    /// Add a sibling of the most recently inserted node (a child of the current parent).
    pub fn sibling(mut self, node: SchemaNode) -> Self {
        let parent = *self
            .cursor
            .last()
            .expect("TreeBuilder::sibling before child");
        let id = self.tree.add_child(parent, node).expect("valid parent");
        self.last = Some(id);
        self
    }

    /// Move the insertion point one level up (the next `sibling` attaches to the
    /// grandparent of the last inserted node).
    pub fn up(mut self) -> Self {
        self.last = self.cursor.pop();
        self
    }

    /// Finish building and return the tree.
    pub fn build(self) -> SchemaTree {
        debug_assert!(self.tree.validate().is_ok());
        self.tree
    }
}

/// Construct the running-example *personal schema* `s` of Fig. 1:
/// `book(title, author)`.
pub fn paper_personal_schema() -> SchemaTree {
    TreeBuilder::new("personal:book")
        .root(SchemaNode::element("book"))
        .child(SchemaNode::element("title"))
        .sibling(SchemaNode::element("author"))
        .build()
}

/// Construct the running-example *repository fragment* `R` of Fig. 1:
/// `lib(book(data(title, authorName), shelf), address)`.
pub fn paper_repository_fragment() -> SchemaTree {
    TreeBuilder::new("repo:lib")
        .root(SchemaNode::element("lib"))
        .child(SchemaNode::element("book"))
        .child(SchemaNode::element("data"))
        .child(SchemaNode::element("title"))
        .sibling(SchemaNode::element("authorName"))
        .up()
        .sibling(SchemaNode::element("shelf"))
        .up()
        .sibling(SchemaNode::element("address"))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    fn fig1_repo() -> SchemaTree {
        paper_repository_fragment()
    }

    #[test]
    fn empty_tree_properties() {
        let t = SchemaTree::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.edge_count(), 0);
        assert!(t.root().is_none());
        assert_eq!(t.preorder(), Vec::<NodeId>::new());
        assert!(t.validate().is_ok());
    }

    #[test]
    fn add_root_twice_fails() {
        let mut t = SchemaTree::new("x");
        t.add_root(SchemaNode::element("a")).unwrap();
        assert_eq!(
            t.add_root(SchemaNode::element("b")),
            Err(SchemaError::MultipleRoots)
        );
    }

    #[test]
    fn add_child_unknown_parent_fails() {
        let mut t = SchemaTree::new("x");
        t.add_root(SchemaNode::element("a")).unwrap();
        assert_eq!(
            t.add_child(NodeId(99), SchemaNode::element("b")),
            Err(SchemaError::UnknownNode(99))
        );
    }

    #[test]
    fn fig1_repository_structure() {
        let t = fig1_repo();
        assert_eq!(t.len(), 7);
        assert_eq!(t.edge_count(), 6);
        let root = t.root().unwrap();
        assert_eq!(t.name_of(root), "lib");
        assert_eq!(t.children(root).len(), 2); // book, address
        let book = t.find_by_name("book").unwrap();
        assert_eq!(t.depth(book), 1);
        let title = t.find_by_name("title").unwrap();
        assert_eq!(t.depth(title), 3);
        assert_eq!(t.absolute_path(title), "/lib/book/data/title");
        assert!(t.validate().is_ok());
    }

    #[test]
    fn preorder_and_postorder_cover_all_nodes() {
        let t = fig1_repo();
        let pre = t.preorder();
        let post = t.postorder();
        assert_eq!(pre.len(), t.len());
        assert_eq!(post.len(), t.len());
        // Root first in pre-order, last in post-order.
        assert_eq!(pre[0], t.root().unwrap());
        assert_eq!(*post.last().unwrap(), t.root().unwrap());
        // Pre-order respects document order of children.
        assert_eq!(t.name_of(pre[1]), "book");
    }

    #[test]
    fn lca_and_distance_match_paper_example() {
        let t = fig1_repo();
        let title = t.find_by_name("title").unwrap();
        let author = t.find_by_name("authorName").unwrap();
        let shelf = t.find_by_name("shelf").unwrap();
        let address = t.find_by_name("address").unwrap();
        let data = t.find_by_name("data").unwrap();
        let lib = t.root().unwrap();

        assert_eq!(t.lca(title, author), Some(data));
        assert_eq!(t.distance(title, author), Some(2));
        assert_eq!(t.lca(title, address), Some(lib));
        assert_eq!(t.distance(title, address), Some(4));
        assert_eq!(t.distance(shelf, shelf), Some(0));
        assert_eq!(t.distance(lib, title), Some(3));
    }

    #[test]
    fn path_between_produces_connected_path() {
        let t = fig1_repo();
        let title = t.find_by_name("title").unwrap();
        let shelf = t.find_by_name("shelf").unwrap();
        let p = t.path_between(title, shelf).unwrap();
        // title - data - book - shelf
        assert_eq!(p.len_edges(), 3);
        assert_eq!(p.endpoints(), Some((title, shelf)));
        let names: Vec<_> = p.nodes().iter().map(|&n| t.name_of(n)).collect();
        assert_eq!(names, vec!["title", "data", "book", "shelf"]);
    }

    #[test]
    fn ancestors_from_leaf_to_root() {
        let t = fig1_repo();
        let title = t.find_by_name("title").unwrap();
        let chain: Vec<_> = t
            .ancestors(title)
            .iter()
            .map(|&n| t.name_of(n).to_string())
            .collect();
        assert_eq!(chain, vec!["title", "data", "book", "lib"]);
    }

    #[test]
    fn find_all_by_name_returns_every_occurrence() {
        let mut t = fig1_repo();
        let book = t.find_by_name("book").unwrap();
        t.add_child(book, SchemaNode::element("title")).unwrap();
        assert_eq!(t.find_all_by_name("title").len(), 2);
        assert_eq!(t.find_all_by_name("nonexistent").len(), 0);
    }

    #[test]
    fn leaf_count_and_max_depth() {
        let t = fig1_repo();
        // Leaves: title, authorName, shelf, address.
        assert_eq!(t.leaf_count(), 4);
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    fn builder_up_navigates_correctly() {
        let t = paper_repository_fragment();
        let address = t.find_by_name("address").unwrap();
        assert_eq!(t.depth(address), 1);
        let shelf = t.find_by_name("shelf").unwrap();
        assert_eq!(t.depth(shelf), 2);
    }

    #[test]
    fn personal_schema_has_expected_shape() {
        let s = paper_personal_schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.edge_count(), 2);
        let root = s.root().unwrap();
        assert_eq!(s.node(root).unwrap().kind, NodeKind::Element);
        assert_eq!(s.children(root).len(), 2);
    }

    #[test]
    fn node_mut_allows_updates() {
        let mut t = paper_personal_schema();
        let root = t.root().unwrap();
        t.node_mut(root).unwrap().set_property("doc", "a book");
        assert_eq!(t.node(root).unwrap().property("doc"), Some("a book"));
        assert!(t.node_mut(NodeId(77)).is_none());
    }

    #[test]
    fn distance_unknown_node_is_none() {
        let t = paper_personal_schema();
        assert_eq!(t.distance(NodeId(0), NodeId(55)), None);
        assert_eq!(t.lca(NodeId(55), NodeId(0)), None);
    }

    #[test]
    fn absolute_path_of_root() {
        let t = paper_personal_schema();
        assert_eq!(t.absolute_path(t.root().unwrap()), "/book");
    }
}
