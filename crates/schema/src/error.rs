//! Error types for schema construction and parsing.

use std::fmt;

/// Errors produced while building trees or parsing schema documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A node id referenced a node that does not exist in the tree.
    UnknownNode(u32),
    /// Attempted to attach a child to a node of a tree that already has a different root.
    MultipleRoots,
    /// The tree has no root (empty tree used where a rooted tree is required).
    EmptyTree,
    /// An operation would have created a cycle (parent set to a descendant).
    WouldCycle,
    /// Parse error with position (byte offset) and message.
    Parse {
        /// Byte offset in the input where the error was detected.
        offset: usize,
        /// Human readable description.
        message: String,
    },
    /// The document parsed correctly but declared no usable schema content.
    EmptyDocument,
    /// Recursion (a type or element referring to itself) beyond the supported depth.
    RecursionLimit {
        /// Name of the offending element or type.
        name: String,
    },
}

impl SchemaError {
    /// Construct a parse error.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        SchemaError::Parse {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownNode(id) => write!(f, "unknown node id n{id}"),
            SchemaError::MultipleRoots => write!(f, "schema tree already has a root"),
            SchemaError::EmptyTree => write!(f, "schema tree is empty"),
            SchemaError::WouldCycle => write!(f, "operation would create a cycle"),
            SchemaError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SchemaError::EmptyDocument => write!(f, "document contains no schema content"),
            SchemaError::RecursionLimit { name } => {
                write!(
                    f,
                    "recursive definition of '{name}' exceeds expansion limit"
                )
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, SchemaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            SchemaError::UnknownNode(3).to_string(),
            "unknown node id n3"
        );
        assert_eq!(
            SchemaError::MultipleRoots.to_string(),
            "schema tree already has a root"
        );
        assert_eq!(
            SchemaError::parse(12, "unexpected '<'").to_string(),
            "parse error at byte 12: unexpected '<'"
        );
        assert_eq!(
            SchemaError::RecursionLimit {
                name: "book".into()
            }
            .to_string(),
            "recursive definition of 'book' exceeds expansion limit"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&SchemaError::EmptyTree);
    }
}
