//! Paths through a schema tree.
//!
//! Def. 1 of the paper defines a *path* as an alternating sequence of nodes and edges;
//! because our trees represent edges implicitly, a [`NodePath`] stores only the node
//! sequence. Def. 2 maps each personal-schema *edge* to a repository *path*, so paths
//! (and their lengths) are the structural currency of the whole system: the `Δ_path`
//! objective term and the clustering distance measure are both defined on path lengths.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// A simple path in a schema tree, stored as the sequence of nodes it visits.
///
/// Invariant: consecutive nodes are adjacent in the originating tree. The type itself
/// cannot check this (it does not hold a tree reference); [`crate::SchemaTree::path_between`]
/// is the canonical constructor and upholds the invariant.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct NodePath {
    nodes: Vec<NodeId>,
}

impl NodePath {
    /// Wrap a node sequence as a path.
    pub fn new(nodes: Vec<NodeId>) -> Self {
        NodePath { nodes }
    }

    /// The empty path.
    pub fn empty() -> Self {
        NodePath { nodes: Vec::new() }
    }

    /// Nodes visited, in order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes on the path.
    pub fn len_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges on the path (`max(len_nodes - 1, 0)`); this is the *path
    /// length* used by `Δ_path` and by the clustering distance measure.
    pub fn len_edges(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// True if the path visits no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The incidence of the path (`I(p) = (source, target)`), when non-empty.
    pub fn endpoints(&self) -> Option<(NodeId, NodeId)> {
        match (self.nodes.first(), self.nodes.last()) {
            (Some(&a), Some(&b)) => Some((a, b)),
            _ => None,
        }
    }

    /// Whether the path contains the given node.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains(&id)
    }

    /// Reverse the path in place (paths are undirected in the tree sense, but the
    /// mapping generator sometimes needs a specific orientation).
    pub fn reverse(&mut self) {
        self.nodes.reverse();
    }

    /// A reversed copy.
    pub fn reversed(&self) -> Self {
        let mut p = self.clone();
        p.reverse();
        p
    }
}

impl From<Vec<NodeId>> for NodePath {
    fn from(nodes: Vec<NodeId>) -> Self {
        NodePath::new(nodes)
    }
}

impl std::fmt::Display for NodePath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for n in &self.nodes {
            if !first {
                write!(f, "-")?;
            }
            write!(f, "{n}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_path_properties() {
        let p = NodePath::empty();
        assert!(p.is_empty());
        assert_eq!(p.len_nodes(), 0);
        assert_eq!(p.len_edges(), 0);
        assert_eq!(p.endpoints(), None);
        assert_eq!(p.to_string(), "");
    }

    #[test]
    fn single_node_path_has_zero_edges() {
        let p = NodePath::new(vec![NodeId(3)]);
        assert_eq!(p.len_nodes(), 1);
        assert_eq!(p.len_edges(), 0);
        assert_eq!(p.endpoints(), Some((NodeId(3), NodeId(3))));
    }

    #[test]
    fn multi_node_path_edges_and_contains() {
        let p: NodePath = vec![NodeId(0), NodeId(4), NodeId(2)].into();
        assert_eq!(p.len_edges(), 2);
        assert!(p.contains(NodeId(4)));
        assert!(!p.contains(NodeId(9)));
        assert_eq!(p.to_string(), "n0-n4-n2");
    }

    #[test]
    fn reverse_swaps_endpoints() {
        let p = NodePath::new(vec![NodeId(1), NodeId(2), NodeId(3)]);
        let r = p.reversed();
        assert_eq!(p.endpoints(), Some((NodeId(1), NodeId(3))));
        assert_eq!(r.endpoints(), Some((NodeId(3), NodeId(1))));
        assert_eq!(r.len_edges(), p.len_edges());
    }
}
