//! Cluster ordering — the paper's future-work item 2.
//!
//! "Ordering the clusters — a measure of cluster's quality can be used to decide which
//! clusters have better chances to produce good mappings. In this way, the
//! time-to-first good mapping can be improved."
//!
//! The quality score implemented here is an *optimistic* estimate of the best mapping a
//! cluster can produce, computed from information that is already available before any
//! generation work: for every personal node, the best candidate similarity inside the
//! cluster (an upper bound on `Δ_sim`), combined with `Δ_path = 1` (the optimistic
//! structural term). Processing clusters in descending quality order makes an anytime
//! matcher emit its best mappings first; the score is also an admissible filter — a
//! cluster whose quality is below δ can be skipped outright without losing any
//! qualifying mapping.

use serde::{Deserialize, Serialize};
use xsm_matcher::{CandidateSet, Objective};

use crate::cluster::{Cluster, ClusterSet};

/// A cluster together with its quality estimate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankedCluster {
    /// Index of the cluster within the originating [`ClusterSet`].
    pub cluster_index: usize,
    /// Optimistic upper bound on the objective value of any mapping the cluster can
    /// produce (1.0-structural term).
    pub quality: f64,
    /// Whether the cluster is useful (can produce complete mappings at all).
    pub useful: bool,
}

/// Score one cluster: the optimistic `Δ` upper bound described in the module docs.
/// Non-useful clusters score 0.
pub fn cluster_quality(cluster: &Cluster, candidates: &CandidateSet, objective: &Objective) -> f64 {
    let scope = cluster.scope(candidates);
    if !scope.is_useful() {
        return 0.0;
    }
    let node_count = scope.node_count().max(1) as f64;
    let best_sim_sum: f64 = scope
        .personal_nodes()
        .iter()
        .map(|&n| {
            scope
                .candidates_for(n)
                .first()
                .map(|m| m.similarity)
                .unwrap_or(0.0)
        })
        .sum();
    objective.combine(best_sim_sum / node_count, 1.0)
}

/// Rank every cluster of a [`ClusterSet`] by descending quality. Ties break towards the
/// smaller cluster index so the order is deterministic.
pub fn rank_clusters(
    set: &ClusterSet,
    candidates: &CandidateSet,
    objective: &Objective,
) -> Vec<RankedCluster> {
    let mut ranked: Vec<RankedCluster> = set
        .clusters
        .iter()
        .enumerate()
        .map(|(i, cluster)| {
            let scope = cluster.scope(candidates);
            RankedCluster {
                cluster_index: i,
                quality: cluster_quality(cluster, candidates, objective),
                useful: scope.is_useful(),
            }
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.quality
            .partial_cmp(&a.quality)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cluster_index.cmp(&b.cluster_index))
    });
    ranked
}

/// The cluster indexes worth generating mappings in at all for threshold δ: useful
/// clusters whose optimistic quality reaches δ, in descending quality order. Skipping
/// the rest cannot lose any mapping with `Δ ≥ δ` because the quality is an upper bound.
pub fn admissible_cluster_order(
    set: &ClusterSet,
    candidates: &CandidateSet,
    objective: &Objective,
    threshold: f64,
) -> Vec<usize> {
    rank_clusters(set, candidates, objective)
        .into_iter()
        .filter(|r| r.useful && r.quality + 1e-12 >= threshold)
        .map(|r| r.cluster_index)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusteringConfig;
    use crate::kmeans::KMeansClusterer;
    use xsm_matcher::element::{match_elements, ElementMatchConfig, NameElementMatcher};
    use xsm_matcher::generator::branch_and_bound::BranchAndBoundGenerator;
    use xsm_matcher::{MappingGenerator, MatchingProblem};
    use xsm_repo::{GeneratorConfig, RepositoryGenerator, SchemaRepository};

    fn scenario() -> (MatchingProblem, SchemaRepository, CandidateSet, ClusterSet) {
        let problem = MatchingProblem::paper_experiment();
        let repo = RepositoryGenerator::new(GeneratorConfig::small(41)).generate();
        let candidates = match_elements(
            &problem.personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.4),
        );
        let (set, _) =
            KMeansClusterer::new(ClusteringConfig::default()).cluster(&repo, &candidates);
        (problem, repo, candidates, set)
    }

    #[test]
    fn ranking_is_sorted_and_covers_every_cluster() {
        let (problem, _, candidates, set) = scenario();
        let objective = Objective::for_problem(&problem);
        let ranked = rank_clusters(&set, &candidates, &objective);
        assert_eq!(ranked.len(), set.len());
        for w in ranked.windows(2) {
            assert!(w[0].quality + 1e-12 >= w[1].quality);
        }
        for r in &ranked {
            assert!((0.0..=1.0).contains(&r.quality));
            if !r.useful {
                assert_eq!(r.quality, 0.0);
            }
        }
    }

    #[test]
    fn quality_is_an_upper_bound_on_generated_mappings() {
        let (problem, repo, candidates, set) = scenario();
        let objective = Objective::for_problem(&problem);
        let generator = BranchAndBoundGenerator::new();
        for cluster in &set.clusters {
            let quality = cluster_quality(cluster, &candidates, &objective);
            let scope = cluster.scope(&candidates);
            if !scope.is_useful() {
                continue;
            }
            let mut relaxed = problem.clone();
            relaxed.threshold = 0.0;
            let outcome = generator.generate(&relaxed, &repo, &scope);
            for mapping in &outcome.mappings {
                assert!(
                    quality + 1e-9 >= mapping.score,
                    "quality {quality} < achieved {}",
                    mapping.score
                );
            }
        }
    }

    #[test]
    fn admissible_order_skips_only_hopeless_clusters() {
        let (problem, repo, candidates, set) = scenario();
        let objective = Objective::for_problem(&problem);
        let generator = BranchAndBoundGenerator::new();
        let order = admissible_cluster_order(&set, &candidates, &objective, problem.threshold);
        // Every cluster excluded from the order must produce zero qualifying mappings.
        for (i, cluster) in set.clusters.iter().enumerate() {
            if order.contains(&i) {
                continue;
            }
            let scope = cluster.scope(&candidates);
            if !scope.is_useful() {
                continue;
            }
            let outcome = generator.generate(&problem, &repo, &scope);
            assert!(
                outcome.mappings.is_empty(),
                "skipped cluster {i} produced {} qualifying mappings",
                outcome.mappings.len()
            );
        }
        // The order is a permutation of a subset of cluster indexes.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), order.len());
    }

    #[test]
    fn first_ranked_cluster_yields_the_best_mapping_early() {
        let (problem, repo, candidates, set) = scenario();
        let objective = Objective::for_problem(&problem);
        let generator = BranchAndBoundGenerator::new();
        let order = admissible_cluster_order(&set, &candidates, &objective, problem.threshold);
        if order.is_empty() {
            return; // nothing qualifies at δ in this seed — nothing to check
        }
        // Best score over all clusters.
        let mut global_best: f64 = 0.0;
        let mut per_cluster_best = vec![0.0f64; set.len()];
        for (i, cluster) in set.clusters.iter().enumerate() {
            let scope = cluster.scope(&candidates);
            if !scope.is_useful() {
                continue;
            }
            let outcome = generator.generate(&problem, &repo, &scope);
            let best = outcome.mappings.first().map(|m| m.score).unwrap_or(0.0);
            per_cluster_best[i] = best;
            global_best = global_best.max(best);
        }
        // The overall best mapping must live in one of the first few ranked clusters —
        // here we assert the stronger property that the top-quality cluster is within
        // 0.15 of the global optimum (the optimistic bound is not exact, but close).
        let first = order[0];
        assert!(
            per_cluster_best[first] + 0.15 >= global_best,
            "top-ranked cluster best {} vs global best {}",
            per_cluster_best[first],
            global_best
        );
    }
}
