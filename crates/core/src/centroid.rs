//! Centroid (medoid) computation.
//!
//! "In Bellflower, the centroid for a cluster is selected from the mapping elements
//! which belong to the cluster (such centroids are also known as medoids). More
//! specifically, the mapping element which is the center of weight for the cluster is
//! used as a centroid."

use crate::cluster::ClusteredNode;
use crate::distance::ClusterDistance;
use xsm_repo::SchemaRepository;
use xsm_schema::GlobalNodeId;

/// Number of members above which the medoid is computed over a deterministic sample
/// rather than all pairs (keeps huge clusters from costing `O(m²)`).
const MEDOID_SAMPLE_LIMIT: usize = 256;

/// The medoid of a cluster: the member minimising the sum of distances to the other
/// members ("center of weight"). Ties are broken towards the smaller node id so the
/// result is deterministic. Returns `None` for an empty member list.
pub fn medoid(
    repo: &SchemaRepository,
    distance: &dyn ClusterDistance,
    members: &[ClusteredNode],
) -> Option<GlobalNodeId> {
    if members.is_empty() {
        return None;
    }
    if members.len() == 1 {
        return Some(members[0].node);
    }
    // Deterministic sample of reference points for very large clusters.
    let stride = (members.len() / MEDOID_SAMPLE_LIMIT).max(1);
    let reference: Vec<GlobalNodeId> = members.iter().step_by(stride).map(|m| m.node).collect();

    let mut best: Option<(f64, GlobalNodeId)> = None;
    for candidate in members {
        let mut sum = 0.0;
        for &other in &reference {
            // Same tree by construction; unreachable pairs count as a large penalty.
            sum += distance
                .distance(repo, candidate.node, other)
                .unwrap_or(f64::MAX / reference.len() as f64);
        }
        let better = match best {
            None => true,
            Some((best_sum, best_node)) => {
                sum < best_sum - 1e-12 || (sum < best_sum + 1e-12 && candidate.node < best_node)
            }
        };
        if better {
            best = Some((sum, candidate.node));
        }
    }
    best.map(|(_, node)| node)
}

/// The medoid of one whole tree, over plain node ids (no cluster membership
/// required): the node minimising the summed [`ClusterDistance`] to a
/// deterministic sample of the tree's nodes. Same sampling stride, same
/// tie-break and same unreachable-pair penalty as [`medoid`], so the result
/// is a stable per-tree summary. Returns `None` for an empty tree.
pub fn tree_medoid(
    repo: &SchemaRepository,
    distance: &dyn ClusterDistance,
    nodes: &[GlobalNodeId],
) -> Option<GlobalNodeId> {
    if nodes.is_empty() {
        return None;
    }
    if nodes.len() == 1 {
        return Some(nodes[0]);
    }
    let stride = (nodes.len() / MEDOID_SAMPLE_LIMIT).max(1);
    let reference: Vec<GlobalNodeId> = nodes.iter().step_by(stride).copied().collect();

    let mut best: Option<(f64, GlobalNodeId)> = None;
    for &candidate in nodes {
        let mut sum = 0.0;
        for &other in &reference {
            sum += distance
                .distance(repo, candidate, other)
                .unwrap_or(f64::MAX / reference.len() as f64);
        }
        let better = match best {
            None => true,
            Some((best_sum, best_node)) => {
                sum < best_sum - 1e-12 || (sum < best_sum + 1e-12 && candidate < best_node)
            }
        };
        if better {
            best = Some((sum, candidate));
        }
    }
    best.map(|(_, node)| node)
}

/// One [`tree_medoid`] per tree of the repository, in tree order — the
/// per-tree centroid table a snapshot persists. Deterministic given the
/// repository; empty trees get `None`.
pub fn tree_centroids(
    repo: &SchemaRepository,
    distance: &dyn ClusterDistance,
) -> Vec<Option<GlobalNodeId>> {
    repo.trees()
        .map(|(tid, _)| tree_medoid(repo, distance, &repo.tree_node_ids(tid)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::PathLengthDistance;
    use xsm_matcher::MappingElement;
    use xsm_schema::tree::paper_repository_fragment;
    use xsm_schema::{NodeId, TreeId};

    fn member(repo_node: GlobalNodeId) -> ClusteredNode {
        ClusteredNode {
            node: repo_node,
            elements: vec![MappingElement::new(NodeId(0), repo_node, 0.5)],
        }
    }

    fn fig1_repo() -> SchemaRepository {
        SchemaRepository::from_trees(vec![paper_repository_fragment()])
    }

    #[test]
    fn medoid_of_empty_and_singleton() {
        let repo = fig1_repo();
        assert_eq!(medoid(&repo, &PathLengthDistance, &[]), None);
        let only = GlobalNodeId::new(TreeId(0), NodeId(2));
        assert_eq!(
            medoid(&repo, &PathLengthDistance, &[member(only)]),
            Some(only)
        );
    }

    #[test]
    fn medoid_is_the_central_member() {
        let repo = fig1_repo();
        let tree = repo.tree(TreeId(0)).unwrap();
        let gid = |name: &str| GlobalNodeId::new(TreeId(0), tree.find_by_name(name).unwrap());
        // Members: title, authorName, data, book. 'data' is adjacent to title and
        // authorName and one step from book — it minimises the distance sum.
        let members: Vec<ClusteredNode> = ["title", "authorName", "data", "book"]
            .iter()
            .map(|n| member(gid(n)))
            .collect();
        assert_eq!(
            medoid(&repo, &PathLengthDistance, &members),
            Some(gid("data"))
        );
    }

    #[test]
    fn medoid_is_deterministic_under_member_order() {
        let repo = fig1_repo();
        let tree = repo.tree(TreeId(0)).unwrap();
        let gid = |name: &str| GlobalNodeId::new(TreeId(0), tree.find_by_name(name).unwrap());
        let mut members: Vec<ClusteredNode> = ["shelf", "title", "authorName", "data", "book"]
            .iter()
            .map(|n| member(gid(n)))
            .collect();
        let m1 = medoid(&repo, &PathLengthDistance, &members);
        members.reverse();
        let m2 = medoid(&repo, &PathLengthDistance, &members);
        assert_eq!(m1, m2);
    }

    #[test]
    fn two_member_tie_breaks_to_smaller_id() {
        let repo = fig1_repo();
        let a = GlobalNodeId::new(TreeId(0), NodeId(3));
        let b = GlobalNodeId::new(TreeId(0), NodeId(4));
        // Symmetric pair: both have the same distance sum; smaller id wins.
        let m = medoid(&repo, &PathLengthDistance, &[member(b), member(a)]);
        assert_eq!(m, Some(a));
    }
}
