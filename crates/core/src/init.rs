//! Centroid initialisation ("seeding") strategies.
//!
//! The paper: "Bellflower initializes centroids by declaring all the elements of
//! ME_min as centroids" — ME_min being the mapping-element set of the personal node
//! with the fewest candidates, because every useful cluster needs at least one
//! candidate for *every* personal node, so those scarce elements are the best anchors.
//! A random seeding is provided as the ablation baseline.

use rand::prelude::*;
use rand::rngs::StdRng;
use xsm_matcher::CandidateSet;
use xsm_schema::GlobalNodeId;

/// A centroid-initialisation strategy.
pub trait CentroidInit: Send + Sync {
    /// Produce the initial centroid nodes for a candidate set.
    fn seed(&self, candidates: &CandidateSet) -> Vec<GlobalNodeId>;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's heuristic: all elements of `ME_min` become centroids.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeMinSeeding;

impl CentroidInit for MeMinSeeding {
    fn seed(&self, candidates: &CandidateSet) -> Vec<GlobalNodeId> {
        let Some((node, _)) = candidates.min_candidate_node() else {
            return Vec::new();
        };
        let mut seeds: Vec<GlobalNodeId> = candidates
            .candidates_for(node)
            .iter()
            .map(|m| m.repo)
            .collect();
        seeds.sort();
        seeds.dedup();
        seeds
    }
    fn name(&self) -> &'static str {
        "me-min"
    }
}

/// Random seeding of a fixed number of centroids (ablation baseline). Deterministic for
/// a given seed.
#[derive(Debug, Clone, Copy)]
pub struct RandomSeeding {
    /// Number of centroids to draw.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RandomSeeding {
    /// Draw `count` random centroids using `seed`.
    pub fn new(count: usize, seed: u64) -> Self {
        RandomSeeding { count, seed }
    }
}

impl CentroidInit for RandomSeeding {
    fn seed(&self, candidates: &CandidateSet) -> Vec<GlobalNodeId> {
        let mut nodes: Vec<GlobalNodeId> = candidates.iter().map(|m| m.repo).collect();
        nodes.sort();
        nodes.dedup();
        let mut rng = StdRng::seed_from_u64(self.seed);
        nodes.shuffle(&mut rng);
        nodes.truncate(self.count);
        nodes.sort();
        nodes
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_matcher::MappingElement;
    use xsm_schema::{NodeId, TreeId};

    fn gid(tree: u32, node: u32) -> GlobalNodeId {
        GlobalNodeId::new(TreeId(tree), NodeId(node))
    }

    fn candidates() -> CandidateSet {
        let mut set = CandidateSet::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        // Node 2 has the fewest candidates (2) → ME_min.
        for i in 0..5 {
            set.push(MappingElement::new(NodeId(0), gid(0, i), 0.8));
        }
        for i in 5..9 {
            set.push(MappingElement::new(NodeId(1), gid(0, i), 0.7));
        }
        set.push(MappingElement::new(NodeId(2), gid(0, 9), 0.9));
        set.push(MappingElement::new(NodeId(2), gid(1, 1), 0.85));
        set.sort();
        set
    }

    #[test]
    fn me_min_seeds_are_exactly_the_smallest_set() {
        let seeds = MeMinSeeding.seed(&candidates());
        assert_eq!(seeds, vec![gid(0, 9), gid(1, 1)]);
        assert_eq!(MeMinSeeding.name(), "me-min");
    }

    #[test]
    fn me_min_on_empty_set_is_empty() {
        assert!(MeMinSeeding.seed(&CandidateSet::new(vec![])).is_empty());
    }

    #[test]
    fn me_min_dedups_shared_candidates() {
        let mut set = CandidateSet::new(vec![NodeId(0), NodeId(1)]);
        set.push(MappingElement::new(NodeId(0), gid(0, 3), 0.9));
        set.push(MappingElement::new(NodeId(1), gid(0, 3), 0.9));
        set.push(MappingElement::new(NodeId(1), gid(0, 4), 0.5));
        set.sort();
        // ME_min is node 0 with one candidate.
        assert_eq!(MeMinSeeding.seed(&set), vec![gid(0, 3)]);
    }

    #[test]
    fn random_seeding_is_deterministic_and_bounded() {
        let set = candidates();
        let a = RandomSeeding::new(3, 11).seed(&set);
        let b = RandomSeeding::new(3, 11).seed(&set);
        let c = RandomSeeding::new(3, 12).seed(&set);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        // Another seed generally differs (not guaranteed, but true for this data).
        assert_ne!(a, c);
        // Asking for more centroids than nodes returns all distinct nodes.
        let all = RandomSeeding::new(100, 1).seed(&set);
        assert_eq!(all.len(), set.distinct_repo_nodes());
    }
}
