//! Clusters of mapping elements.
//!
//! A cluster is a set of repository nodes (each carrying the mapping elements that
//! reference it) within a single repository tree, represented by a *centroid* node.
//! Clusters never span trees because the clustering distance (path length) is only
//! defined within a tree.

use serde::{Deserialize, Serialize};
use xsm_matcher::{CandidateSet, MappingElement};
use xsm_schema::{GlobalNodeId, TreeId};

/// A clustered repository node: the node plus every mapping element referencing it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusteredNode {
    /// The repository node.
    pub node: GlobalNodeId,
    /// Mapping elements `(personal, repo = node, sim)` that reference the node.
    pub elements: Vec<MappingElement>,
}

impl ClusteredNode {
    /// Number of mapping elements carried by the node.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }
}

/// One cluster of mapping elements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// The repository tree every member belongs to.
    pub tree: TreeId,
    /// The centroid (a member node — a medoid in k-means terms).
    pub centroid: GlobalNodeId,
    /// Member nodes.
    pub members: Vec<ClusteredNode>,
}

impl Cluster {
    /// Create a cluster with a centroid and members (members may be empty).
    pub fn new(tree: TreeId, centroid: GlobalNodeId, members: Vec<ClusteredNode>) -> Self {
        Cluster {
            tree,
            centroid,
            members,
        }
    }

    /// Number of member repository nodes (the "size" used by Fig. 4's histogram).
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Total number of mapping elements across the members.
    pub fn element_count(&self) -> usize {
        self.members.iter().map(|m| m.element_count()).sum()
    }

    /// The member node ids.
    pub fn node_ids(&self) -> Vec<GlobalNodeId> {
        self.members.iter().map(|m| m.node).collect()
    }

    /// Restrict a global candidate set to this cluster's members — the scope handed to
    /// the mapping generator for this cluster.
    pub fn scope(&self, candidates: &CandidateSet) -> CandidateSet {
        let mut nodes = self.node_ids();
        nodes.sort();
        candidates.restrict(|m| nodes.binary_search(&m.repo).is_ok())
    }

    /// A cluster is *useful* if it holds at least one mapping element for every
    /// personal-schema node (only useful clusters can produce complete mappings).
    pub fn is_useful(&self, candidates: &CandidateSet) -> bool {
        self.scope(candidates).is_useful()
    }
}

/// The result of a clustering pass: clusters plus the nodes that could not be assigned
/// to any centroid (their tree received no centroid).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterSet {
    /// The clusters.
    pub clusters: Vec<Cluster>,
    /// Repository nodes left unassigned (no centroid in their tree).
    pub unassigned: Vec<ClusteredNode>,
}

impl ClusterSet {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Total number of member nodes over all clusters.
    pub fn total_members(&self) -> usize {
        self.clusters.iter().map(|c| c.size()).sum()
    }

    /// Cluster sizes (used by the Fig. 4 histogram).
    pub fn sizes(&self) -> Vec<usize> {
        self.clusters.iter().map(|c| c.size()).collect()
    }

    /// Only the useful clusters with respect to a candidate set.
    pub fn useful<'a>(
        &'a self,
        candidates: &'a CandidateSet,
    ) -> impl Iterator<Item = &'a Cluster> + 'a {
        self.clusters.iter().filter(|c| c.is_useful(candidates))
    }

    /// Count of useful clusters (Tab. 1a, first column).
    pub fn useful_count(&self, candidates: &CandidateSet) -> usize {
        self.useful(candidates).count()
    }
}

/// Group a candidate set's distinct repository nodes into [`ClusteredNode`]s — the
/// element population the k-means algorithm clusters.
pub fn collect_clustered_nodes(candidates: &CandidateSet) -> Vec<ClusteredNode> {
    use std::collections::BTreeMap;
    let mut by_node: BTreeMap<GlobalNodeId, Vec<MappingElement>> = BTreeMap::new();
    for m in candidates.iter() {
        by_node.entry(m.repo).or_default().push(*m);
    }
    by_node
        .into_iter()
        .map(|(node, elements)| ClusteredNode { node, elements })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_schema::NodeId;

    fn gid(tree: u32, node: u32) -> GlobalNodeId {
        GlobalNodeId::new(TreeId(tree), NodeId(node))
    }

    fn sample_candidates() -> CandidateSet {
        let mut set = CandidateSet::new(vec![NodeId(0), NodeId(1)]);
        set.push(MappingElement::new(NodeId(0), gid(0, 1), 0.9));
        set.push(MappingElement::new(NodeId(0), gid(0, 3), 0.6));
        set.push(MappingElement::new(NodeId(1), gid(0, 3), 0.8));
        set.push(MappingElement::new(NodeId(1), gid(0, 5), 0.7));
        set.push(MappingElement::new(NodeId(1), gid(1, 2), 0.95));
        set.sort();
        set
    }

    #[test]
    fn collect_groups_elements_by_repo_node() {
        let nodes = collect_clustered_nodes(&sample_candidates());
        assert_eq!(nodes.len(), 4);
        let shared = nodes.iter().find(|n| n.node == gid(0, 3)).unwrap();
        assert_eq!(shared.element_count(), 2);
    }

    #[test]
    fn cluster_scope_and_usefulness() {
        let candidates = sample_candidates();
        let nodes = collect_clustered_nodes(&candidates);
        let members: Vec<ClusteredNode> = nodes
            .iter()
            .filter(|n| n.node.tree == TreeId(0))
            .cloned()
            .collect();
        let cluster = Cluster::new(TreeId(0), gid(0, 1), members);
        assert_eq!(cluster.size(), 3);
        assert_eq!(cluster.element_count(), 4);
        let scope = cluster.scope(&candidates);
        assert_eq!(scope.total_candidates(), 4);
        assert!(cluster.is_useful(&candidates));

        // A cluster holding only node 5 covers personal node 1 but not node 0.
        let narrow = Cluster::new(
            TreeId(0),
            gid(0, 5),
            nodes
                .iter()
                .filter(|n| n.node == gid(0, 5))
                .cloned()
                .collect(),
        );
        assert!(!narrow.is_useful(&candidates));
    }

    #[test]
    fn cluster_set_statistics() {
        let candidates = sample_candidates();
        let nodes = collect_clustered_nodes(&candidates);
        let tree0: Vec<ClusteredNode> = nodes
            .iter()
            .filter(|n| n.node.tree == TreeId(0))
            .cloned()
            .collect();
        let tree1: Vec<ClusteredNode> = nodes
            .iter()
            .filter(|n| n.node.tree == TreeId(1))
            .cloned()
            .collect();
        let set = ClusterSet {
            clusters: vec![
                Cluster::new(TreeId(0), gid(0, 1), tree0),
                Cluster::new(TreeId(1), gid(1, 2), tree1),
            ],
            unassigned: vec![],
        };
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.total_members(), 4);
        assert_eq!(set.sizes(), vec![3, 1]);
        // Tree-1 cluster only covers personal node 1 → not useful.
        assert_eq!(set.useful_count(&candidates), 1);
    }

    #[test]
    fn empty_cluster_set() {
        let set = ClusterSet::default();
        assert!(set.is_empty());
        assert_eq!(set.total_members(), 0);
        assert_eq!(set.useful_count(&CandidateSet::new(vec![])), 0);
    }
}
