//! Convergence criteria for the k-means loop (Sec. 4, "Convergence criteria").
//!
//! "Bellflower monitors, in each iteration, the number of mapping elements which
//! switched from one cluster to another, and the change in the number of clusters.
//! When these numbers drop below a certain threshold, e.g. 5 percent of the total
//! number of mapping elements/clusters, the algorithm terminates."

use crate::config::ClusteringConfig;

/// Tracks per-iteration movement and cluster-count change and decides when to stop.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTracker {
    previous_cluster_count: Option<usize>,
    /// Elements moved in each observed iteration.
    pub moved_history: Vec<usize>,
    /// Cluster counts after each observed iteration.
    pub cluster_history: Vec<usize>,
}

impl ConvergenceTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one iteration and report whether the algorithm has converged.
    ///
    /// * `moved` — number of elements that switched clusters this iteration,
    /// * `total_elements` — total number of elements being clustered,
    /// * `cluster_count` — number of clusters after this iteration's reclustering.
    pub fn observe(
        &mut self,
        moved: usize,
        total_elements: usize,
        cluster_count: usize,
        config: &ClusteringConfig,
    ) -> bool {
        self.moved_history.push(moved);
        self.cluster_history.push(cluster_count);

        let stable_elements = if total_elements == 0 {
            true
        } else {
            (moved as f64 / total_elements as f64) <= config.stability_fraction
        };
        let stable_clusters = match self.previous_cluster_count {
            None => false, // need at least two observations to call the count stable
            Some(prev) if prev == 0 && cluster_count == 0 => true,
            Some(prev) => {
                let base = prev.max(1) as f64;
                ((cluster_count as f64 - prev as f64).abs() / base)
                    <= config.cluster_change_fraction
            }
        };
        self.previous_cluster_count = Some(cluster_count);
        stable_elements && stable_clusters
    }

    /// Number of iterations observed so far.
    pub fn iterations(&self) -> usize {
        self.moved_history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ClusteringConfig {
        ClusteringConfig::default() // 5% / 5%
    }

    #[test]
    fn first_iteration_never_converges() {
        let mut t = ConvergenceTracker::new();
        assert!(!t.observe(0, 100, 10, &config()));
        assert_eq!(t.iterations(), 1);
    }

    #[test]
    fn converges_when_both_criteria_hold() {
        let mut t = ConvergenceTracker::new();
        assert!(!t.observe(40, 100, 12, &config()));
        // 3% moved, cluster count unchanged → converged.
        assert!(t.observe(3, 100, 12, &config()));
        assert_eq!(t.iterations(), 2);
    }

    #[test]
    fn does_not_converge_when_elements_still_move() {
        let mut t = ConvergenceTracker::new();
        t.observe(50, 100, 10, &config());
        assert!(!t.observe(20, 100, 10, &config()));
    }

    #[test]
    fn does_not_converge_when_cluster_count_still_changes() {
        let mut t = ConvergenceTracker::new();
        t.observe(2, 100, 20, &config());
        // Only 1% of elements moved, but the cluster count dropped by 50%.
        assert!(!t.observe(1, 100, 10, &config()));
        // Next iteration with a stable count converges.
        assert!(t.observe(1, 100, 10, &config()));
    }

    #[test]
    fn zero_elements_is_immediately_stable_after_two_looks() {
        let mut t = ConvergenceTracker::new();
        assert!(!t.observe(0, 0, 0, &config()));
        assert!(t.observe(0, 0, 0, &config()));
    }

    #[test]
    fn history_is_recorded() {
        let mut t = ConvergenceTracker::new();
        t.observe(10, 100, 9, &config());
        t.observe(5, 100, 8, &config());
        assert_eq!(t.moved_history, vec![10, 5]);
        assert_eq!(t.cluster_history, vec![9, 8]);
    }
}
