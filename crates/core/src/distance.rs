//! Distance measures between mapping elements and centroids.
//!
//! "In Bellflower, the distance measure distance(n′,m′) is the actual tree distance
//! (i.e., path length) between the centroid node n′ and the mapping element m′. …
//! Bellflower uses node labeling techniques to provide low-cost computation of path
//! lengths." The paper also notes the measure must match the objective function and
//! anticipates hybrid measures (future research item 3); [`HybridDistance`] implements
//! that extension.

use xsm_repo::SchemaRepository;
use xsm_schema::GlobalNodeId;

/// A distance between two repository nodes for clustering purposes. Lower is closer;
/// `None` means "infinitely far" (different trees).
pub trait ClusterDistance: Send + Sync {
    /// Distance between `a` and `b`, or `None` when undefined (different trees).
    fn distance(&self, repo: &SchemaRepository, a: GlobalNodeId, b: GlobalNodeId) -> Option<f64>;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's measure: tree path length via the node labelling.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathLengthDistance;

impl ClusterDistance for PathLengthDistance {
    fn distance(&self, repo: &SchemaRepository, a: GlobalNodeId, b: GlobalNodeId) -> Option<f64> {
        repo.distance(a, b).map(|d| d as f64)
    }
    fn name(&self) -> &'static str {
        "path-length"
    }
}

/// A hybrid measure: path length stretched by name dissimilarity, so that elements
/// that are structurally close *and* lexically close to the centroid gravitate
/// together. `distance = path · (1 + w·(1 − sim(name_a, name_b)))`.
#[derive(Debug, Clone, Copy)]
pub struct HybridDistance {
    /// Weight of the lexical stretch; 0 reduces to pure path length.
    pub name_weight: f64,
}

impl Default for HybridDistance {
    fn default() -> Self {
        HybridDistance { name_weight: 1.0 }
    }
}

impl ClusterDistance for HybridDistance {
    fn distance(&self, repo: &SchemaRepository, a: GlobalNodeId, b: GlobalNodeId) -> Option<f64> {
        let path = repo.distance(a, b)? as f64;
        let sim = xsm_similarity::compare_string_fuzzy(repo.name_of(a), repo.name_of(b));
        Some(path * (1.0 + self.name_weight * (1.0 - sim)))
    }
    fn name(&self) -> &'static str {
        "hybrid(path,name)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_schema::tree::{paper_personal_schema, paper_repository_fragment};
    use xsm_schema::{NodeId, TreeId};

    fn repo() -> SchemaRepository {
        SchemaRepository::from_trees(vec![paper_repository_fragment(), paper_personal_schema()])
    }

    #[test]
    fn path_length_matches_repository_distance() {
        let r = repo();
        let t0 = r.tree(TreeId(0)).unwrap();
        let title = GlobalNodeId::new(TreeId(0), t0.find_by_name("title").unwrap());
        let shelf = GlobalNodeId::new(TreeId(0), t0.find_by_name("shelf").unwrap());
        let d = PathLengthDistance;
        assert_eq!(d.distance(&r, title, shelf), Some(3.0));
        assert_eq!(d.distance(&r, title, title), Some(0.0));
        assert_eq!(d.name(), "path-length");
    }

    #[test]
    fn cross_tree_distance_is_none() {
        let r = repo();
        let a = GlobalNodeId::new(TreeId(0), NodeId(0));
        let b = GlobalNodeId::new(TreeId(1), NodeId(0));
        assert_eq!(PathLengthDistance.distance(&r, a, b), None);
        assert_eq!(HybridDistance::default().distance(&r, a, b), None);
    }

    #[test]
    fn hybrid_stretches_lexically_distant_pairs() {
        let r = repo();
        let t0 = r.tree(TreeId(0)).unwrap();
        let title = GlobalNodeId::new(TreeId(0), t0.find_by_name("title").unwrap());
        let author = GlobalNodeId::new(TreeId(0), t0.find_by_name("authorName").unwrap());
        let shelf = GlobalNodeId::new(TreeId(0), t0.find_by_name("shelf").unwrap());
        let h = HybridDistance::default();
        let p = PathLengthDistance;
        // Hybrid distance is never smaller than pure path length (names differ).
        assert!(h.distance(&r, title, author).unwrap() >= p.distance(&r, title, author).unwrap());
        assert!(h.distance(&r, title, shelf).unwrap() >= p.distance(&r, title, shelf).unwrap());
        // Zero weight reduces to path length.
        let h0 = HybridDistance { name_weight: 0.0 };
        assert_eq!(h0.distance(&r, title, shelf), p.distance(&r, title, shelf));
    }
}
