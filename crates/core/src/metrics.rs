//! Effectiveness metrics: preserved-mapping curves (Figs. 5 and 6) and search-space
//! reduction factors.
//!
//! The non-clustered matcher finds *all* mappings with `Δ ≥ δ`; the clustered matcher
//! finds a subset. The *preservation percentage* at threshold `δ'` is the fraction of
//! the reference mappings with `Δ ≥ δ'` that the clustered run also produced. The
//! paper's central claim is that this fraction grows towards 1 as `δ'` grows — the
//! mappings clustering loses are mostly the low-ranked ones.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use xsm_matcher::SchemaMapping;

/// One point of a preservation curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreservationPoint {
    /// The threshold δ this point is evaluated at.
    pub threshold: f64,
    /// Number of reference (non-clustered) mappings with `Δ ≥ threshold`.
    pub reference_count: usize,
    /// How many of those the clustered run preserved.
    pub preserved_count: usize,
    /// `preserved_count / reference_count` (1.0 when the reference set is empty).
    pub fraction: f64,
}

/// A canonical identity key for a schema mapping: the sorted set of
/// `(personal, repository)` node pairs. Scores are not part of the identity.
fn mapping_key(mapping: &SchemaMapping) -> Vec<(u32, u32, u32)> {
    let mut key: Vec<(u32, u32, u32)> = mapping
        .pairs()
        .iter()
        .map(|p| (p.personal.0, p.repo.tree.0, p.repo.node.0))
        .collect();
    key.sort_unstable();
    key
}

/// Compute the preservation curve of `clustered` against `reference` at the given
/// thresholds (Fig. 5/6). Thresholds are evaluated independently; the returned points
/// are in the order of `thresholds`.
pub fn preservation_curve(
    reference: &[SchemaMapping],
    clustered: &[SchemaMapping],
    thresholds: &[f64],
) -> Vec<PreservationPoint> {
    let clustered_keys: HashSet<Vec<(u32, u32, u32)>> = clustered.iter().map(mapping_key).collect();
    thresholds
        .iter()
        .map(|&threshold| {
            let relevant: Vec<&SchemaMapping> =
                reference.iter().filter(|m| m.score >= threshold).collect();
            let preserved = relevant
                .iter()
                .filter(|m| clustered_keys.contains(&mapping_key(m)))
                .count();
            let fraction = if relevant.is_empty() {
                1.0
            } else {
                preserved as f64 / relevant.len() as f64
            };
            PreservationPoint {
                threshold,
                reference_count: relevant.len(),
                preserved_count: preserved,
                fraction,
            }
        })
        .collect()
}

/// The default threshold grid used by Figs. 5 and 6: 0.75 to 1.0 in steps of 0.025.
pub fn default_threshold_grid() -> Vec<f64> {
    (0..=10).map(|i| 0.75 + i as f64 * 0.025).collect()
}

/// Search-space reduction factor of a clustered run relative to the baseline
/// (`baseline / clustered`); `None` when the clustered space is zero.
pub fn search_space_reduction(baseline: u128, clustered: u128) -> Option<f64> {
    if clustered == 0 {
        None
    } else {
        Some(baseline as f64 / clustered as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_matcher::MappingElement;
    use xsm_schema::{GlobalNodeId, NodeId, TreeId};

    fn mapping(tree: u32, nodes: &[(u32, u32)], score: f64) -> SchemaMapping {
        SchemaMapping::with_score(
            nodes
                .iter()
                .map(|&(p, r)| {
                    MappingElement::new(NodeId(p), GlobalNodeId::new(TreeId(tree), NodeId(r)), 1.0)
                })
                .collect(),
            score,
        )
    }

    #[test]
    fn full_preservation_when_sets_match() {
        let reference = vec![
            mapping(0, &[(0, 1), (1, 2)], 0.9),
            mapping(0, &[(0, 3), (1, 4)], 0.8),
        ];
        let curve = preservation_curve(&reference, &reference, &[0.75, 0.85]);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].reference_count, 2);
        assert_eq!(curve[0].preserved_count, 2);
        assert_eq!(curve[0].fraction, 1.0);
        assert_eq!(curve[1].reference_count, 1);
        assert_eq!(curve[1].fraction, 1.0);
    }

    #[test]
    fn partial_preservation_counts_only_matching_pair_sets() {
        let reference = vec![
            mapping(0, &[(0, 1), (1, 2)], 0.95),
            mapping(0, &[(0, 3), (1, 4)], 0.85),
            mapping(1, &[(0, 1), (1, 2)], 0.80),
        ];
        // The clustered run kept only the first mapping (order of pairs differs —
        // identity must not depend on pair order).
        let clustered = vec![mapping(0, &[(1, 2), (0, 1)], 0.95)];
        let curve = preservation_curve(&reference, &clustered, &[0.75, 0.9]);
        assert_eq!(curve[0].reference_count, 3);
        assert_eq!(curve[0].preserved_count, 1);
        assert!((curve[0].fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(curve[1].reference_count, 1);
        assert_eq!(curve[1].fraction, 1.0);
    }

    #[test]
    fn empty_reference_yields_fraction_one() {
        let curve = preservation_curve(&[], &[], &[0.75]);
        assert_eq!(curve[0].reference_count, 0);
        assert_eq!(curve[0].fraction, 1.0);
    }

    #[test]
    fn preservation_is_monotone_in_practice_for_nested_sets() {
        // Clustered keeps exactly the high-scoring half → fraction rises with δ.
        let reference: Vec<SchemaMapping> = (0..10)
            .map(|i| mapping(0, &[(0, i), (1, i + 100)], 0.75 + i as f64 * 0.025))
            .collect();
        let clustered: Vec<SchemaMapping> = reference
            .iter()
            .filter(|m| m.score >= 0.85)
            .cloned()
            .collect();
        let grid = default_threshold_grid();
        let curve = preservation_curve(&reference, &clustered, &grid);
        for w in curve.windows(2) {
            assert!(w[1].fraction >= w[0].fraction - 1e-12);
        }
        assert!(curve.last().unwrap().fraction >= 0.99);
    }

    #[test]
    fn default_grid_spans_paper_range() {
        let grid = default_threshold_grid();
        assert_eq!(grid.len(), 11);
        assert!((grid[0] - 0.75).abs() < 1e-12);
        assert!((grid.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_factor() {
        assert_eq!(search_space_reduction(100, 0), None);
        assert!((search_space_reduction(11_962_741, 168_877).unwrap() - 70.8).abs() < 0.2);
    }
}
