//! Reclustering: join and remove steps applied after each k-means iteration (Sec. 4).
//!
//! * **Join** — "unites clusters if the centroids of these clusters are near each
//!   other", curing the *tiny cluster* problem caused by competing nearby seeds.
//! * **Remove** — "removes all clusters with less than a certain number of mapping
//!   elements. The mapping elements belonging to these clusters are free to join other
//!   clusters in the neighborhood" (they are re-assigned in the next iteration).

use crate::centroid::medoid;
use crate::cluster::{Cluster, ClusteredNode};
use crate::distance::ClusterDistance;
use xsm_repo::SchemaRepository;

/// Join clusters whose centroids lie within `join_distance` of each other (transitively,
/// within one tree). Each merged cluster gets a freshly computed medoid centroid.
pub fn join_clusters(
    repo: &SchemaRepository,
    distance: &dyn ClusterDistance,
    clusters: Vec<Cluster>,
    join_distance: u32,
) -> Vec<Cluster> {
    let n = clusters.len();
    if n <= 1 {
        return clusters;
    }
    // Union-find over cluster indices.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if clusters[i].tree != clusters[j].tree {
                continue;
            }
            if let Some(d) = distance.distance(repo, clusters[i].centroid, clusters[j].centroid) {
                if d <= join_distance as f64 {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[rj.max(ri)] = rj.min(ri);
                    }
                }
            }
        }
    }
    // Group members by root.
    let mut groups: std::collections::BTreeMap<usize, Vec<ClusteredNode>> =
        std::collections::BTreeMap::new();
    let mut trees = std::collections::BTreeMap::new();
    for (i, cluster) in clusters.into_iter().enumerate() {
        let root = find(&mut parent, i);
        trees.insert(root, cluster.tree);
        groups.entry(root).or_default().extend(cluster.members);
    }
    groups
        .into_iter()
        .filter_map(|(root, mut members)| {
            members.sort_by_key(|m| m.node);
            members.dedup_by_key(|m| m.node);
            let tree = trees[&root];
            let centroid = medoid(repo, distance, &members)?;
            Some(Cluster::new(tree, centroid, members))
        })
        .collect()
}

/// Remove clusters with fewer than `min_size` members. Returns the surviving clusters
/// and the freed members (which the next k-means iteration re-assigns).
pub fn remove_small_clusters(
    clusters: Vec<Cluster>,
    min_size: usize,
) -> (Vec<Cluster>, Vec<ClusteredNode>) {
    let mut kept = Vec::new();
    let mut freed = Vec::new();
    for cluster in clusters {
        if cluster.size() < min_size {
            freed.extend(cluster.members);
        } else {
            kept.push(cluster);
        }
    }
    (kept, freed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::PathLengthDistance;
    use xsm_matcher::MappingElement;
    use xsm_schema::tree::paper_repository_fragment;
    use xsm_schema::{GlobalNodeId, NodeId, TreeId};

    fn fig1_repo() -> SchemaRepository {
        SchemaRepository::from_trees(vec![paper_repository_fragment()])
    }

    fn member(node: GlobalNodeId) -> ClusteredNode {
        ClusteredNode {
            node,
            elements: vec![MappingElement::new(NodeId(0), node, 0.5)],
        }
    }

    fn named(repo: &SchemaRepository, name: &str) -> GlobalNodeId {
        let tree = repo.tree(TreeId(0)).unwrap();
        GlobalNodeId::new(TreeId(0), tree.find_by_name(name).unwrap())
    }

    #[test]
    fn join_merges_nearby_clusters() {
        let repo = fig1_repo();
        let title = named(&repo, "title");
        let author = named(&repo, "authorName");
        let address = named(&repo, "address");
        // title and authorName are 2 apart; address is 4 from title.
        let clusters = vec![
            Cluster::new(TreeId(0), title, vec![member(title)]),
            Cluster::new(TreeId(0), author, vec![member(author)]),
            Cluster::new(TreeId(0), address, vec![member(address)]),
        ];
        let joined = join_clusters(&repo, &PathLengthDistance, clusters, 2);
        assert_eq!(joined.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = joined.iter().map(|c| c.size()).collect();
            s.sort();
            s
        };
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn join_with_large_threshold_merges_everything_in_a_tree() {
        let repo = fig1_repo();
        let names = ["title", "authorName", "shelf", "address", "book"];
        let clusters: Vec<Cluster> = names
            .iter()
            .map(|n| {
                let g = named(&repo, n);
                Cluster::new(TreeId(0), g, vec![member(g)])
            })
            .collect();
        let joined = join_clusters(&repo, &PathLengthDistance, clusters, 10);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].size(), 5);
        // The merged centroid is a member.
        assert!(joined[0].node_ids().contains(&joined[0].centroid));
    }

    #[test]
    fn join_never_merges_across_trees() {
        let repo = SchemaRepository::from_trees(vec![
            paper_repository_fragment(),
            paper_repository_fragment(),
        ]);
        let a = GlobalNodeId::new(TreeId(0), NodeId(0));
        let b = GlobalNodeId::new(TreeId(1), NodeId(0));
        let clusters = vec![
            Cluster::new(TreeId(0), a, vec![member(a)]),
            Cluster::new(TreeId(1), b, vec![member(b)]),
        ];
        let joined = join_clusters(&repo, &PathLengthDistance, clusters, 100);
        assert_eq!(joined.len(), 2);
    }

    #[test]
    fn join_deduplicates_shared_members() {
        let repo = fig1_repo();
        let title = named(&repo, "title");
        let author = named(&repo, "authorName");
        let clusters = vec![
            Cluster::new(TreeId(0), title, vec![member(title), member(author)]),
            Cluster::new(TreeId(0), author, vec![member(author)]),
        ];
        let joined = join_clusters(&repo, &PathLengthDistance, clusters, 3);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].size(), 2);
    }

    #[test]
    fn remove_small_frees_members() {
        let repo = fig1_repo();
        let title = named(&repo, "title");
        let author = named(&repo, "authorName");
        let shelf = named(&repo, "shelf");
        let clusters = vec![
            Cluster::new(TreeId(0), title, vec![member(title), member(author)]),
            Cluster::new(TreeId(0), shelf, vec![member(shelf)]),
        ];
        let (kept, freed) = remove_small_clusters(clusters, 2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].size(), 2);
        assert_eq!(freed.len(), 1);
        assert_eq!(freed[0].node, shelf);
        // Threshold 0/1 keeps everything.
        let (kept2, freed2) = remove_small_clusters(kept, 1);
        assert_eq!(kept2.len(), 1);
        assert!(freed2.is_empty());
    }

    #[test]
    fn join_of_zero_or_one_cluster_is_identity() {
        let repo = fig1_repo();
        assert!(join_clusters(&repo, &PathLengthDistance, vec![], 3).is_empty());
        let title = named(&repo, "title");
        let one = vec![Cluster::new(TreeId(0), title, vec![member(title)])];
        let joined = join_clusters(&repo, &PathLengthDistance, one.clone(), 3);
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].centroid, one[0].centroid);
    }
}
