//! Report structures shared by the experiments: cluster-size histograms (Fig. 4) and
//! the Tab. 1a cluster-statistics row.

use serde::{Deserialize, Serialize};

/// A histogram of cluster sizes over power-of-two buckets
/// `[1,1], [2,3], [4,7], [8,15], …` — the x-axis of Fig. 4.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizeHistogram {
    /// Inclusive bucket bounds `(lo, hi)`.
    pub buckets: Vec<(usize, usize)>,
    /// Number of clusters per bucket.
    pub counts: Vec<usize>,
    /// Clusters of size 0 (not shown in the paper's figure but tracked for sanity).
    pub empty_clusters: usize,
}

impl SizeHistogram {
    /// Build the histogram from a list of cluster sizes. The number of buckets adapts
    /// to the largest size, with a minimum of the paper's eight buckets
    /// (`[1,1] … [128,255]`).
    pub fn from_sizes(sizes: &[usize]) -> Self {
        let max = sizes.iter().copied().max().unwrap_or(0).max(255);
        let mut buckets = Vec::new();
        let mut lo = 1usize;
        while lo <= max {
            let hi = lo * 2 - 1;
            buckets.push((lo, hi));
            lo *= 2;
        }
        let mut counts = vec![0usize; buckets.len()];
        let mut empty_clusters = 0usize;
        for &s in sizes {
            if s == 0 {
                empty_clusters += 1;
                continue;
            }
            let idx = usize::BITS as usize - 1 - s.leading_zeros() as usize;
            counts[idx] += 1;
        }
        SizeHistogram {
            buckets,
            counts,
            empty_clusters,
        }
    }

    /// Total number of (non-empty) clusters counted.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Human-readable bucket labels (`"[1,1]"`, `"[2,3]"`, …).
    pub fn labels(&self) -> Vec<String> {
        self.buckets
            .iter()
            .map(|(lo, hi)| format!("[{lo},{hi}]"))
            .collect()
    }

    /// Render as an aligned two-row table (labels / counts) for console output.
    pub fn render(&self) -> String {
        let labels = self.labels();
        let mut header = String::new();
        let mut row = String::new();
        for (label, count) in labels.iter().zip(&self.counts) {
            let width = label.len().max(count.to_string().len()) + 2;
            header.push_str(&format!("{label:>width$}"));
            row.push_str(&format!("{count:>width$}"));
        }
        format!("{header}\n{row}")
    }
}

/// The Tab. 1a row: properties of the useful clusters produced by one variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ClusterStatsRow {
    /// Number of useful clusters (clusters able to deliver complete mappings).
    pub useful_clusters: usize,
    /// Average number of mapping elements (distinct repository nodes) per useful cluster.
    pub avg_mapping_elements: f64,
    /// Total search-space size summed over the useful clusters
    /// ("total # of schema mappings").
    pub total_search_space: u128,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment_matches_fig4_axes() {
        let h = SizeHistogram::from_sizes(&[1, 1, 2, 3, 4, 7, 8, 15, 16, 200]);
        assert_eq!(h.buckets[0], (1, 1));
        assert_eq!(h.buckets[1], (2, 3));
        assert_eq!(h.buckets[2], (4, 7));
        assert_eq!(h.buckets[7], (128, 255));
        assert_eq!(h.counts[0], 2); // two clusters of size 1
        assert_eq!(h.counts[1], 2); // sizes 2 and 3
        assert_eq!(h.counts[2], 2); // 4 and 7
        assert_eq!(h.counts[3], 2); // 8 and 15
        assert_eq!(h.counts[4], 1); // 16
        assert_eq!(h.counts[7], 1); // 200
        assert_eq!(h.total(), 10);
        assert_eq!(h.empty_clusters, 0);
    }

    #[test]
    fn empty_sizes_and_zero_sized_clusters() {
        let h = SizeHistogram::from_sizes(&[]);
        assert_eq!(h.total(), 0);
        assert_eq!(h.buckets.len(), 8); // minimum eight buckets like the figure
        let h = SizeHistogram::from_sizes(&[0, 0, 5]);
        assert_eq!(h.empty_clusters, 2);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn histogram_adapts_to_huge_clusters() {
        let h = SizeHistogram::from_sizes(&[1000]);
        assert!(h.buckets.len() > 8);
        assert_eq!(h.total(), 1);
        let idx = h
            .buckets
            .iter()
            .position(|&(lo, hi)| lo <= 1000 && 1000 <= hi)
            .unwrap();
        assert_eq!(h.counts[idx], 1);
    }

    #[test]
    fn labels_and_render() {
        let h = SizeHistogram::from_sizes(&[1, 2, 4]);
        let labels = h.labels();
        assert_eq!(labels[0], "[1,1]");
        assert_eq!(labels[2], "[4,7]");
        let rendered = h.render();
        assert_eq!(rendered.lines().count(), 2);
        assert!(rendered.contains("[1,1]"));
    }
}
