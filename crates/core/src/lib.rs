//! # xsm-core — clustered schema matching (the paper's contribution)
//!
//! This crate implements the *clustered schema matching* technique of Smiljanic, van
//! Keulen and Jonker (ICDE 2006): an intermediate clustering step inserted between the
//! element-matching and mapping-generation stages of a classic schema matcher
//! (Fig. 3 of the paper).
//!
//! The clusterer ([`kmeans::KMeansClusterer`]) partitions the repository's *mapping
//! elements* into [`cluster::Cluster`]s using an adapted k-means:
//!
//! * **distance measure** — the tree (path-length) distance between a mapping element
//!   and a centroid, computed in O(1) from the node labelling ([`distance`]),
//! * **centroid initialisation** — every element of `ME_min` (the personal node with
//!   the fewest mapping elements) seeds one centroid ([`init`]),
//! * **medoid centroids** — the member that is the "center of weight" of its cluster
//!   ([`centroid`]),
//! * **reclustering** — join clusters whose centroids are near each other, remove tiny
//!   clusters ([`recluster`]),
//! * **convergence** — stop when the fraction of elements switching clusters and the
//!   change in cluster count drop below a threshold ([`convergence`]).
//!
//! The mapping generator then runs **per cluster** instead of per repository tree,
//! shrinking the search space from `O(|ME_n|^{|N_s|})` to `O(c·(|ME_n|/c)^{|N_s|})`
//! at the price of losing some (mostly low-ranked) mappings. [`pipeline::ClusteredMatcher`]
//! wires the whole thing together and produces the cluster/generator statistics that
//! Tab. 1 and Figs. 4–6 of the paper report; [`metrics`] computes the preserved-mapping
//! curves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centroid;
pub mod cluster;
pub mod config;
pub mod convergence;
pub mod distance;
pub mod init;
pub mod kmeans;
pub mod metrics;
pub mod ordering;
pub mod pipeline;
pub mod recluster;
pub mod report;

pub use cluster::{Cluster, ClusterSet};
pub use config::{ClusteringConfig, ClusteringVariant};
pub use kmeans::{KMeansClusterer, KMeansStats};
pub use metrics::preservation_curve;
pub use pipeline::{ClusteredMatchReport, ClusteredMatcher};
pub use report::SizeHistogram;
