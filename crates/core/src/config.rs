//! Clustering configuration and the paper's named variants.

use serde::{Deserialize, Serialize};

/// How reclustering modifies the clusters in each iteration (Sec. 4, "Reclustering").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ReclusterStrategy {
    /// No reclustering — the plain k-means assignment (dark bars of Fig. 4).
    None,
    /// Join clusters whose centroids are within the join distance threshold.
    Join,
    /// Join, then remove clusters smaller than the minimum size (their members are
    /// freed and re-assigned in the next iteration).
    #[default]
    JoinAndRemove,
}

/// Configuration of the k-means clusterer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// Reclustering strategy applied each iteration.
    pub recluster: ReclusterStrategy,
    /// Join clusters whose centroids are at tree distance ≤ this value. The paper's
    /// experiment uses 2 ("small clusters"), 3 ("medium") and 4 ("large").
    pub join_distance: u32,
    /// Remove clusters with fewer members than this (only with
    /// [`ReclusterStrategy::JoinAndRemove`]).
    pub remove_min_size: usize,
    /// Hard cap on k-means iterations.
    pub max_iterations: usize,
    /// Convergence: stop when the fraction of elements that switched clusters in an
    /// iteration is at most this value…
    pub stability_fraction: f64,
    /// …and the relative change in the number of clusters is at most this value.
    pub cluster_change_fraction: f64,
    /// Small-tree fast path: tree-local scopes with at most this many distinct
    /// repository nodes check after their **first** iteration whether the
    /// reclustered centroids already equal the seeds; if so, every further
    /// iteration is provably a fixed point (the next assignment reproduces the
    /// previous one, so the convergence criteria fire immediately) and the loop is
    /// skipped straight to the final rebuild — bit-identical output, one
    /// assignment pass instead of two. `0` disables the check.
    pub small_tree_fast_path: usize,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            recluster: ReclusterStrategy::JoinAndRemove,
            join_distance: 3,
            remove_min_size: 2,
            max_iterations: 12,
            stability_fraction: 0.05,
            cluster_change_fraction: 0.05,
            small_tree_fast_path: 32,
        }
    }
}

impl ClusteringConfig {
    /// Builder-style join-distance override.
    pub fn with_join_distance(mut self, d: u32) -> Self {
        self.join_distance = d;
        self
    }

    /// Builder-style recluster-strategy override.
    pub fn with_recluster(mut self, strategy: ReclusterStrategy) -> Self {
        self.recluster = strategy;
        self
    }

    /// Builder-style minimum-cluster-size override.
    pub fn with_remove_min_size(mut self, size: usize) -> Self {
        self.remove_min_size = size;
        self
    }

    /// Builder-style iteration-cap override.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n.max(1);
        self
    }

    /// Builder-style small-tree fast-path threshold override (`0` disables).
    pub fn with_small_tree_fast_path(mut self, threshold: usize) -> Self {
        self.small_tree_fast_path = threshold;
        self
    }
}

/// The four configurations of the paper's Sec. 5 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusteringVariant {
    /// Join distance 2 — the most aggressive search-space reduction.
    Small,
    /// Join distance 3 — the paper's headline configuration.
    Medium,
    /// Join distance 4 — the gentlest clustering.
    Large,
    /// No clustering: each repository tree is treated as one cluster (the baseline).
    TreeClusters,
}

impl ClusteringVariant {
    /// All four variants, in the order Tab. 1 lists them.
    pub fn all() -> [ClusteringVariant; 4] {
        [
            ClusteringVariant::Small,
            ClusteringVariant::Medium,
            ClusteringVariant::Large,
            ClusteringVariant::TreeClusters,
        ]
    }

    /// The clustering configuration for the variant; `None` for the non-clustered
    /// baseline.
    pub fn config(self) -> Option<ClusteringConfig> {
        match self {
            ClusteringVariant::Small => Some(ClusteringConfig::default().with_join_distance(2)),
            ClusteringVariant::Medium => Some(ClusteringConfig::default().with_join_distance(3)),
            ClusteringVariant::Large => Some(ClusteringConfig::default().with_join_distance(4)),
            ClusteringVariant::TreeClusters => None,
        }
    }

    /// The label used in the paper's tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            ClusteringVariant::Small => "small",
            ClusteringVariant::Medium => "medium",
            ClusteringVariant::Large => "large",
            ClusteringVariant::TreeClusters => "tree",
        }
    }
}

impl std::fmt::Display for ClusteringVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ClusteringConfig::default();
        assert_eq!(c.recluster, ReclusterStrategy::JoinAndRemove);
        assert!(c.join_distance >= 1);
        assert!(c.max_iterations >= 1);
        assert!(c.stability_fraction > 0.0 && c.stability_fraction < 1.0);
    }

    #[test]
    fn builders_apply() {
        let c = ClusteringConfig::default()
            .with_join_distance(5)
            .with_recluster(ReclusterStrategy::Join)
            .with_remove_min_size(4)
            .with_max_iterations(0)
            .with_small_tree_fast_path(0);
        assert_eq!(c.join_distance, 5);
        assert_eq!(c.recluster, ReclusterStrategy::Join);
        assert_eq!(c.remove_min_size, 4);
        assert_eq!(c.max_iterations, 1); // floored
        assert_eq!(c.small_tree_fast_path, 0); // disabled
    }

    #[test]
    fn variant_join_distances_match_the_paper() {
        assert_eq!(ClusteringVariant::Small.config().unwrap().join_distance, 2);
        assert_eq!(ClusteringVariant::Medium.config().unwrap().join_distance, 3);
        assert_eq!(ClusteringVariant::Large.config().unwrap().join_distance, 4);
        assert!(ClusteringVariant::TreeClusters.config().is_none());
    }

    #[test]
    fn variant_labels_and_order() {
        let labels: Vec<&str> = ClusteringVariant::all().iter().map(|v| v.label()).collect();
        assert_eq!(labels, vec!["small", "medium", "large", "tree"]);
        assert_eq!(ClusteringVariant::Medium.to_string(), "medium");
    }
}
