//! The clustered schema-matching pipeline (Fig. 3 of the paper).
//!
//! [`ClusteredMatcher`] glues the stages together:
//!
//! 1. element matching (from `xsm-matcher`) → mapping elements,
//! 2. clustering (this crate) → clusters of mapping elements — or, for the baseline
//!    "tree clusters" variant, one cluster per repository tree,
//! 3. mapping generation per useful cluster (any [`MappingGenerator`]),
//! 4. merging all per-cluster results into a single ranked list.
//!
//! The produced [`ClusteredMatchReport`] carries everything Tab. 1 and Figs. 4–6 need:
//! the useful-cluster statistics, the aggregated generator counters, the cluster-size
//! distribution and the k-means statistics.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use xsm_matcher::element::{
    match_elements, ElementMatchConfig, ElementMatcher, NameElementMatcher,
};
use xsm_matcher::generator::{sort_mappings, MappingGenerator};
use xsm_matcher::{CandidateSet, GeneratorCounters, MatchingProblem, SchemaMapping};
use xsm_repo::SchemaRepository;

use crate::cluster::ClusterSet;
use crate::config::{ClusteringConfig, ClusteringVariant};
use crate::kmeans::{KMeansClusterer, KMeansStats};
use crate::report::ClusterStatsRow;

/// Result of one clustered (or baseline) matching run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusteredMatchReport {
    /// Human-readable label of the configuration ("small", "medium", "large", "tree").
    pub label: String,
    /// Total number of mapping elements produced by element matching (`|ME|`,
    /// counting one entry per (personal node, repository node) pair).
    pub mapping_elements: usize,
    /// Number of distinct repository nodes among the mapping elements.
    pub distinct_mapping_nodes: usize,
    /// Tab. 1a: useful-cluster statistics.
    pub cluster_stats: ClusterStatsRow,
    /// Tab. 1b: aggregated generator counters (partial mappings, retained mappings, time).
    pub generator_counters: GeneratorCounters,
    /// All retained schema mappings, best first.
    pub mappings: Vec<SchemaMapping>,
    /// Statistics of the k-means run (`None` for the tree-clusters baseline).
    pub kmeans: Option<KMeansStats>,
    /// Sizes of all clusters (useful or not) — the Fig. 4 histogram input.
    pub cluster_sizes: Vec<usize>,
    /// Wall-clock time of the clustering step.
    #[serde(skip)]
    pub clustering_time: Duration,
    /// Wall-clock time of the element-matching step (zero when candidates were reused).
    #[serde(skip)]
    pub element_matching_time: Duration,
}

impl ClusteredMatchReport {
    /// Total pipeline time: clustering + mapping generation (the "12.0 sec + 23.8 sec"
    /// comparison of Sec. 5). Element matching is excluded, as in the paper, because
    /// it is identical for every variant.
    pub fn total_time(&self) -> Duration {
        self.clustering_time + self.generator_counters.elapsed
    }
}

/// The clustered schema matcher. `clustering: None` is the non-clustered baseline in
/// which "each tree in the repository is treated as one cluster".
///
/// The matcher is immutable configuration: every `run*` method takes `&self`, so one
/// instance can be shared (or cheaply cloned) across the worker threads of a serving
/// engine. This thread-safety is part of the public contract and asserted at compile
/// time below.
#[derive(Clone)]
pub struct ClusteredMatcher {
    element_config: ElementMatchConfig,
    clustering: Option<ClusteringConfig>,
    label: String,
}

// `bellflower::service::MatchEngine` shares one matcher and its reports across
// worker threads; breaking `Send`/`Sync` here must fail the build, not the service.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ClusteredMatcher>();
    assert_send_sync::<ClusteredMatchReport>();
};

impl ClusteredMatcher {
    /// A matcher that clusters with the given configuration.
    pub fn clustered(clustering: ClusteringConfig) -> Self {
        ClusteredMatcher {
            element_config: ElementMatchConfig::default(),
            clustering: Some(clustering),
            label: format!("join≤{}", clustering.join_distance),
        }
    }

    /// The non-clustered baseline ("tree clusters").
    pub fn baseline() -> Self {
        ClusteredMatcher {
            element_config: ElementMatchConfig::default(),
            clustering: None,
            label: "tree".to_string(),
        }
    }

    /// A matcher for one of the paper's named variants.
    pub fn for_variant(variant: ClusteringVariant) -> Self {
        let mut m = match variant.config() {
            Some(cfg) => ClusteredMatcher::clustered(cfg),
            None => ClusteredMatcher::baseline(),
        };
        m.label = variant.label().to_string();
        m
    }

    /// Override the element-matching configuration.
    pub fn with_element_config(mut self, config: ElementMatchConfig) -> Self {
        self.element_config = config;
        self
    }

    /// Override the report label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The element-matching configuration in use.
    pub fn element_config(&self) -> &ElementMatchConfig {
        &self.element_config
    }

    /// Run the full pipeline: element matching, clustering, per-cluster generation.
    pub fn run(
        &self,
        problem: &MatchingProblem,
        repo: &SchemaRepository,
        generator: &dyn MappingGenerator,
    ) -> ClusteredMatchReport {
        let start = Instant::now();
        let candidates = match_elements(
            &problem.personal,
            repo,
            &NameElementMatcher,
            &self.element_config,
        );
        let element_matching_time = start.elapsed();
        let mut report = self.run_on_candidates(problem, repo, &candidates, generator);
        report.element_matching_time = element_matching_time;
        report
    }

    /// Run the full pipeline with a custom element matcher.
    pub fn run_with_matcher(
        &self,
        problem: &MatchingProblem,
        repo: &SchemaRepository,
        element_matcher: &dyn ElementMatcher,
        generator: &dyn MappingGenerator,
    ) -> ClusteredMatchReport {
        let start = Instant::now();
        let candidates = match_elements(
            &problem.personal,
            repo,
            element_matcher,
            &self.element_config,
        );
        let element_matching_time = start.elapsed();
        let mut report = self.run_on_candidates(problem, repo, &candidates, generator);
        report.element_matching_time = element_matching_time;
        report
    }

    /// Run clustering + generation on a precomputed candidate set. The experiments use
    /// this so that all variants share *exactly* the same mapping elements, as in the
    /// paper ("the number of mapping elements … were the same in all three cases").
    pub fn run_on_candidates(
        &self,
        problem: &MatchingProblem,
        repo: &SchemaRepository,
        candidates: &CandidateSet,
        generator: &dyn MappingGenerator,
    ) -> ClusteredMatchReport {
        // Stage c: clustering (or per-tree scoping for the baseline).
        let clustering_start = Instant::now();
        let (scopes, kmeans, cluster_sizes) = match &self.clustering {
            Some(config) => {
                let clusterer = KMeansClusterer::new(*config);
                let (set, stats) = clusterer.cluster(repo, candidates);
                let sizes = set.sizes();
                let scopes = cluster_scopes(&set, candidates);
                (scopes, Some(stats), sizes)
            }
            None => {
                let mut scopes = Vec::new();
                let mut sizes = Vec::new();
                for tree in candidates.trees() {
                    let scope = candidates.restrict_to_tree(tree);
                    sizes.push(scope.distinct_repo_nodes());
                    scopes.push(scope);
                }
                (scopes, None, sizes)
            }
        };
        let clustering_time = clustering_start.elapsed();

        // Stage 4: per-cluster mapping generation on the useful scopes only.
        let mut counters = GeneratorCounters::default();
        let mut mappings: Vec<SchemaMapping> = Vec::new();
        let mut useful = 0usize;
        let mut useful_nodes_total = 0usize;
        for scope in &scopes {
            if !scope.is_useful() {
                continue;
            }
            useful += 1;
            useful_nodes_total += scope.distinct_repo_nodes();
            let outcome = generator.generate(problem, repo, scope);
            counters = counters.merge(&outcome.counters);
            mappings.extend(outcome.mappings);
        }
        sort_mappings(&mut mappings);

        let cluster_stats = ClusterStatsRow {
            useful_clusters: useful,
            avg_mapping_elements: if useful == 0 {
                0.0
            } else {
                useful_nodes_total as f64 / useful as f64
            },
            total_search_space: counters.search_space,
        };

        ClusteredMatchReport {
            label: self.label.clone(),
            mapping_elements: candidates.total_candidates(),
            distinct_mapping_nodes: candidates.distinct_repo_nodes(),
            cluster_stats,
            generator_counters: counters,
            mappings,
            kmeans,
            cluster_sizes,
            clustering_time,
            element_matching_time: Duration::ZERO,
        }
    }
}

/// Build the per-cluster candidate scopes of a cluster set.
fn cluster_scopes(set: &ClusterSet, candidates: &CandidateSet) -> Vec<CandidateSet> {
    set.clusters.iter().map(|c| c.scope(candidates)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusteringVariant;
    use crate::metrics::preservation_curve;
    use xsm_matcher::generator::branch_and_bound::BranchAndBoundGenerator;
    use xsm_repo::{GeneratorConfig, RepositoryGenerator};

    fn scenario() -> (MatchingProblem, SchemaRepository, CandidateSet) {
        let problem = MatchingProblem::paper_experiment();
        let repo = RepositoryGenerator::new(GeneratorConfig::small(31).with_target_elements(900))
            .generate();
        let candidates = match_elements(
            &problem.personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.5),
        );
        (problem, repo, candidates)
    }

    #[test]
    fn baseline_and_clustered_reports_are_consistent() {
        let (problem, repo, candidates) = scenario();
        let generator = BranchAndBoundGenerator::new();
        let baseline = ClusteredMatcher::for_variant(ClusteringVariant::TreeClusters)
            .run_on_candidates(&problem, &repo, &candidates, &generator);
        let clustered = ClusteredMatcher::for_variant(ClusteringVariant::Medium).run_on_candidates(
            &problem,
            &repo,
            &candidates,
            &generator,
        );

        assert_eq!(baseline.label, "tree");
        assert_eq!(clustered.label, "medium");
        assert!(baseline.kmeans.is_none());
        assert!(clustered.kmeans.is_some());
        // Both saw the same mapping elements.
        assert_eq!(baseline.mapping_elements, clustered.mapping_elements);
        assert_eq!(
            baseline.distinct_mapping_nodes,
            clustered.distinct_mapping_nodes
        );
        // Baseline explores at least as large a search space and finds at least as
        // many mappings (clustering only loses mappings, never invents them).
        assert!(
            baseline.cluster_stats.total_search_space >= clustered.cluster_stats.total_search_space
        );
        assert!(baseline.mappings.len() >= clustered.mappings.len());
        // Counters line up with the mapping list.
        assert_eq!(
            baseline.generator_counters.retained_mappings as usize,
            baseline.mappings.len()
        );
        assert_eq!(
            clustered.generator_counters.retained_mappings as usize,
            clustered.mappings.len()
        );
    }

    #[test]
    fn every_clustered_mapping_also_exists_in_the_baseline() {
        let (problem, repo, candidates) = scenario();
        let generator = BranchAndBoundGenerator::new();
        let baseline = ClusteredMatcher::baseline().run_on_candidates(
            &problem,
            &repo,
            &candidates,
            &generator,
        );
        let clustered = ClusteredMatcher::for_variant(ClusteringVariant::Small).run_on_candidates(
            &problem,
            &repo,
            &candidates,
            &generator,
        );
        // Clustered results ⊆ baseline results: preservation of the clustered set
        // against itself measured on the baseline must count every clustered mapping.
        let curve = preservation_curve(
            &clustered.mappings,
            &baseline.mappings,
            &[problem.threshold],
        );
        assert_eq!(curve[0].preserved_count, curve[0].reference_count);
    }

    #[test]
    fn smaller_clusters_mean_smaller_search_space() {
        let (problem, repo, candidates) = scenario();
        let generator = BranchAndBoundGenerator::new();
        let small = ClusteredMatcher::for_variant(ClusteringVariant::Small).run_on_candidates(
            &problem,
            &repo,
            &candidates,
            &generator,
        );
        let large = ClusteredMatcher::for_variant(ClusteringVariant::Large).run_on_candidates(
            &problem,
            &repo,
            &candidates,
            &generator,
        );
        let tree = ClusteredMatcher::for_variant(ClusteringVariant::TreeClusters)
            .run_on_candidates(&problem, &repo, &candidates, &generator);
        assert!(
            small.cluster_stats.total_search_space <= large.cluster_stats.total_search_space,
            "small {} > large {}",
            small.cluster_stats.total_search_space,
            large.cluster_stats.total_search_space
        );
        assert!(large.cluster_stats.total_search_space <= tree.cluster_stats.total_search_space);
        // And fewer or equal retained mappings.
        assert!(small.mappings.len() <= tree.mappings.len());
    }

    #[test]
    fn full_run_includes_element_matching_time() {
        let (problem, repo, _) = scenario();
        let generator = BranchAndBoundGenerator::new();
        let report = ClusteredMatcher::for_variant(ClusteringVariant::Medium)
            .with_element_config(ElementMatchConfig::default().with_min_similarity(0.6))
            .run(&problem, &repo, &generator);
        assert!(report.element_matching_time > Duration::ZERO);
        assert!(report.mapping_elements > 0);
        assert!(report.total_time() >= report.clustering_time);
    }

    #[test]
    fn mappings_are_sorted_and_meet_threshold() {
        let (problem, repo, candidates) = scenario();
        let generator = BranchAndBoundGenerator::new();
        let report = ClusteredMatcher::for_variant(ClusteringVariant::Medium).run_on_candidates(
            &problem,
            &repo,
            &candidates,
            &generator,
        );
        let mut prev = f64::INFINITY;
        for m in &report.mappings {
            assert!(m.score >= problem.threshold);
            assert!(m.score <= prev + 1e-12);
            assert!(m.is_structurally_valid());
            prev = m.score;
        }
    }

    #[test]
    fn custom_label_and_matcher() {
        let (problem, repo, _) = scenario();
        let generator = BranchAndBoundGenerator::new();
        let report = ClusteredMatcher::baseline()
            .with_label("my-baseline")
            .run_with_matcher(
                &problem,
                &repo,
                &xsm_matcher::element::NameElementMatcher,
                &generator,
            );
        assert_eq!(report.label, "my-baseline");
    }
}
