//! The adapted k-means clustering algorithm (Algorithm 1 of the paper).
//!
//! ```text
//! 1: initialize centroids
//! 2: repeat
//! 3:   for each mapping element do
//! 4:     for each centroid do
//! 5:       compute distance(mapping element, centroid)
//! 6:     end for
//! 7:     assign mapping element to nearest centroid
//! 8:   end for
//! 9:   compute new centroids for all clusters
//! 10:  perform reclustering
//! 11: until convergence criterion is met
//! ```
//!
//! Elements are distinct repository nodes carrying their mapping elements; distance is
//! the tree path length (or any [`ClusterDistance`]); centroids are medoids; the
//! reclustering step joins nearby clusters and removes tiny ones. Complexity is
//! `O(c · i · |ME|)` as the paper states.
//!
//! ## Tree-local control
//!
//! Clusters never span repository trees (the clustering distance is only defined
//! within a tree), so the algorithm runs **independently per tree**: each tree gets
//! its own `ME_min` seeding, its own iteration loop and its own convergence test
//! over its own element population. This has two consequences the rest of the
//! system relies on:
//!
//! * every tree that holds candidates receives centroids (under a single global
//!   `ME_min` seeding, trees outside the seed node's candidate set got no centroid
//!   at all and silently produced zero mappings), and
//! * the clustering — and therefore the whole
//!   [`crate::ClusteredMatcher::run_on_candidates`] pipeline — is exactly
//!   *decomposable* over any partition of the forest: clustering a union of trees
//!   equals the union of clustering each tree. `bellflower::service`'s sharded
//!   engine scatters queries across per-shard engines and merges their answers;
//!   tree-local control is what makes the merged answer bit-identical to the
//!   single-engine answer.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use xsm_matcher::CandidateSet;
use xsm_repo::SchemaRepository;
use xsm_schema::GlobalNodeId;

use crate::centroid::medoid;
use crate::cluster::{collect_clustered_nodes, Cluster, ClusterSet, ClusteredNode};
use crate::config::{ClusteringConfig, ReclusterStrategy};
use crate::convergence::ConvergenceTracker;
use crate::distance::{ClusterDistance, PathLengthDistance};
use crate::init::{CentroidInit, MeMinSeeding};
use crate::recluster::{join_clusters, remove_small_clusters};

/// Statistics of one clustering run (reported by the experiments: clustering time,
/// iteration count, moved-element history, cluster-count history).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KMeansStats {
    /// Number of initial centroids seeded.
    pub initial_centroids: usize,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Elements that switched clusters, per iteration.
    pub moved_per_iteration: Vec<usize>,
    /// Cluster count after reclustering, per iteration.
    pub clusters_per_iteration: Vec<usize>,
    /// Number of clusters in the final result.
    pub final_clusters: usize,
    /// Repository nodes that could not be assigned (their tree holds no centroid).
    pub unassigned_nodes: usize,
    /// Total number of distinct repository nodes clustered.
    pub total_nodes: usize,
    /// Wall-clock time of the clustering step (the `12.0 sec` style figure of Sec. 5).
    #[serde(skip)]
    pub elapsed: Duration,
}

/// Element-wise `acc[i] += add[i]`, growing `acc` to `add`'s length: merges the
/// per-iteration histories of trees that converged after different iteration counts.
fn accumulate(acc: &mut Vec<usize>, add: &[usize]) {
    if acc.len() < add.len() {
        acc.resize(add.len(), 0);
    }
    for (a, &b) in acc.iter_mut().zip(add) {
        *a += b;
    }
}

/// The adapted k-means clusterer.
pub struct KMeansClusterer {
    config: ClusteringConfig,
    distance: Box<dyn ClusterDistance>,
    init: Box<dyn CentroidInit>,
}

impl KMeansClusterer {
    /// Clusterer with the paper's defaults: path-length distance and `ME_min` seeding.
    pub fn new(config: ClusteringConfig) -> Self {
        KMeansClusterer {
            config,
            distance: Box::new(PathLengthDistance),
            init: Box::new(MeMinSeeding),
        }
    }

    /// Replace the distance measure (ablation / future-work hybrid measures).
    pub fn with_distance(mut self, distance: Box<dyn ClusterDistance>) -> Self {
        self.distance = distance;
        self
    }

    /// Replace the centroid-initialisation strategy.
    pub fn with_init(mut self, init: Box<dyn CentroidInit>) -> Self {
        self.init = init;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &ClusteringConfig {
        &self.config
    }

    /// Cluster the mapping elements of `candidates` over `repo`.
    ///
    /// The control loop is **tree-local** (see the module docs): every repository
    /// tree with candidates is seeded, iterated and converged on its own, and the
    /// per-tree results are concatenated in ascending tree order. Statistics are
    /// aggregated across trees: counters sum, `iterations` is the longest per-tree
    /// run, and the per-iteration histories are element-wise sums (a tree that has
    /// already converged contributes nothing to later iterations).
    pub fn cluster(
        &self,
        repo: &SchemaRepository,
        candidates: &CandidateSet,
    ) -> (ClusterSet, KMeansStats) {
        let start = Instant::now();
        let mut set = ClusterSet::default();
        let mut stats = KMeansStats::default();
        // One pass groups candidates per tree (the clusterer runs per query in the
        // serving hot path; restricting tree-by-tree would rescan the whole set T
        // times).
        for (_, scope) in candidates.split_by_tree() {
            let (tree_set, tree_stats) = self.cluster_scope(repo, &scope);
            set.clusters.extend(tree_set.clusters);
            set.unassigned.extend(tree_set.unassigned);
            stats.total_nodes += tree_stats.total_nodes;
            stats.initial_centroids += tree_stats.initial_centroids;
            stats.unassigned_nodes += tree_stats.unassigned_nodes;
            stats.iterations = stats.iterations.max(tree_stats.iterations);
            accumulate(
                &mut stats.moved_per_iteration,
                &tree_stats.moved_per_iteration,
            );
            accumulate(
                &mut stats.clusters_per_iteration,
                &tree_stats.clusters_per_iteration,
            );
        }
        stats.final_clusters = set.clusters.len();
        stats.elapsed = start.elapsed();
        (set, stats)
    }

    /// The paper's Algorithm 1 over one scope (in practice: the candidates of one
    /// repository tree — [`KMeansClusterer::cluster`] is the per-tree driver).
    fn cluster_scope(
        &self,
        repo: &SchemaRepository,
        candidates: &CandidateSet,
    ) -> (ClusterSet, KMeansStats) {
        let start = Instant::now();
        let nodes = collect_clustered_nodes(candidates);
        let mut stats = KMeansStats {
            total_nodes: nodes.len(),
            ..Default::default()
        };
        if nodes.is_empty() {
            stats.elapsed = start.elapsed();
            return (ClusterSet::default(), stats);
        }

        // Line 1: initialise centroids.
        let mut centroids: Vec<GlobalNodeId> = self.init.seed(candidates);
        centroids.sort();
        centroids.dedup();
        stats.initial_centroids = centroids.len();
        if centroids.is_empty() {
            // Nothing to anchor clusters on; report everything unassigned.
            stats.unassigned_nodes = nodes.len();
            stats.elapsed = start.elapsed();
            return (
                ClusterSet {
                    clusters: Vec::new(),
                    unassigned: nodes,
                },
                stats,
            );
        }

        let mut tracker = ConvergenceTracker::new();
        // previous assignment: node index → centroid node (for move counting).
        let mut previous_assignment: Vec<Option<GlobalNodeId>> = vec![None; nodes.len()];
        // Seed snapshot for the small-tree fast path's fixed-point check.
        let seeds = centroids.clone();
        let fast_path =
            self.config.small_tree_fast_path > 0 && nodes.len() <= self.config.small_tree_fast_path;

        for iteration in 0..self.config.max_iterations {
            // Lines 3–8: assign every node to its nearest centroid (same tree only).
            let (assignment, moved) = self.assign(repo, &nodes, &centroids, &previous_assignment);

            // Lines 9: group into clusters and compute new medoid centroids.
            let mut clusters = self.build_clusters(repo, &nodes, &assignment, &centroids);

            // Line 10: reclustering.
            clusters = match self.config.recluster {
                ReclusterStrategy::None => clusters,
                ReclusterStrategy::Join => join_clusters(
                    repo,
                    self.distance.as_ref(),
                    clusters,
                    self.config.join_distance,
                ),
                ReclusterStrategy::JoinAndRemove => {
                    let joined = join_clusters(
                        repo,
                        self.distance.as_ref(),
                        clusters,
                        self.config.join_distance,
                    );
                    let (kept, _freed) = remove_small_clusters(joined, self.config.remove_min_size);
                    kept
                }
            };

            centroids = clusters.iter().map(|c| c.centroid).collect();
            centroids.sort();
            centroids.dedup();
            previous_assignment = assignment;
            stats.iterations += 1;

            // Line 11: convergence.
            if tracker.observe(moved, nodes.len(), clusters.len(), &self.config) {
                break;
            }
            if centroids.is_empty() {
                break;
            }
            // Small-tree fast path: the first iteration left the centroid set
            // exactly where seeding put it, so the loop is at a fixed point —
            // iteration 2 would reproduce this assignment (moved = 0), keep the
            // cluster count, and trip both convergence criteria. Skipping straight
            // to the final rebuild is therefore bit-identical to running on; only
            // the iteration statistics shrink. Gated to small scopes because only
            // tiny trees reach a fixed point this early often enough to matter.
            if fast_path && iteration == 0 && centroids == seeds {
                break;
            }
        }
        stats.moved_per_iteration = tracker.moved_history.clone();
        stats.clusters_per_iteration = tracker.cluster_history.clone();

        // Final pass: rebuild clusters from the final centroids so that members freed
        // by a trailing `remove` step get one last chance to join a surviving cluster.
        let (assignment, _) = self.assign(repo, &nodes, &centroids, &previous_assignment);
        let clusters = {
            let built = self.build_clusters(repo, &nodes, &assignment, &centroids);
            // Preserve the reclustered granularity: a final join keeps the result
            // consistent with the last reclustering step.
            match self.config.recluster {
                ReclusterStrategy::None => built,
                _ => join_clusters(
                    repo,
                    self.distance.as_ref(),
                    built,
                    self.config.join_distance,
                ),
            }
        };
        let unassigned: Vec<ClusteredNode> = nodes
            .iter()
            .zip(&assignment)
            .filter(|(_, a)| a.is_none())
            .map(|(n, _)| n.clone())
            .collect();
        stats.unassigned_nodes = unassigned.len();
        stats.final_clusters = clusters.len();
        stats.elapsed = start.elapsed();
        (
            ClusterSet {
                clusters,
                unassigned,
            },
            stats,
        )
    }

    /// Assign every node to the nearest centroid in its tree. Returns the assignment
    /// (by centroid node id) and the number of nodes whose assignment changed relative
    /// to `previous`.
    fn assign(
        &self,
        repo: &SchemaRepository,
        nodes: &[ClusteredNode],
        centroids: &[GlobalNodeId],
        previous: &[Option<GlobalNodeId>],
    ) -> (Vec<Option<GlobalNodeId>>, usize) {
        let mut assignment = Vec::with_capacity(nodes.len());
        let mut moved = 0usize;
        for (i, node) in nodes.iter().enumerate() {
            let mut best: Option<(f64, GlobalNodeId)> = None;
            for &c in centroids {
                if c.tree != node.node.tree {
                    continue;
                }
                if let Some(d) = self.distance.distance(repo, node.node, c) {
                    let better = match best {
                        None => true,
                        Some((bd, bc)) => d < bd - 1e-12 || (d < bd + 1e-12 && c < bc),
                    };
                    if better {
                        best = Some((d, c));
                    }
                }
            }
            let chosen = best.map(|(_, c)| c);
            if previous.get(i).copied().flatten() != chosen {
                moved += 1;
            }
            assignment.push(chosen);
        }
        (assignment, moved)
    }

    /// Group assigned nodes into clusters keyed by centroid and recompute medoids.
    fn build_clusters(
        &self,
        repo: &SchemaRepository,
        nodes: &[ClusteredNode],
        assignment: &[Option<GlobalNodeId>],
        centroids: &[GlobalNodeId],
    ) -> Vec<Cluster> {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<GlobalNodeId, Vec<ClusteredNode>> = BTreeMap::new();
        for (node, assigned) in nodes.iter().zip(assignment) {
            if let Some(c) = assigned {
                groups.entry(*c).or_default().push(node.clone());
            }
        }
        let _ = centroids;
        groups
            .into_iter()
            .filter_map(|(seed, members)| {
                let tree = seed.tree;
                let centroid = medoid(repo, self.distance.as_ref(), &members)?;
                Some(Cluster::new(tree, centroid, members))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReclusterStrategy;
    use xsm_matcher::element::{match_elements, ElementMatchConfig, NameElementMatcher};
    use xsm_matcher::MatchingProblem;
    use xsm_repo::{GeneratorConfig, RepositoryGenerator};

    /// A small but realistic clustering scenario: synthetic repository + the paper's
    /// name/address/email personal schema.
    fn scenario() -> (MatchingProblem, SchemaRepository, CandidateSet) {
        let problem = MatchingProblem::paper_experiment();
        let repo = RepositoryGenerator::new(GeneratorConfig::small(21)).generate();
        let candidates = match_elements(
            &problem.personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.5),
        );
        (problem, repo, candidates)
    }

    #[test]
    fn clustering_produces_clusters_and_stats() {
        let (_, repo, candidates) = scenario();
        let clusterer = KMeansClusterer::new(ClusteringConfig::default());
        let (set, stats) = clusterer.cluster(&repo, &candidates);
        assert!(!set.is_empty(), "no clusters formed");
        assert!(stats.iterations >= 1);
        assert!(stats.initial_centroids > 0);
        assert_eq!(stats.final_clusters, set.len());
        assert_eq!(stats.total_nodes, candidates.distinct_repo_nodes());
        assert_eq!(
            stats.moved_per_iteration.len(),
            stats.iterations,
            "one moved-count per iteration"
        );
    }

    #[test]
    fn every_cluster_is_within_one_tree_and_centroid_is_a_member() {
        let (_, repo, candidates) = scenario();
        let (set, _) =
            KMeansClusterer::new(ClusteringConfig::default()).cluster(&repo, &candidates);
        for cluster in &set.clusters {
            assert!(cluster.size() > 0);
            assert!(
                cluster.members.iter().all(|m| m.node.tree == cluster.tree),
                "cluster spans trees"
            );
            assert!(
                cluster.node_ids().contains(&cluster.centroid),
                "centroid is not a member (medoid property violated)"
            );
        }
    }

    #[test]
    fn assigned_plus_unassigned_covers_all_nodes_without_duplication() {
        let (_, repo, candidates) = scenario();
        let (set, stats) =
            KMeansClusterer::new(ClusteringConfig::default()).cluster(&repo, &candidates);
        let mut covered: Vec<GlobalNodeId> = set
            .clusters
            .iter()
            .flat_map(|c| c.node_ids())
            .chain(set.unassigned.iter().map(|n| n.node))
            .collect();
        let total = covered.len();
        covered.sort();
        covered.dedup();
        assert_eq!(covered.len(), total, "a node appears in two clusters");
        assert_eq!(total, stats.total_nodes);
    }

    #[test]
    fn no_reclustering_yields_at_least_as_many_clusters_as_join() {
        let (_, repo, candidates) = scenario();
        let none = KMeansClusterer::new(
            ClusteringConfig::default().with_recluster(ReclusterStrategy::None),
        )
        .cluster(&repo, &candidates)
        .0;
        let join = KMeansClusterer::new(
            ClusteringConfig::default().with_recluster(ReclusterStrategy::Join),
        )
        .cluster(&repo, &candidates)
        .0;
        let join_remove = KMeansClusterer::new(
            ClusteringConfig::default().with_recluster(ReclusterStrategy::JoinAndRemove),
        )
        .cluster(&repo, &candidates)
        .0;
        // Fig. 4's ordering: no-reclustering ≥ join ≥ join&remove cluster counts.
        assert!(none.len() >= join.len(), "{} < {}", none.len(), join.len());
        assert!(
            join.len() >= join_remove.len(),
            "{} < {}",
            join.len(),
            join_remove.len()
        );
        // join&remove eliminates tiny clusters.
        let min_size = join_remove.sizes().into_iter().min().unwrap_or(0);
        assert!(min_size >= ClusteringConfig::default().remove_min_size);
    }

    #[test]
    fn smaller_join_distance_gives_more_clusters() {
        let (_, repo, candidates) = scenario();
        let small = KMeansClusterer::new(ClusteringConfig::default().with_join_distance(2))
            .cluster(&repo, &candidates)
            .0;
        let large = KMeansClusterer::new(ClusteringConfig::default().with_join_distance(5))
            .cluster(&repo, &candidates)
            .0;
        assert!(
            small.len() >= large.len(),
            "small-threshold clustering produced fewer clusters ({} vs {})",
            small.len(),
            large.len()
        );
    }

    #[test]
    fn clustering_is_deterministic() {
        let (_, repo, candidates) = scenario();
        let a = KMeansClusterer::new(ClusteringConfig::default()).cluster(&repo, &candidates);
        let b = KMeansClusterer::new(ClusteringConfig::default()).cluster(&repo, &candidates);
        assert_eq!(a.0.len(), b.0.len());
        assert_eq!(a.0.sizes(), b.0.sizes());
        assert_eq!(a.1.iterations, b.1.iterations);
    }

    #[test]
    fn empty_candidates_produce_empty_result() {
        let (_, repo, _) = scenario();
        let empty = CandidateSet::new(vec![]);
        let (set, stats) = KMeansClusterer::new(ClusteringConfig::default()).cluster(&repo, &empty);
        assert!(set.is_empty());
        assert_eq!(stats.total_nodes, 0);
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let (_, repo, candidates) = scenario();
        let (_, stats) = KMeansClusterer::new(ClusteringConfig::default().with_max_iterations(2))
            .cluster(&repo, &candidates);
        assert!(stats.iterations <= 2);
    }

    #[test]
    fn custom_init_and_distance_are_honoured() {
        let (_, repo, candidates) = scenario();
        let clusterer = KMeansClusterer::new(ClusteringConfig::default())
            .with_init(Box::new(crate::init::RandomSeeding::new(20, 7)))
            .with_distance(Box::new(crate::distance::HybridDistance::default()));
        let (set, stats) = clusterer.cluster(&repo, &candidates);
        // Seeding runs per tree, so the custom strategy's count caps each tree's
        // seeds, not the forest's.
        let trees = candidates.trees().len();
        assert!(trees > 0);
        assert!(stats.initial_centroids <= 20 * trees);
        assert!(set.len() <= stats.initial_centroids);
    }

    /// Structural equality of two clusterings: same clusters (tree, centroid,
    /// members with identical similarity bits) and same unassigned sets.
    fn assert_cluster_sets_identical(a: &ClusterSet, b: &ClusterSet) {
        assert_eq!(a.len(), b.len(), "cluster counts diverged");
        for (ca, cb) in a.clusters.iter().zip(&b.clusters) {
            assert_eq!(ca, cb, "a cluster diverged");
        }
        assert_eq!(a.unassigned, b.unassigned, "unassigned sets diverged");
    }

    #[test]
    fn small_tree_fast_path_is_bit_identical() {
        // The fast path's fixed-point argument must hold over every configuration
        // knob that shapes the loop: recluster strategy, join distance, floor.
        // Compare enabled (default threshold, plus an aggressive one) against
        // disabled on a spread of generated forests of mostly-small trees.
        for seed in [3u64, 21, 77, 140] {
            let problem = MatchingProblem::paper_experiment();
            let repo = RepositoryGenerator::new(GeneratorConfig::small(seed)).generate();
            for floor in [0.5, 0.7] {
                let candidates = match_elements(
                    &problem.personal,
                    &repo,
                    &NameElementMatcher,
                    &ElementMatchConfig::default().with_min_similarity(floor),
                );
                for recluster in [
                    ReclusterStrategy::None,
                    ReclusterStrategy::Join,
                    ReclusterStrategy::JoinAndRemove,
                ] {
                    let base_config = ClusteringConfig::default().with_recluster(recluster);
                    let disabled = KMeansClusterer::new(base_config.with_small_tree_fast_path(0))
                        .cluster(&repo, &candidates);
                    for threshold in [ClusteringConfig::default().small_tree_fast_path, usize::MAX]
                    {
                        let enabled =
                            KMeansClusterer::new(base_config.with_small_tree_fast_path(threshold))
                                .cluster(&repo, &candidates);
                        assert_cluster_sets_identical(&disabled.0, &enabled.0);
                        assert!(enabled.1.iterations <= disabled.1.iterations);
                    }
                }
            }
        }
    }

    #[test]
    fn small_tree_fast_path_saves_an_iteration() {
        // A scope whose seeding is already the medoid fixed point: two candidate
        // nodes more than the join distance apart seed two singleton clusters
        // whose medoids are the seeds themselves. With the fast path the loop
        // stops after one iteration; without it the convergence criteria need a
        // second look at the unchanged state.
        use xsm_schema::{SchemaNode, TreeBuilder};
        let tree = TreeBuilder::new("records")
            .root(SchemaNode::element("rec"))
            .child(SchemaNode::element("name"))
            .sibling(SchemaNode::element("x1"))
            .child(SchemaNode::element("x2"))
            .child(SchemaNode::element("x3"))
            .child(SchemaNode::element("names"))
            .build();
        let repo = SchemaRepository::from_trees(vec![tree]);
        let personal = TreeBuilder::new("personal")
            .root(SchemaNode::element("name"))
            .build();
        let candidates = match_elements(
            &personal,
            &repo,
            &NameElementMatcher,
            &ElementMatchConfig::default().with_min_similarity(0.5),
        );
        assert_eq!(
            candidates.distinct_repo_nodes(),
            2,
            "scenario must seed exactly the two far-apart name nodes"
        );
        let config = ClusteringConfig::default().with_recluster(ReclusterStrategy::Join);
        let fast = KMeansClusterer::new(config).cluster(&repo, &candidates);
        let slow =
            KMeansClusterer::new(config.with_small_tree_fast_path(0)).cluster(&repo, &candidates);
        assert_cluster_sets_identical(&fast.0, &slow.0);
        assert!(
            fast.1.iterations < slow.1.iterations,
            "fast path never triggered: {} vs {} iterations",
            fast.1.iterations,
            slow.1.iterations
        );
    }

    #[test]
    fn clustering_decomposes_over_trees() {
        // The tree-local control contract: clustering the whole candidate set equals
        // clustering each tree's restriction and concatenating — the property the
        // sharded serving engine's bit-identical merge rests on.
        let (_, repo, candidates) = scenario();
        let clusterer = KMeansClusterer::new(ClusteringConfig::default());
        let (whole, _) = clusterer.cluster(&repo, &candidates);
        let mut parts = ClusterSet::default();
        for tree in candidates.trees() {
            let (part, _) = clusterer.cluster(&repo, &candidates.restrict_to_tree(tree));
            parts.clusters.extend(part.clusters);
            parts.unassigned.extend(part.unassigned);
        }
        assert_eq!(whole.len(), parts.len());
        for (a, b) in whole.clusters.iter().zip(&parts.clusters) {
            assert_eq!(a, b, "per-tree clustering diverged from the whole run");
        }
        assert_eq!(whole.unassigned, parts.unassigned);
    }
}
