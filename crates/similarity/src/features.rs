//! Precomputed name features and zero-allocation similarity kernels.
//!
//! The string-taking measures in this crate ([`crate::fuzzy`], [`crate::jaro`],
//! [`crate::ngram`], [`crate::token`]) re-derive everything on every call: they
//! lowercase both inputs, collect `Vec<char>`s, allocate one `String` per q-gram and
//! hash gram multisets into fresh maps. Repository element names are immutable after
//! index construction, so all of that is compute-once data. This module splits each
//! measure into
//!
//! 1. a **feature build** ([`NameFeatures::build`]) that runs once per name and
//!    precomputes the lowercased text, its `char`s, the Myers bit-parallel match
//!    vectors and an interned, sorted q-gram signature (the per-word token
//!    features only the token-set kernel reads are derived lazily, on first use —
//!    fuzzy-only workloads never build them), and
//! 2. a **kernel** ([`fuzzy_features`], [`levenshtein_features`], [`dice_features`],
//!    [`jaccard_features`], [`token_set_features`], …) that scores two feature sets
//!    without allocating: gram signatures are intersected by linear merge over `u32`
//!    ids instead of hashing, and edit distances for names of ≤ 64 characters run the
//!    bit-parallel Myers / Hyyrö algorithms in a handful of `u64` operations per text
//!    character (longer names fall back to the classic DP over caller-provided
//!    scratch rows).
//!
//! Every kernel is *bit-identical* to its string-path counterpart evaluated on the
//! lowercased inputs — asserted by the property suite in
//! `tests/feature_equivalence.rs` — so swapping a pipeline onto the feature path
//! cannot change any result, only its cost.

use std::collections::HashMap;

use crate::edit::{
    damerau_levenshtein_chars_scratch, levenshtein_chars_scratch, normalized_similarity,
};
use crate::simd::{BlockPeq, BlockScratch};
use crate::token::tokenize;

/// Maximum pattern length (in characters) served by the bit-parallel edit-distance
/// fast path; longer names fall back to the classic dynamic program.
pub const BITPARALLEL_MAX_CHARS: usize = 64;

/// Interns character q-grams to dense `u32` ids shared across a name corpus.
///
/// One interner is built per repository (inside `xsm-repo`'s `FeatureStore`); every
/// [`NameFeatures::build`] against it maps the name's grams onto the shared id space,
/// so two signatures can be intersected by merging sorted integers instead of hashing
/// strings. Ids are dense (`0..len`), which also lets an inverted index store its
/// posting lists in a plain `Vec`.
#[derive(Debug, Clone, Default)]
pub struct GramInterner {
    q: usize,
    map: HashMap<String, u32>,
}

impl GramInterner {
    /// An empty interner for grams of length `q` (`q >= 1`).
    pub fn new(q: usize) -> Self {
        assert!(q >= 1, "q must be at least 1");
        GramInterner {
            q,
            map: HashMap::new(),
        }
    }

    /// The gram length this interner was built for.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Number of distinct grams interned so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no gram has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The id of `gram`, interning it if unseen.
    pub fn intern(&mut self, gram: &str) -> u32 {
        if let Some(&id) = self.map.get(gram) {
            return id;
        }
        let id = self.map.len() as u32;
        self.map.insert(gram.to_string(), id);
        id
    }

    /// The id of `gram` if it has been interned, without mutating the interner
    /// (the read-only query-side path).
    pub fn lookup(&self, gram: &str) -> Option<u32> {
        self.map.get(gram).copied()
    }

    /// The interned grams in id order (`table[id] == gram`). This is the
    /// serialization-stable view of the interner: unlike iterating the internal
    /// map, the returned order is the dense id space itself.
    pub fn gram_table(&self) -> Vec<String> {
        let mut table = vec![String::new(); self.map.len()];
        for (gram, &id) in &self.map {
            table[id as usize] = gram.clone();
        }
        table
    }

    /// Rebuild an interner from a [`GramInterner::gram_table`] dump: gram `i` of
    /// `grams` gets id `i`, reproducing the exact id space the table was taken
    /// from. Duplicate grams in `grams` are a caller bug (the later entry wins
    /// and the id space develops holes), so the table must come from a trusted
    /// dump, not hostile input.
    pub fn from_table(q: usize, grams: Vec<String>) -> Self {
        assert!(q >= 1, "q must be at least 1");
        let map = grams
            .into_iter()
            .enumerate()
            .map(|(id, gram)| (gram, id as u32))
            .collect();
        GramInterner { q, map }
    }
}

/// `#`-padded character sequence of a lowercased name, exactly as
/// [`crate::ngram::qgrams`] pads it: `q - 1` sentinels on each side.
fn padded_chars(lower: &str, q: usize) -> Vec<char> {
    std::iter::repeat_n('#', q - 1)
        .chain(lower.chars())
        .chain(std::iter::repeat_n('#', q - 1))
        .collect()
}

/// Visit the padded q-grams of an **already-lowercased** name in order, reusing one
/// string buffer instead of allocating a `String` per gram. Yields exactly the grams
/// of [`crate::ngram::qgrams`] applied to the same name (`q >= 1`).
pub fn for_each_gram(lower: &str, q: usize, mut f: impl FnMut(&str)) {
    assert!(q >= 1, "q must be at least 1");
    if lower.is_ascii() && !crate::simd::force_scalar() {
        // Byte-window fast path: padding and every window are pure ASCII, so
        // each q-byte window is a valid &str with no per-window char copy.
        let mut padded = Vec::with_capacity(lower.len() + 2 * (q - 1));
        padded.resize(q - 1, b'#');
        padded.extend_from_slice(lower.as_bytes());
        padded.resize(padded.len() + q - 1, b'#');
        if padded.len() < q {
            return;
        }
        for window in padded.windows(q) {
            f(std::str::from_utf8(window).expect("ascii window"));
        }
        return;
    }
    let padded = padded_chars(lower, q);
    if padded.len() < q {
        return;
    }
    let mut gram = String::with_capacity(q * 4);
    for window in padded.windows(q) {
        gram.clear();
        gram.extend(window.iter());
        f(&gram);
    }
}

/// Bit-parallel match vectors of a pattern: for each distinct character, the bitmask
/// of its positions. Sorted by character for branch-free binary-search lookup.
fn build_peq(chars: &[char]) -> Box<[(char, u64)]> {
    if chars.is_empty() || chars.len() > BITPARALLEL_MAX_CHARS {
        return Box::new([]);
    }
    let mut peq: Vec<(char, u64)> = Vec::with_capacity(chars.len());
    for (i, &c) in chars.iter().enumerate() {
        match peq.binary_search_by_key(&c, |&(pc, _)| pc) {
            Ok(pos) => peq[pos].1 |= 1u64 << i,
            Err(pos) => peq.insert(pos, (c, 1u64 << i)),
        }
    }
    peq.into_boxed_slice()
}

#[inline]
fn peq_lookup(peq: &[(char, u64)], c: char) -> u64 {
    match peq.binary_search_by_key(&c, |&(pc, _)| pc) {
        Ok(pos) => peq[pos].1,
        Err(_) => 0,
    }
}

/// One word token of a compound name, with its bit-parallel match vectors.
/// Tokens come from [`crate::token::tokenize`] and are always lowercase and
/// non-empty.
#[derive(Debug, Clone)]
pub struct TokenFeatures {
    chars: Box<[char]>,
    peq: Box<[(char, u64)]>,
    /// Blocked match table for tokens past [`BITPARALLEL_MAX_CHARS`], built on
    /// first use by the blocked Hyyrö kernel (rare: most tokens are short).
    block_peq: std::sync::OnceLock<BlockPeq>,
}

impl TokenFeatures {
    fn new(token: &str) -> Self {
        let chars: Box<[char]> = token.chars().collect();
        let peq = build_peq(&chars);
        TokenFeatures {
            chars,
            peq,
            block_peq: std::sync::OnceLock::new(),
        }
    }

    /// The token's characters (lowercase).
    pub fn chars(&self) -> &[char] {
        &self.chars
    }
}

/// Everything the similarity kernels need about one name, computed once.
///
/// Gram signatures are sorted, deduplicated `u32` ids from a shared
/// [`GramInterner`], with the per-gram multiplicities kept in a parallel array so
/// the Dice kernel can score the exact multiset overlap the string path computes.
#[derive(Debug, Clone)]
pub struct NameFeatures {
    /// The lowercased name (`String::to_lowercase`, matching every kernel's
    /// case-insensitivity convention).
    pub lower: Box<str>,
    /// Unicode scalar values of [`NameFeatures::lower`], materialised **on
    /// first use** by a character-level kernel: the gram/Dice path (the serving
    /// engine's pruning stage) never touches them, and on a snapshot load the
    /// match vectors arrive precomputed, so eagerly unpacking every name into
    /// `char`s would be pure startup cost. A fresh [`NameFeatures::build`]
    /// still fills them immediately — it needs them to build `peq` anyway.
    chars: std::sync::OnceLock<Box<[char]>>,
    /// Character count of [`NameFeatures::lower`] (cheap, always available —
    /// length filters must not force the lazy `chars`).
    char_len: u32,
    /// The original name as given, kept **only when lowercasing changed it** — the
    /// tokenizer needs the original case (camelCase boundaries vanish in
    /// [`NameFeatures::lower`]), but for the common already-lowercase corpus name
    /// `lower` *is* the original and storing a byte-identical copy per node would
    /// only bloat repository-wide feature stores.
    original: Option<Box<str>>,
    /// Word tokens of the original name (camelCase / snake_case / digit splits),
    /// built **on first use**: the fuzzy/edit/Jaro/gram kernels never read tokens,
    /// so a fuzzy-only workload (the serving engine's default) pays nothing for
    /// them — neither at [`NameFeatures::build`] time (repository-wide feature
    /// stores build one `NameFeatures` per node) nor per query.
    tokens: std::sync::OnceLock<Box<[TokenFeatures]>>,
    /// The gram signature and its multiplicities in one allocation: the first
    /// half holds the sorted, deduplicated interned gram ids, the second half
    /// the multiplicity of each id (same order). Feature stores hold one
    /// `NameFeatures` per repository node, so one box instead of two parallel
    /// ones measurably cuts allocator traffic on build and snapshot load.
    grams: Box<[u32]>,
    /// Total number of gram occurrences (`Σ gram_counts`).
    gram_total: u32,
    /// Myers match vectors of `chars` (empty when the name is empty or longer than
    /// [`BITPARALLEL_MAX_CHARS`]).
    peq: Box<[(char, u64)]>,
    /// Packed per-gram positions, parallel to [`NameFeatures::gram_sig`]:
    /// `first_occurrence << 16 | last_occurrence` (both clamped to `u16`) in the
    /// padded gram stream. Feeds the positional q-gram filter in `xsm-repo`.
    /// Empty on snapshot-loaded features ([`NameFeatures::from_parts`]) — only
    /// fresh builds, which are the only index-construction path, carry it.
    gram_pos: Box<[u32]>,
    /// Blocked match table for names past [`BITPARALLEL_MAX_CHARS`], built on
    /// first use by a blocked kernel. Lazy for the same reason `chars` is: the
    /// gram pruning stage never needs it, and snapshot loads should not pay for
    /// names that are never edit-scored.
    block_peq: std::sync::OnceLock<BlockPeq>,
}

impl NameFeatures {
    /// Build the features of `name`, interning unseen grams into `interner`.
    /// This is the corpus-side constructor: every name of a repository is built
    /// against the same interner so all signatures share one id space.
    pub fn build(name: &str, interner: &mut GramInterner) -> Self {
        let q = interner.q();
        Self::build_inner(name, &mut |gram| interner.intern(gram), q)
    }

    /// Build features for a *query* name against a frozen interner.
    ///
    /// Grams the interner has never seen are assigned fresh ids past
    /// `interner.len()`, locally unique within this name. Such ids collide with no
    /// corpus id, so comparing this feature set against any corpus-built feature set
    /// is exact; comparing two *query*-built sets against each other is not
    /// meaningful (their private ids may clash) — queries are only ever scored
    /// against the corpus.
    pub fn build_query(name: &str, interner: &GramInterner) -> Self {
        let base = interner.len() as u32;
        let mut local: HashMap<String, u32> = HashMap::new();
        Self::build_inner(
            name,
            &mut |gram| match interner.lookup(gram) {
                Some(id) => id,
                None => {
                    let next = base + local.len() as u32;
                    *local.entry(gram.to_string()).or_insert(next)
                }
            },
            interner.q(),
        )
    }

    fn build_inner(name: &str, intern: &mut dyn FnMut(&str) -> u32, q: usize) -> Self {
        let lower = crate::simd::lowercase(name);
        let chars: Box<[char]> = lower.chars().collect();
        let peq = build_peq(&chars);

        let mut occurrences: Vec<(u32, u32)> = Vec::new();
        let mut pos = 0u32;
        for_each_gram(&lower, q, |gram| {
            occurrences.push((intern(gram), pos));
            pos += 1;
        });
        occurrences.sort_unstable();
        let mut sig: Vec<u32> = Vec::with_capacity(occurrences.len());
        let mut counts: Vec<u32> = Vec::with_capacity(occurrences.len());
        let mut gram_pos: Vec<u32> = Vec::with_capacity(occurrences.len());
        for &(id, p) in &occurrences {
            let p16 = p.min(0xFFFF);
            if sig.last() == Some(&id) {
                *counts.last_mut().expect("counts parallel to sig") += 1;
                // Occurrences of one id arrive position-sorted, so the low
                // half only ever grows toward the last occurrence.
                let packed = gram_pos.last_mut().expect("pos parallel to sig");
                *packed = (*packed & 0xFFFF_0000) | p16;
            } else {
                sig.push(id);
                counts.push(1);
                gram_pos.push((p16 << 16) | p16);
            }
        }
        sig.extend_from_slice(&counts);
        NameFeatures {
            original: (name != lower).then(|| name.into()),
            lower: lower.into_boxed_str(),
            char_len: chars.len() as u32,
            chars: std::sync::OnceLock::from(chars),
            tokens: std::sync::OnceLock::new(),
            grams: sig.into_boxed_slice(),
            gram_total: occurrences.len() as u32,
            peq,
            gram_pos: gram_pos.into_boxed_slice(),
            block_peq: std::sync::OnceLock::new(),
        }
    }

    /// The word tokens of the original name, tokenizing on first call (thread-safe;
    /// concurrent first calls race benignly on one `OnceLock`). Token features are
    /// identical whether they were built lazily here or would have been built
    /// eagerly at construction — the tokenizer sees the same original name.
    pub fn tokens(&self) -> &[TokenFeatures] {
        self.tokens.get_or_init(|| {
            let original = self.original.as_deref().unwrap_or(&self.lower);
            tokenize(original)
                .iter()
                .map(|t| TokenFeatures::new(t))
                .collect()
        })
    }

    /// Whether the token features have been materialised yet (observability for
    /// tests pinning the lazy-build contract).
    pub fn tokens_built(&self) -> bool {
        self.tokens.get().is_some()
    }

    /// Number of characters of the (lowercased) name.
    pub fn char_len(&self) -> usize {
        self.char_len as usize
    }

    /// Unicode scalar values of [`NameFeatures::lower`], materialising them on
    /// first call (thread-safe; concurrent first calls race benignly on one
    /// `OnceLock`, exactly like [`NameFeatures::tokens`]).
    pub fn chars(&self) -> &[char] {
        self.chars.get_or_init(|| {
            // `bytes()` knows its exact length, so the ASCII path allocates the
            // boxed slice once; `chars()` has no useful size hint.
            if self.lower.is_ascii() {
                self.lower.bytes().map(char::from).collect()
            } else {
                self.lower.chars().collect()
            }
        })
    }

    /// Total number of q-gram occurrences the name produced (multiset size).
    pub fn gram_total(&self) -> usize {
        self.gram_total as usize
    }

    /// The original name when lowercasing changed it; `None` means
    /// [`NameFeatures::lower`] *is* the original.
    pub fn original(&self) -> Option<&str> {
        self.original.as_deref()
    }

    /// Sorted, deduplicated interned ids of the name's padded q-grams.
    pub fn gram_sig(&self) -> &[u32] {
        &self.grams[..self.grams.len() / 2]
    }

    /// Multiplicity of each gram in [`NameFeatures::gram_sig`] (parallel array).
    pub fn gram_counts(&self) -> &[u32] {
        &self.grams[self.grams.len() / 2..]
    }

    /// The Myers match vectors: for each distinct character of the name, the
    /// bitmask of its positions, sorted by character. Empty when the name is
    /// empty or longer than the bit-parallel limit.
    pub fn peq_pairs(&self) -> &[(char, u64)] {
        &self.peq
    }

    /// Packed positions (`first << 16 | last`, clamped to `u16`) of each gram in
    /// [`NameFeatures::gram_sig`], in the padded gram stream. Empty on features
    /// reassembled by [`NameFeatures::from_parts`].
    pub fn gram_positions(&self) -> &[u32] {
        &self.gram_pos
    }

    /// The blocked Myers match table for names past [`BITPARALLEL_MAX_CHARS`],
    /// materialised on first call (thread-safe, like [`NameFeatures::chars`]).
    /// Snapshot-loaded features build it here too, from the lazily unpacked
    /// chars — nothing extra is serialized.
    pub fn block_peq(&self) -> &BlockPeq {
        self.block_peq.get_or_init(|| BlockPeq::build(self.chars()))
    }

    /// Reassemble features from previously dumped parts (a snapshot load path).
    ///
    /// The parts must come from an earlier [`NameFeatures`] built against the
    /// same interner id space: `grams` is the even-length concatenation of the
    /// sorted, deduplicated gram signature and its parallel multiplicities
    /// ([`NameFeatures::gram_sig`] then [`NameFeatures::gram_counts`]), `peq`
    /// exactly the dump of [`NameFeatures::peq_pairs`]. Cheap derived fields
    /// (`char_len`, `gram_total`) are recomputed here; `chars` and tokens stay
    /// lazy — the match vectors arrive in `peq`, so nothing needs the char
    /// slice until a character-level kernel runs.
    pub fn from_parts(
        lower: Box<str>,
        original: Option<Box<str>>,
        grams: Box<[u32]>,
        peq: Box<[(char, u64)]>,
    ) -> Self {
        debug_assert!(grams.len() % 2 == 0, "grams must be sig ++ counts");
        let char_len = if lower.is_ascii() {
            lower.len()
        } else {
            lower.chars().count()
        } as u32;
        let gram_total = grams[grams.len() / 2..].iter().sum();
        NameFeatures {
            lower,
            char_len,
            chars: std::sync::OnceLock::new(),
            original,
            tokens: std::sync::OnceLock::new(),
            grams,
            gram_total,
            peq,
            gram_pos: Box::new([]),
            block_peq: std::sync::OnceLock::new(),
        }
    }
}

/// Reusable scratch buffers for the kernels that need per-call working memory (the
/// DP fallback rows and the Jaro matched flags). One instance per worker thread
/// makes steady-state scoring allocation-free.
#[derive(Debug, Clone, Default)]
pub struct SimScratch {
    row0: Vec<usize>,
    row1: Vec<usize>,
    row2: Vec<usize>,
    a_matched: Vec<bool>,
    b_matched: Vec<bool>,
    blocks: BlockScratch,
}

/// Myers' 1999 bit-parallel Levenshtein distance: pattern of `m <= 64` characters
/// (as match vectors `peq`), text streamed char by char. `O(|text|)` words of work.
fn myers_levenshtein(peq: &[(char, u64)], m: usize, text: &[char]) -> usize {
    debug_assert!((1..=BITPARALLEL_MAX_CHARS).contains(&m));
    let mut pv: u64 = !0;
    let mut mv: u64 = 0;
    let mut score = m;
    let last = 1u64 << (m - 1);
    for &c in text {
        let eq = peq_lookup(peq, c);
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let ph = mv | !(xh | pv);
        let mh = pv & xh;
        if ph & last != 0 {
            score += 1;
        }
        if mh & last != 0 {
            score -= 1;
        }
        let ph = (ph << 1) | 1;
        pv = (mh << 1) | !(xv | ph);
        mv = ph & xv;
    }
    score
}

/// Hyyrö's 2003 bit-parallel Damerau–Levenshtein (OSA) distance: Myers plus a
/// transposition vector carried between text positions.
fn hyyro_osa(peq: &[(char, u64)], m: usize, text: &[char]) -> usize {
    debug_assert!((1..=BITPARALLEL_MAX_CHARS).contains(&m));
    let mut pv: u64 = !0;
    let mut mv: u64 = 0;
    let mut d0: u64 = 0;
    let mut pm_prev: u64 = 0;
    let mut score = m;
    let last = 1u64 << (m - 1);
    for &c in text {
        let pm = peq_lookup(peq, c);
        let tr = (((!d0) & pm) << 1) & pm_prev;
        d0 = ((((pm & pv).wrapping_add(pv)) ^ pv) | pm | mv) | tr;
        let hp = mv | !(d0 | pv);
        let hn = d0 & pv;
        if hp & last != 0 {
            score += 1;
        }
        if hn & last != 0 {
            score -= 1;
        }
        let hp = (hp << 1) | 1;
        let hn = hn << 1;
        pv = hn | !(d0 | hp);
        mv = hp & d0;
        pm_prev = pm;
    }
    score
}

/// Levenshtein distance over precomputed features (lowercased characters):
/// bit-parallel when either name fits in [`BITPARALLEL_MAX_CHARS`] characters,
/// classic DP over the scratch rows otherwise. Equals
/// `edit::levenshtein(a.lower, b.lower)`.
pub fn levenshtein_features(a: &NameFeatures, b: &NameFeatures, scratch: &mut SimScratch) -> usize {
    if a.char_len == 0 {
        return b.char_len();
    }
    if b.char_len == 0 {
        return a.char_len();
    }
    if a.char_len() <= BITPARALLEL_MAX_CHARS {
        myers_levenshtein(&a.peq, a.char_len(), b.chars())
    } else if b.char_len() <= BITPARALLEL_MAX_CHARS {
        myers_levenshtein(&b.peq, b.char_len(), a.chars())
    } else if !crate::simd::force_scalar() {
        // Both sides past the single-word limit: blocked Myers, with the
        // shorter side as the pattern (fewer blocks per text character).
        let (p, t) = if a.char_len() <= b.char_len() {
            (a, b)
        } else {
            (b, a)
        };
        crate::simd::myers_levenshtein_blocked(
            p.block_peq(),
            p.char_len(),
            t.chars(),
            &mut scratch.blocks,
        )
    } else {
        levenshtein_chars_scratch(a.chars(), b.chars(), &mut scratch.row0, &mut scratch.row1)
    }
}

/// The Damerau dispatch shared by the whole-name and per-token kernels: Hyyrö
/// bit-parallel when either side's pattern fits [`BITPARALLEL_MAX_CHARS`]
/// (distance is symmetric, so either side may serve as the pattern), classic DP
/// over the scratch rows otherwise. One policy, so a fast-path change can never
/// silently diverge names from tokens.
#[allow(clippy::too_many_arguments)]
fn damerau_dispatch(
    a_chars: &[char],
    a_peq: &[(char, u64)],
    a_block: &std::sync::OnceLock<BlockPeq>,
    b_chars: &[char],
    b_peq: &[(char, u64)],
    b_block: &std::sync::OnceLock<BlockPeq>,
    scratch: &mut SimScratch,
) -> usize {
    if a_chars.is_empty() {
        return b_chars.len();
    }
    if b_chars.is_empty() {
        return a_chars.len();
    }
    if a_chars.len() <= BITPARALLEL_MAX_CHARS {
        hyyro_osa(a_peq, a_chars.len(), b_chars)
    } else if b_chars.len() <= BITPARALLEL_MAX_CHARS {
        hyyro_osa(b_peq, b_chars.len(), a_chars)
    } else if !crate::simd::force_scalar() {
        // Both sides past the single-word limit: blocked Hyyrö, shorter side
        // as the pattern.
        let (pc, pb, tc) = if a_chars.len() <= b_chars.len() {
            (a_chars, a_block, b_chars)
        } else {
            (b_chars, b_block, a_chars)
        };
        let peq = pb.get_or_init(|| BlockPeq::build(pc));
        crate::simd::hyyro_osa_blocked(peq, pc.len(), tc, &mut scratch.blocks)
    } else {
        damerau_levenshtein_chars_scratch(
            a_chars,
            b_chars,
            &mut scratch.row0,
            &mut scratch.row1,
            &mut scratch.row2,
        )
    }
}

/// Damerau–Levenshtein (OSA) distance over precomputed features; bit-parallel fast
/// path as in [`levenshtein_features`]. Equals
/// `edit::damerau_levenshtein(a.lower, b.lower)`.
pub fn damerau_features(a: &NameFeatures, b: &NameFeatures, scratch: &mut SimScratch) -> usize {
    damerau_dispatch(
        a.chars(),
        &a.peq,
        &a.block_peq,
        b.chars(),
        &b.peq,
        &b.block_peq,
        scratch,
    )
}

/// The paper's kernel over features: normalized Damerau–Levenshtein, bit-identical
/// to [`crate::fuzzy::compare_string_fuzzy`] on the original names.
pub fn fuzzy_features(a: &NameFeatures, b: &NameFeatures, scratch: &mut SimScratch) -> f64 {
    if a.lower.is_empty() && b.lower.is_empty() {
        return 1.0;
    }
    if a.lower == b.lower {
        return 1.0;
    }
    let d = damerau_features(a, b, scratch);
    normalized_similarity(d, a.char_len(), b.char_len())
}

fn fuzzy_tokens(a: &TokenFeatures, b: &TokenFeatures, scratch: &mut SimScratch) -> f64 {
    if a.chars == b.chars {
        return 1.0;
    }
    let d = damerau_dispatch(
        &a.chars,
        &a.peq,
        &a.block_peq,
        &b.chars,
        &b.peq,
        &b.block_peq,
        scratch,
    );
    normalized_similarity(d, a.chars.len(), b.chars.len())
}

/// Token-set similarity over features, bit-identical to
/// [`crate::token::token_set_similarity`] on the original names: greedy best-match
/// average of per-token fuzzy similarities, symmetrised over both directions.
pub fn token_set_features(a: &NameFeatures, b: &NameFeatures, scratch: &mut SimScratch) -> f64 {
    let (a_tokens, b_tokens) = (a.tokens(), b.tokens());
    if a_tokens.is_empty() && b_tokens.is_empty() {
        return 1.0;
    }
    if a_tokens.is_empty() || b_tokens.is_empty() {
        return 0.0;
    }
    let mut dir = |from: &[TokenFeatures], to: &[TokenFeatures]| -> f64 {
        from.iter()
            .map(|x| {
                to.iter()
                    .map(|y| fuzzy_tokens(x, y, scratch))
                    .fold(0.0, f64::max)
            })
            .sum::<f64>()
            / from.len() as f64
    };
    (dir(a_tokens, b_tokens) + dir(b_tokens, a_tokens)) / 2.0
}

/// Jaro similarity over features, bit-identical to [`crate::jaro::jaro`] on the
/// original names. The matched flags live in the scratch buffers.
pub fn jaro_features(a: &NameFeatures, b: &NameFeatures, scratch: &mut SimScratch) -> f64 {
    let (la, lb) = (a.char_len(), b.char_len());
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    let (a_chars, b_chars) = (a.chars(), b.chars());
    let match_window = (la.max(lb) / 2).saturating_sub(1);
    scratch.a_matched.clear();
    scratch.a_matched.resize(la, false);
    scratch.b_matched.clear();
    scratch.b_matched.resize(lb, false);
    let mut matches = 0usize;
    for (i, &ca) in a_chars.iter().enumerate() {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(lb);
        for (j, &cb) in b_chars.iter().enumerate().take(hi).skip(lo) {
            if !scratch.b_matched[j] && cb == ca {
                scratch.a_matched[i] = true;
                scratch.b_matched[j] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    let mut transpositions = 0usize;
    let mut k = 0usize;
    for (i, &ca) in a_chars.iter().enumerate() {
        if scratch.a_matched[i] {
            while !scratch.b_matched[k] {
                k += 1;
            }
            if ca != b_chars[k] {
                transpositions += 1;
            }
            k += 1;
        }
    }
    let m = matches as f64;
    let t = transpositions as f64 / 2.0;
    (m / la as f64 + m / lb as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler over features, bit-identical to [`crate::jaro::jaro_winkler`] on the
/// original names (prefix bonus 0.1, prefix capped at 4 characters).
pub fn jaro_winkler_features(a: &NameFeatures, b: &NameFeatures, scratch: &mut SimScratch) -> f64 {
    let j = jaro_features(a, b, scratch);
    if j == 0.0 {
        return 0.0;
    }
    let prefix = a
        .chars()
        .iter()
        .zip(b.chars().iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (j + prefix * 0.1 * (1.0 - j)).min(1.0)
}

/// Dice-coefficient q-gram similarity over interned signatures, bit-identical to
/// [`crate::ngram::ngram_similarity`] with the interner's `q`: the multiset overlap
/// comes from a linear merge of the two sorted signatures (`min` of the parallel
/// multiplicities), no hashing and no allocation.
pub fn dice_features(a: &NameFeatures, b: &NameFeatures) -> f64 {
    if a.lower.is_empty() && b.lower.is_empty() {
        return 1.0;
    }
    if a.gram_total == 0 || b.gram_total == 0 {
        return 0.0;
    }
    let (a_sig, a_counts) = (a.gram_sig(), a.gram_counts());
    let (b_sig, b_counts) = (b.gram_sig(), b.gram_counts());
    let mut overlap = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_sig.len() && j < b_sig.len() {
        match a_sig[i].cmp(&b_sig[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                overlap += a_counts[i].min(b_counts[j]) as usize;
                i += 1;
                j += 1;
            }
        }
    }
    2.0 * overlap as f64 / (a.gram_total as usize + b.gram_total as usize) as f64
}

/// Jaccard q-gram *set* similarity over interned signatures, bit-identical to
/// [`crate::ngram::qgram_jaccard`] with the interner's `q`. Linear merge over the
/// deduplicated signatures.
pub fn jaccard_features(a: &NameFeatures, b: &NameFeatures) -> f64 {
    if a.lower.is_empty() && b.lower.is_empty() {
        return 1.0;
    }
    let (a_sig, b_sig) = (a.gram_sig(), b.gram_sig());
    if a_sig.is_empty() || b_sig.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_sig.len() && j < b_sig.len() {
        match a_sig[i].cmp(&b_sig[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a_sig.len() + b_sig.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::{damerau_levenshtein, levenshtein};
    use crate::fuzzy::compare_string_fuzzy;
    use crate::jaro::{jaro, jaro_winkler};
    use crate::ngram::{ngram_similarity, qgram_jaccard};
    use crate::token::token_set_similarity;

    fn pair(a: &str, b: &str, q: usize) -> (NameFeatures, NameFeatures) {
        let mut interner = GramInterner::new(q);
        (
            NameFeatures::build(a, &mut interner),
            NameFeatures::build(b, &mut interner),
        )
    }

    #[test]
    fn interner_dedupes_and_is_stable() {
        let mut interner = GramInterner::new(3);
        assert!(interner.is_empty());
        let id = interner.intern("abc");
        assert_eq!(interner.intern("abc"), id);
        assert_ne!(interner.intern("abd"), id);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.lookup("abc"), Some(id));
        assert_eq!(interner.lookup("zzz"), None);
        assert_eq!(interner.q(), 3);
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn zero_q_interner_panics() {
        GramInterner::new(0);
    }

    #[test]
    fn features_capture_the_name() {
        let mut interner = GramInterner::new(3);
        let f = NameFeatures::build("AuthorName", &mut interner);
        assert_eq!(&*f.lower, "authorname");
        assert_eq!(f.char_len(), 10);
        // Tokens are lazy: nothing is materialised until a token kernel asks.
        assert!(!f.tokens_built());
        assert_eq!(f.tokens().len(), 2);
        assert!(f.tokens_built());
        assert_eq!(f.tokens()[0].chars().iter().collect::<String>(), "author");
        // "authorname" padded with ## on both sides → 12 grams of length 3.
        assert_eq!(f.gram_total(), 12);
        assert!(
            f.gram_sig().windows(2).all(|w| w[0] < w[1]),
            "sorted, deduped"
        );
    }

    #[test]
    fn kernels_match_string_paths_on_known_values() {
        let mut scratch = SimScratch::default();
        for (a, b) in [
            ("author", "authorName"),
            ("kitten", "sitting"),
            ("", ""),
            ("", "abc"),
            ("ca", "ac"),
            ("Book", "bOOK"),
            ("naïve", "naive"),
            ("first_name", "nameFirst"),
        ] {
            let (fa, fb) = pair(a, b, 3);
            let (la, lb) = (a.to_lowercase(), b.to_lowercase());
            assert_eq!(
                levenshtein_features(&fa, &fb, &mut scratch),
                levenshtein(&la, &lb),
                "levenshtein {a} {b}"
            );
            assert_eq!(
                damerau_features(&fa, &fb, &mut scratch),
                damerau_levenshtein(&la, &lb),
                "damerau {a} {b}"
            );
            assert_eq!(
                fuzzy_features(&fa, &fb, &mut scratch).to_bits(),
                compare_string_fuzzy(a, b).to_bits(),
                "fuzzy {a} {b}"
            );
            assert_eq!(
                jaro_features(&fa, &fb, &mut scratch).to_bits(),
                jaro(a, b).to_bits(),
                "jaro {a} {b}"
            );
            assert_eq!(
                jaro_winkler_features(&fa, &fb, &mut scratch).to_bits(),
                jaro_winkler(a, b).to_bits(),
                "jaro-winkler {a} {b}"
            );
            assert_eq!(
                dice_features(&fa, &fb).to_bits(),
                ngram_similarity(a, b, 3).to_bits(),
                "dice {a} {b}"
            );
            assert_eq!(
                jaccard_features(&fa, &fb).to_bits(),
                qgram_jaccard(a, b, 3).to_bits(),
                "jaccard {a} {b}"
            );
            assert_eq!(
                token_set_features(&fa, &fb, &mut scratch).to_bits(),
                token_set_similarity(a, b).to_bits(),
                "token-set {a} {b}"
            );
        }
    }

    #[test]
    fn dp_fallback_used_beyond_64_chars() {
        let long_a = "a".repeat(70) + "xyz";
        let long_b = "a".repeat(70) + "xzy";
        let (fa, fb) = pair(&long_a, &long_b, 3);
        let mut scratch = SimScratch::default();
        assert_eq!(
            levenshtein_features(&fa, &fb, &mut scratch),
            levenshtein(&long_a, &long_b)
        );
        assert_eq!(
            damerau_features(&fa, &fb, &mut scratch),
            damerau_levenshtein(&long_a, &long_b)
        );
        // Mixed: one short, one long still takes the bit-parallel path.
        let (fs, fl) = pair("short", &long_a, 3);
        assert_eq!(
            levenshtein_features(&fs, &fl, &mut scratch),
            levenshtein("short", &long_a)
        );
    }

    #[test]
    fn exactly_64_chars_uses_bit_parallel_correctly() {
        let a64: String = ('a'..='z').cycle().take(64).collect();
        let mut b64: String = a64.clone();
        b64.replace_range(10..11, "Z");
        let (fa, fb) = pair(&a64, &b64.to_lowercase(), 3);
        let mut scratch = SimScratch::default();
        assert_eq!(fa.char_len(), 64);
        assert_eq!(
            levenshtein_features(&fa, &fb, &mut scratch),
            levenshtein(&a64, &b64.to_lowercase())
        );
        assert_eq!(
            damerau_features(&fa, &fb, &mut scratch),
            damerau_levenshtein(&a64, &b64.to_lowercase())
        );
    }

    #[test]
    fn lazy_tokens_change_no_score_and_build_only_on_demand() {
        let mut scratch = SimScratch::default();
        for (a, b) in [
            ("authorName", "author_name"),
            ("firstName", "nameFirst"),
            ("Book", "bOOK"),
            ("", "x1y2"),
        ] {
            let (fa, fb) = pair(a, b, 3);
            // The fuzzy/edit/Jaro/gram kernels must not trigger tokenization…
            let fuzzy = fuzzy_features(&fa, &fb, &mut scratch);
            let _ = levenshtein_features(&fa, &fb, &mut scratch);
            let _ = jaro_winkler_features(&fa, &fb, &mut scratch);
            let _ = dice_features(&fa, &fb);
            let _ = jaccard_features(&fa, &fb);
            assert!(!fa.tokens_built(), "{a}: fuzzy workload built tokens");
            assert!(!fb.tokens_built(), "{b}: fuzzy workload built tokens");
            // …and their scores are pinned to the string paths regardless.
            assert_eq!(fuzzy.to_bits(), compare_string_fuzzy(a, b).to_bits());
            // The token kernel materialises tokens and still matches the string
            // path bit-for-bit (the lazy build sees the same original name).
            let ts = token_set_features(&fa, &fb, &mut scratch);
            assert!(fa.tokens_built() && fb.tokens_built());
            assert_eq!(ts.to_bits(), token_set_similarity(a, b).to_bits());
            // Idempotent: a second call reuses the materialised tokens.
            assert_eq!(
                token_set_features(&fa, &fb, &mut scratch).to_bits(),
                ts.to_bits()
            );
        }
    }

    #[test]
    fn cloning_preserves_lazy_and_materialised_tokens() {
        let mut interner = GramInterner::new(3);
        let f = NameFeatures::build("authorName", &mut interner);
        let cloned_lazy = f.clone();
        assert!(!cloned_lazy.tokens_built());
        assert_eq!(f.tokens().len(), 2);
        let cloned_built = f.clone();
        assert!(cloned_built.tokens_built());
        assert_eq!(cloned_built.tokens().len(), 2);
        assert_eq!(cloned_lazy.tokens().len(), 2);
    }

    #[test]
    fn query_features_score_exactly_against_corpus_features() {
        let mut interner = GramInterner::new(3);
        let corpus: Vec<NameFeatures> = ["authorName", "title", "emailAddress"]
            .iter()
            .map(|n| NameFeatures::build(n, &mut interner))
            .collect();
        // "authorNameX" has grams the interner never saw; they must not collide.
        let q = NameFeatures::build_query("authorNameX", &interner);
        let mut scratch = SimScratch::default();
        for f in &corpus {
            let name: String = f.lower.to_string();
            assert_eq!(
                dice_features(&q, f).to_bits(),
                ngram_similarity("authorNameX", &name, 3).to_bits()
            );
            assert_eq!(
                jaccard_features(&q, f).to_bits(),
                qgram_jaccard("authorNameX", &name, 3).to_bits()
            );
            assert_eq!(
                fuzzy_features(&q, f, &mut scratch).to_bits(),
                compare_string_fuzzy("authorNameX", &name).to_bits()
            );
        }
    }
}
