//! Memoization cache for name-pair similarities.
//!
//! Element matching compares every personal-schema name against every repository name;
//! repository names repeat heavily (every schema has a `name`, `id`, `date` …), so
//! caching by *name pair* rather than node pair removes most of the string-kernel work.

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Default capacity (in cached pairs) of a [`SimilarityCache`].
///
/// A pair entry is two short strings plus an `f64` — roughly 100 bytes — so the
/// default bounds the cache at a few hundred MB even with pathological name lengths,
/// while staying far above the distinct-pair count of the paper-scale experiments.
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 20;

/// Number of independently locked shards. A lookup locks exactly one shard, so up to
/// this many worker threads can hit the cache concurrently; 16 comfortably covers the
/// worker counts a single-host serving engine runs.
const SHARD_COUNT: usize = 16;

type PairKey = (String, String);

/// One shard's state behind one lock: map, FIFO eviction queue and counters.
///
/// A single `Mutex` per shard (instead of one per field) means a lookup takes exactly
/// one lock/unlock, and the hit/miss counters can never drift out of sync with the
/// map under concurrent use.
#[derive(Debug, Default)]
struct Inner {
    /// Keys are `Arc`-shared with `order`, so each pair's strings are allocated once
    /// even though both structures reference them.
    map: HashMap<Arc<PairKey>, f64>,
    /// Insertion order of the keys in `map`; the front is the eviction victim.
    order: VecDeque<Arc<PairKey>>,
    hits: u64,
    misses: u64,
}

/// A thread-safe, *bounded*, sharded `(name, name) → similarity` cache.
///
/// The key is order-normalised so `("a","b")` and `("b","a")` share an entry, matching
/// the symmetry of every kernel in this crate. Entries are spread over
/// independently locked shards (keyed by a deterministic hash), and each shard evicts
/// its oldest entry (FIFO) at capacity — so a long-lived process sharing one cache
/// across many queries can neither grow without bound nor serialise its workers on a
/// single lock.
#[derive(Debug)]
pub struct SimilarityCache {
    shards: Vec<Mutex<Inner>>,
    shard_capacity: usize,
}

impl Default for SimilarityCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl SimilarityCache {
    /// Create an empty cache with the [default capacity](DEFAULT_CACHE_CAPACITY).
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty cache bounded at roughly `capacity` pairs. The bound is split
    /// evenly over the shards, so the effective capacity is `capacity` rounded up to
    /// a multiple of the shard count.
    pub fn with_capacity(capacity: usize) -> Self {
        let shard_capacity = capacity.div_ceil(SHARD_COUNT).max(1);
        SimilarityCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Inner::default()))
                .collect(),
            shard_capacity,
        }
    }

    /// The maximum number of pairs the cache retains.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARD_COUNT
    }

    /// The shard a key hashes to. `DefaultHasher` uses fixed keys, so the placement
    /// is deterministic across runs and threads.
    fn shard(&self, key: &PairKey) -> &Mutex<Inner> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARD_COUNT]
    }

    /// Get the cached value for a pair, or compute and insert it.
    pub fn get_or_compute<F>(&self, a: &str, b: &str, compute: F) -> f64
    where
        F: FnOnce() -> f64,
    {
        let key = if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        };
        let shard = self.shard(&key);
        {
            let mut inner = shard.lock().unwrap();
            if let Some(&v) = inner.map.get(&key) {
                inner.hits += 1;
                return v;
            }
        }
        // Compute outside the lock: kernels are quadratic in the name lengths and
        // holding the lock across them would serialise every worker. Two threads may
        // race on the same missing pair; both compute the same value (kernels are
        // pure), so the double insert is harmless.
        let v = compute();
        let key = Arc::new(key);
        let mut inner = shard.lock().unwrap();
        inner.misses += 1;
        if inner.map.insert(Arc::clone(&key), v).is_none() {
            inner.order.push_back(key);
            while inner.map.len() > self.shard_capacity {
                if let Some(victim) = inner.order.pop_front() {
                    inner.map.remove(&victim);
                } else {
                    break;
                }
            }
        }
        v
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since construction or the last [`SimilarityCache::clear`].
    pub fn stats(&self) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for shard in &self.shards {
            let inner = shard.lock().unwrap();
            hits += inner.hits;
            misses += inner.misses;
        }
        (hits, misses)
    }

    /// Drop all cached entries and reset the counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut inner = shard.lock().unwrap();
            inner.map.clear();
            inner.order.clear();
            inner.hits = 0;
            inner.misses = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare_string_fuzzy;

    #[test]
    fn caches_and_counts() {
        let cache = SimilarityCache::new();
        assert!(cache.is_empty());
        assert!(cache.capacity() >= DEFAULT_CACHE_CAPACITY);
        let v1 = cache.get_or_compute("author", "authorName", || {
            compare_string_fuzzy("author", "authorName")
        });
        let v2 = cache.get_or_compute("authorName", "author", || panic!("must be cached"));
        assert_eq!(v1, v2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn symmetric_key_normalisation() {
        let cache = SimilarityCache::new();
        cache.get_or_compute("b", "a", || 0.5);
        cache.get_or_compute("a", "b", || 0.9);
        assert_eq!(cache.len(), 1);
        // First value wins.
        assert_eq!(cache.get_or_compute("a", "b", || 0.1), 0.5);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = SimilarityCache::new();
        cache.get_or_compute("x", "y", || 0.3);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn capacity_bounds_the_cache() {
        let cache = SimilarityCache::with_capacity(32);
        for i in 0..10_000 {
            cache.get_or_compute(&format!("name{i}"), "x", || i as f64);
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.capacity() <= 48); // 32 rounded up to a shard multiple
                                         // The very last insert cannot have been evicted yet.
        assert_eq!(cache.get_or_compute("name9999", "x", || -1.0), 9999.0);
        // Early entries are long gone and get recomputed.
        assert_eq!(cache.get_or_compute("name0", "x", || -1.0), -1.0);
    }

    #[test]
    fn tiny_capacity_is_clamped() {
        let cache = SimilarityCache::with_capacity(0);
        assert!(cache.capacity() >= 1);
        for i in 0..100 {
            cache.get_or_compute(&format!("k{i}"), "v", || 0.1);
        }
        assert!(cache.len() <= cache.capacity());
    }

    #[test]
    fn usable_across_threads() {
        use std::sync::Arc;
        let cache = Arc::new(SimilarityCache::new());
        let mut handles = Vec::new();
        for i in 0..4 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for j in 0..50 {
                    let a = format!("name{}", j % 10);
                    let b = format!("label{}", (j + i) % 10);
                    c.get_or_compute(&a, &b, || compare_string_fuzzy(&a, &b));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.stats();
        // Threads may race on the same missing pair and both count a miss, so the
        // map can only be smaller than the miss count, never larger.
        assert!(cache.len() as u64 <= misses);
        assert_eq!(hits + misses, 200);
    }
}
