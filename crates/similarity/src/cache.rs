//! Memoization cache for name-pair similarities.
//!
//! Element matching compares every personal-schema name against every repository name;
//! repository names repeat heavily (every schema has a `name`, `id`, `date` …), so
//! caching by *name pair* rather than node pair removes most of the string-kernel work.

use std::collections::HashMap;
use std::sync::Mutex;

/// A thread-safe `(name, name) → similarity` cache.
///
/// The key is order-normalised so `("a","b")` and `("b","a")` share an entry, matching
/// the symmetry of every kernel in this crate.
#[derive(Debug, Default)]
pub struct SimilarityCache {
    map: Mutex<HashMap<(String, String), f64>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl SimilarityCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get the cached value for a pair, or compute and insert it.
    pub fn get_or_compute<F>(&self, a: &str, b: &str, compute: F) -> f64
    where
        F: FnOnce() -> f64,
    {
        let key = if a <= b {
            (a.to_string(), b.to_string())
        } else {
            (b.to_string(), a.to_string())
        };
        {
            let map = self.map.lock().unwrap();
            if let Some(&v) = map.get(&key) {
                *self.hits.lock().unwrap() += 1;
                return v;
            }
        }
        let v = compute();
        *self.misses.lock().unwrap() += 1;
        self.map.lock().unwrap().insert(key, v);
        v
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since construction or the last [`SimilarityCache::clear`].
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.lock().unwrap(), *self.misses.lock().unwrap())
    }

    /// Drop all cached entries and reset the counters.
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
        *self.hits.lock().unwrap() = 0;
        *self.misses.lock().unwrap() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare_string_fuzzy;

    #[test]
    fn caches_and_counts() {
        let cache = SimilarityCache::new();
        assert!(cache.is_empty());
        let v1 = cache.get_or_compute("author", "authorName", || {
            compare_string_fuzzy("author", "authorName")
        });
        let v2 = cache.get_or_compute("authorName", "author", || panic!("must be cached"));
        assert_eq!(v1, v2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn symmetric_key_normalisation() {
        let cache = SimilarityCache::new();
        cache.get_or_compute("b", "a", || 0.5);
        cache.get_or_compute("a", "b", || 0.9);
        assert_eq!(cache.len(), 1);
        // First value wins.
        assert_eq!(cache.get_or_compute("a", "b", || 0.1), 0.5);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = SimilarityCache::new();
        cache.get_or_compute("x", "y", || 0.3);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn usable_across_threads() {
        use std::sync::Arc;
        let cache = Arc::new(SimilarityCache::new());
        let mut handles = Vec::new();
        for i in 0..4 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for j in 0..50 {
                    let a = format!("name{}", j % 10);
                    let b = format!("label{}", (j + i) % 10);
                    c.get_or_compute(&a, &b, || compare_string_fuzzy(&a, &b));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (hits, misses) = cache.stats();
        assert_eq!(cache.len() as u64, misses);
        assert_eq!(hits + misses, 200);
    }
}
