//! Strategies for combining the similarity values produced by several matchers.
//!
//! The paper: "For every element pair being compared, each matcher produces a different
//! similarity index. These indexes are combined into a single similarity index by means
//! of weighed average or other combining techniques" (citing COMA and LSD). The
//! strategies here are COMA's standard aggregation set.

use serde::{Deserialize, Serialize};

/// Aggregation strategy for a list of `(weight, similarity)` pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CombineStrategy {
    /// Weighted arithmetic mean (the paper's Eq. 3 is the two-matcher special case).
    #[default]
    WeightedAverage,
    /// Maximum of the similarities (optimistic).
    Max,
    /// Minimum of the similarities (pessimistic).
    Min,
    /// Unweighted arithmetic mean.
    Average,
    /// Harmonic mean — punishes disagreement between matchers.
    HarmonicMean,
}

impl CombineStrategy {
    /// Combine `(weight, similarity)` pairs into a single `[0,1]` value.
    ///
    /// Weights are only consulted by [`CombineStrategy::WeightedAverage`]; zero or
    /// negative total weight degenerates to the unweighted mean. An empty slice
    /// combines to 0.0.
    pub fn combine(self, values: &[(f64, f64)]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let out = match self {
            CombineStrategy::WeightedAverage => {
                let total: f64 = values.iter().map(|(w, _)| w.max(0.0)).sum();
                if total <= 0.0 {
                    values.iter().map(|(_, s)| s).sum::<f64>() / values.len() as f64
                } else {
                    values.iter().map(|(w, s)| w.max(0.0) * s).sum::<f64>() / total
                }
            }
            CombineStrategy::Max => values.iter().map(|(_, s)| *s).fold(f64::MIN, f64::max),
            CombineStrategy::Min => values.iter().map(|(_, s)| *s).fold(f64::MAX, f64::min),
            CombineStrategy::Average => {
                values.iter().map(|(_, s)| s).sum::<f64>() / values.len() as f64
            }
            CombineStrategy::HarmonicMean => {
                if values.iter().any(|(_, s)| *s <= 0.0) {
                    0.0
                } else {
                    values.len() as f64 / values.iter().map(|(_, s)| 1.0 / s).sum::<f64>()
                }
            }
        };
        out.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn weighted_average_matches_eq3() {
        // Δ = α·Δsim + (1-α)·Δpath with α = 0.25.
        let alpha = 0.25;
        let sim = 0.8;
        let path = 0.6;
        let combined =
            CombineStrategy::WeightedAverage.combine(&[(alpha, sim), (1.0 - alpha, path)]);
        assert!((combined - (alpha * sim + (1.0 - alpha) * path)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(CombineStrategy::WeightedAverage.combine(&[]), 0.0);
        assert_eq!(CombineStrategy::Max.combine(&[]), 0.0);
        // All-zero weights fall back to plain average.
        let v = [(0.0, 0.4), (0.0, 0.8)];
        assert!((CombineStrategy::WeightedAverage.combine(&v) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn strategy_orderings() {
        let v = [(1.0, 0.2), (1.0, 0.8)];
        let max = CombineStrategy::Max.combine(&v);
        let min = CombineStrategy::Min.combine(&v);
        let avg = CombineStrategy::Average.combine(&v);
        let har = CombineStrategy::HarmonicMean.combine(&v);
        assert_eq!(max, 0.8);
        assert_eq!(min, 0.2);
        assert_eq!(avg, 0.5);
        assert!(har < avg && har > min);
    }

    #[test]
    fn harmonic_mean_with_zero_is_zero() {
        assert_eq!(
            CombineStrategy::HarmonicMean.combine(&[(1.0, 0.0), (1.0, 0.9)]),
            0.0
        );
    }

    proptest! {
        #[test]
        fn combined_value_is_within_input_range(
            sims in proptest::collection::vec((0.1f64..1.0, 0.0f64..1.0), 1..6)
        ) {
            let lo = sims.iter().map(|(_, s)| *s).fold(f64::MAX, f64::min);
            let hi = sims.iter().map(|(_, s)| *s).fold(f64::MIN, f64::max);
            for strat in [
                CombineStrategy::WeightedAverage,
                CombineStrategy::Max,
                CombineStrategy::Min,
                CombineStrategy::Average,
                CombineStrategy::HarmonicMean,
            ] {
                let c = strat.combine(&sims);
                prop_assert!((0.0..=1.0).contains(&c));
                prop_assert!(c <= hi + 1e-12, "{strat:?}");
                if !matches!(strat, CombineStrategy::HarmonicMean) {
                    prop_assert!(c >= lo - 1e-12, "{strat:?}");
                }
            }
        }
    }
}
