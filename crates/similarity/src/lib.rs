//! # xsm-similarity — string and token similarity kernels
//!
//! The Bellflower element matcher of the paper uses a single *localized* matcher:
//! `sim(n, n') → [0,1]` implemented with the commercial `CompareStringFuzzy` function,
//! "a normalized string similarity based on character substitution, insertion,
//! exclusion, and transposition". This crate provides an open implementation of that
//! kernel ([`fuzzy::compare_string_fuzzy`], normalized Damerau–Levenshtein) and the
//! broader family of similarity measures a COMA-style matcher library needs:
//!
//! * edit-distance family: [`edit::levenshtein`], [`edit::damerau_levenshtein`],
//! * [`jaro::jaro`] / [`jaro::jaro_winkler`],
//! * [`ngram::ngram_similarity`] (q-gram Dice coefficient),
//! * [`token`] — element-name tokenization (camelCase, snake_case, digits) and
//!   token-set similarity,
//! * [`synonym::SynonymTable`] — a small thesaurus matcher,
//! * [`affix`] — common prefix/suffix similarity,
//! * [`combine`] — strategies for aggregating several similarity values,
//! * [`cache::SimilarityCache`] — memoization for the name-pair similarity calls that
//!   dominate element matching,
//! * [`features`] — precomputed per-name features ([`features::NameFeatures`]:
//!   lowercased chars, interned q-gram signatures, Myers match vectors) and
//!   zero-allocation kernels over them, bit-identical to the string measures but
//!   built for the serving hot path where every repository name is scored millions
//!   of times.
//!
//! All functions return values in `[0,1]`, are symmetric in their arguments, and are
//! case-insensitive unless documented otherwise.

// `deny` rather than `forbid`: the `simd` module scopes an `allow` around its
// runtime-dispatched vectorized kernels; everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod affix;
pub mod cache;
pub mod combine;
pub mod edit;
pub mod features;
pub mod fuzzy;
pub mod jaro;
pub mod ngram;
pub mod simd;
pub mod synonym;
pub mod token;

pub use cache::SimilarityCache;
pub use combine::CombineStrategy;
pub use features::{GramInterner, NameFeatures, SimScratch};
pub use fuzzy::compare_string_fuzzy;
pub use synonym::SynonymTable;

/// A named similarity measure over strings, returning values in `[0,1]`.
///
/// The trait exists so the element matchers in `xsm-matcher` can be configured with
/// any kernel (and so ablation benches can swap kernels without code changes).
pub trait StringSimilarity: Send + Sync {
    /// Similarity of `a` and `b` in `[0,1]`; 1.0 means "identical for matching purposes".
    fn similarity(&self, a: &str, b: &str) -> f64;

    /// Short, stable name used in reports.
    fn name(&self) -> &'static str;
}

/// The paper's kernel: normalized Damerau–Levenshtein (CompareStringFuzzy equivalent).
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzyNameSimilarity;

impl StringSimilarity for FuzzyNameSimilarity {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        fuzzy::compare_string_fuzzy(a, b)
    }
    fn name(&self) -> &'static str {
        "fuzzy"
    }
}

/// Jaro-Winkler kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct JaroWinklerSimilarity;

impl StringSimilarity for JaroWinklerSimilarity {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        jaro::jaro_winkler(a, b)
    }
    fn name(&self) -> &'static str {
        "jaro-winkler"
    }
}

/// Trigram Dice-coefficient kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrigramSimilarity;

impl StringSimilarity for TrigramSimilarity {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        ngram::ngram_similarity(a, b, 3)
    }
    fn name(&self) -> &'static str {
        "trigram"
    }
}

/// Token-set kernel: tokenizes both names and compares token sets with a greedy
/// best-match average using the fuzzy kernel per token.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenSetSimilarity;

impl StringSimilarity for TokenSetSimilarity {
    fn similarity(&self, a: &str, b: &str) -> f64 {
        token::token_set_similarity(a, b)
    }
    fn name(&self) -> &'static str {
        "token-set"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_work_for_all_kernels() {
        let kernels: Vec<Box<dyn StringSimilarity>> = vec![
            Box::new(FuzzyNameSimilarity),
            Box::new(JaroWinklerSimilarity),
            Box::new(TrigramSimilarity),
            Box::new(TokenSetSimilarity),
        ];
        for k in &kernels {
            assert_eq!(k.similarity("author", "author"), 1.0, "{}", k.name());
            assert_eq!(
                k.similarity("author", "author"),
                k.similarity("AUTHOR", "author")
            );
            let s = k.similarity("author", "authorName");
            assert!(s > 0.3 && s < 1.0, "{}: {s}", k.name());
        }
    }
}
