//! `CompareStringFuzzy` — the paper's name-similarity kernel.
//!
//! The original is part of the commercial *FuzzySearch* library (reference \[1\] of the
//! paper): "The CompareStringFuzzy function computes a normalized string similarity
//! based on character substitution, insertion, exclusion, and transposition."
//! Those four operations are exactly the Damerau–Levenshtein edit operations, so our
//! open replacement is the OSA Damerau–Levenshtein distance normalized by the length
//! of the longer string, computed case-insensitively (element names differing only in
//! case are considered identical by every practical schema matcher).

use crate::edit::{damerau_levenshtein_chars, normalized_similarity};

/// Normalized fuzzy name similarity in `[0,1]` (1.0 = identical up to case).
///
/// Lowercasing happens exactly once, here at the boundary; the edit-distance core
/// runs on the collected characters directly. Callers whose inputs are already
/// lowercase (e.g. the tokenizer) use [`compare_lower_fuzzy`] and skip it entirely.
///
/// ```
/// use xsm_similarity::compare_string_fuzzy;
/// assert_eq!(compare_string_fuzzy("author", "Author"), 1.0);
/// assert!(compare_string_fuzzy("author", "authorName") > 0.5);
/// assert!(compare_string_fuzzy("author", "shelf") < 0.3);
/// ```
pub fn compare_string_fuzzy(a: &str, b: &str) -> f64 {
    let la = a.to_lowercase();
    let lb = b.to_lowercase();
    compare_lower_fuzzy(&la, &lb)
}

/// [`compare_string_fuzzy`] for inputs that are **already lowercase** — the
/// normalize-once fast path used by the token-set measure, whose tokens come out of
/// the tokenizer lowercased. Passing mixed-case inputs here silently skips the
/// case-folding the public kernel guarantees.
pub fn compare_lower_fuzzy(la: &str, lb: &str) -> f64 {
    if la == lb {
        // Covers both empty (similarity 1 by convention) and identical names.
        return 1.0;
    }
    let ca: Vec<char> = la.chars().collect();
    let cb: Vec<char> = lb.chars().collect();
    let d = damerau_levenshtein_chars(&ca, &cb);
    normalized_similarity(d, ca.len(), cb.len())
}

/// Fuzzy similarity with an early-exit upper bound: if the best achievable similarity
/// (based on the length difference alone) is already below `threshold`, returns `None`
/// without running the quadratic edit-distance computation. The element matcher uses
/// this to skip hopeless candidate pairs cheaply (an "approximate string join"
/// optimisation in the spirit of Gravano et al., reference \[10\] of the paper).
pub fn compare_string_fuzzy_bounded(a: &str, b: &str, threshold: f64) -> Option<f64> {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max_len = la.max(lb);
    if max_len == 0 {
        return Some(1.0);
    }
    // distance >= |la - lb|  ⇒  similarity <= 1 - |la-lb|/max_len.
    let upper_bound = 1.0 - (la.abs_diff(lb) as f64 / max_len as f64);
    if upper_bound < threshold {
        return None;
    }
    let s = compare_string_fuzzy(a, b);
    if s >= threshold {
        Some(s)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_and_case_insensitive() {
        assert_eq!(compare_string_fuzzy("", ""), 1.0);
        assert_eq!(compare_string_fuzzy("book", "book"), 1.0);
        assert_eq!(compare_string_fuzzy("Book", "bOOK"), 1.0);
    }

    #[test]
    fn paper_fig1_pairs_behave_sensibly() {
        // Personal schema names vs repository fragment names from Fig. 1.
        let s_title = compare_string_fuzzy("title", "title");
        let s_author = compare_string_fuzzy("author", "authorName");
        let s_book = compare_string_fuzzy("book", "book");
        let s_cross = compare_string_fuzzy("title", "shelf");
        assert_eq!(s_title, 1.0);
        assert_eq!(s_book, 1.0);
        assert!(s_author > 0.55, "author/authorName = {s_author}");
        assert!(s_cross < 0.4, "title/shelf = {s_cross}");
    }

    #[test]
    fn transposition_is_cheap() {
        // One transposition in a 6-character name: 1 - 1/6.
        let s = compare_string_fuzzy("author", "auhtor");
        assert!((s - (1.0 - 1.0 / 6.0)).abs() < 1e-9);
    }

    #[test]
    fn disjoint_strings_score_zero() {
        assert_eq!(compare_string_fuzzy("abc", "xyz"), 0.0);
    }

    #[test]
    fn one_empty_string_scores_zero() {
        assert_eq!(compare_string_fuzzy("", "abc"), 0.0);
        assert_eq!(compare_string_fuzzy("abc", ""), 0.0);
    }

    #[test]
    fn bounded_variant_skips_hopeless_pairs() {
        // Length difference alone caps similarity at 1 - 8/11 ≈ 0.27 < 0.5.
        assert_eq!(
            compare_string_fuzzy_bounded("id", "identification", 0.5),
            None
        );
        // Close pair passes through with the same value as the unbounded call.
        let full = compare_string_fuzzy("address", "adress");
        assert_eq!(
            compare_string_fuzzy_bounded("address", "adress", 0.5),
            Some(full)
        );
        // Below-threshold exact computation also returns None.
        assert_eq!(compare_string_fuzzy_bounded("title", "shelf", 0.9), None);
        assert_eq!(compare_string_fuzzy_bounded("", "", 0.9), Some(1.0));
    }

    proptest! {
        #[test]
        fn in_unit_interval_and_symmetric(a in "[a-zA-Z]{0,14}", b in "[a-zA-Z]{0,14}") {
            let s = compare_string_fuzzy(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - compare_string_fuzzy(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn self_similarity_is_one(a in "[a-zA-Z]{0,14}") {
            prop_assert_eq!(compare_string_fuzzy(&a, &a), 1.0);
        }

        #[test]
        fn bounded_agrees_with_unbounded(a in "[a-z]{0,10}", b in "[a-z]{0,10}", t in 0.0f64..1.0) {
            let full = compare_string_fuzzy(&a, &b);
            match compare_string_fuzzy_bounded(&a, &b, t) {
                Some(s) => {
                    prop_assert!((s - full).abs() < 1e-12);
                    prop_assert!(s >= t);
                }
                None => prop_assert!(full < t),
            }
        }
    }
}
