//! Character q-gram similarity (Dice coefficient over q-gram multisets).
//!
//! The similarity functions here run on padded, lowercased char buffers with
//! sorted-window merges — zero per-gram heap allocation. [`qgrams`] remains as
//! the allocating convenience API (it returns owned `String`s by contract) but
//! no similarity computation goes through it.

/// Extract the multiset of character q-grams of `s` (lowercased, padded with `#`
/// sentinels so short strings still yield grams).
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    let padded = padded_lower(s, q);
    if padded.len() < q {
        return Vec::new();
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// `#`-padded chars of the lowercased `s`: `q - 1` sentinels on each side.
fn padded_lower(s: &str, q: usize) -> Vec<char> {
    assert!(q >= 1, "q must be at least 1");
    std::iter::repeat_n('#', q - 1)
        .chain(crate::simd::lowercase(s).chars())
        .chain(std::iter::repeat_n('#', q - 1))
        .collect()
}

/// Start indices of the q-char windows of `padded`, sorted by window content,
/// so equal grams form contiguous runs.
fn sorted_windows(padded: &[char], q: usize) -> Vec<u32> {
    let n = (padded.len() + 1).saturating_sub(q);
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by(|&i, &j| {
        padded[i as usize..i as usize + q].cmp(&padded[j as usize..j as usize + q])
    });
    idx
}

/// First position after the run of windows equal to `idx[start]`'s window.
fn run_end(padded: &[char], q: usize, idx: &[u32], start: usize) -> usize {
    let w = &padded[idx[start] as usize..idx[start] as usize + q];
    let mut e = start + 1;
    while e < idx.len() && padded[idx[e] as usize..idx[e] as usize + q] == *w {
        e += 1;
    }
    e
}

/// Dice-coefficient similarity over q-gram multisets, in `[0,1]`.
pub fn ngram_similarity(a: &str, b: &str, q: usize) -> f64 {
    if a.is_empty() && b.is_empty() {
        let _ = padded_lower("", q); // preserve the q >= 1 panic
        return 1.0;
    }
    let pa = padded_lower(a, q);
    let pb = padded_lower(b, q);
    let ia = sorted_windows(&pa, q);
    let ib = sorted_windows(&pb, q);
    if ia.is_empty() || ib.is_empty() {
        return 0.0;
    }
    // Multiset overlap by merging the two run-length-grouped window lists.
    let mut overlap = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < ia.len() && j < ib.len() {
        let wa = &pa[ia[i] as usize..ia[i] as usize + q];
        let wb = &pb[ib[j] as usize..ib[j] as usize + q];
        match wa.cmp(wb) {
            std::cmp::Ordering::Less => i = run_end(&pa, q, &ia, i),
            std::cmp::Ordering::Greater => j = run_end(&pb, q, &ib, j),
            std::cmp::Ordering::Equal => {
                let ni = run_end(&pa, q, &ia, i);
                let nj = run_end(&pb, q, &ib, j);
                overlap += (ni - i).min(nj - j);
                i = ni;
                j = nj;
            }
        }
    }
    2.0 * overlap as f64 / (ia.len() + ib.len()) as f64
}

/// Jaccard similarity over the *sets* of q-grams (used by the repository q-gram index
/// as a cheap pre-filter).
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    if a.is_empty() && b.is_empty() {
        let _ = padded_lower("", q); // preserve the q >= 1 panic
        return 1.0;
    }
    let pa = padded_lower(a, q);
    let pb = padded_lower(b, q);
    let ia = sorted_windows(&pa, q);
    let ib = sorted_windows(&pb, q);
    if ia.is_empty() || ib.is_empty() {
        return 0.0;
    }
    let mut inter = 0usize;
    let mut union = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < ia.len() && j < ib.len() {
        let wa = &pa[ia[i] as usize..ia[i] as usize + q];
        let wb = &pb[ib[j] as usize..ib[j] as usize + q];
        union += 1;
        match wa.cmp(wb) {
            std::cmp::Ordering::Less => i = run_end(&pa, q, &ia, i),
            std::cmp::Ordering::Greater => j = run_end(&pb, q, &ib, j),
            std::cmp::Ordering::Equal => {
                inter += 1;
                i = run_end(&pa, q, &ia, i);
                j = run_end(&pb, q, &ib, j);
            }
        }
    }
    while i < ia.len() {
        union += 1;
        i = run_end(&pa, q, &ia, i);
    }
    while j < ib.len() {
        union += 1;
        j = run_end(&pb, q, &ib, j);
    }
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{HashMap, HashSet};

    /// The pre-rewrite hash-based implementations, kept as references for the
    /// equivalence proptests below.
    fn dice_reference(a: &str, b: &str, q: usize) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let ga = qgrams(a, q);
        let gb = qgrams(b, q);
        if ga.is_empty() || gb.is_empty() {
            return 0.0;
        }
        let mut counts: HashMap<&str, (usize, usize)> = HashMap::new();
        for g in &ga {
            counts.entry(g.as_str()).or_default().0 += 1;
        }
        for g in &gb {
            counts.entry(g.as_str()).or_default().1 += 1;
        }
        let overlap: usize = counts.values().map(|&(x, y)| x.min(y)).sum();
        2.0 * overlap as f64 / (ga.len() + gb.len()) as f64
    }

    fn jaccard_reference(a: &str, b: &str, q: usize) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let sa: HashSet<String> = qgrams(a, q).into_iter().collect();
        let sb: HashSet<String> = qgrams(b, q).into_iter().collect();
        if sa.is_empty() || sb.is_empty() {
            return 0.0;
        }
        let inter = sa.intersection(&sb).count();
        let union = sa.union(&sb).count();
        inter as f64 / union as f64
    }

    #[test]
    fn qgram_extraction_with_padding() {
        let grams = qgrams("ab", 3);
        assert_eq!(grams, vec!["##a", "#ab", "ab#", "b##"]);
        assert_eq!(qgrams("", 2).len(), 1); // "##" from padding only
        assert_eq!(qgrams("x", 1), vec!["x"]);
    }

    #[test]
    fn identical_strings_score_one() {
        assert_eq!(ngram_similarity("book", "book", 3), 1.0);
        assert_eq!(ngram_similarity("", "", 3), 1.0);
        assert_eq!(qgram_jaccard("book", "BOOK", 3), 1.0);
    }

    #[test]
    fn disjoint_strings_score_low() {
        assert!(ngram_similarity("aaaa", "zzzz", 3) < 0.01);
        assert!(qgram_jaccard("aaaa", "zzzz", 3) < 0.01);
    }

    #[test]
    fn related_schema_names_score_mid() {
        let s = ngram_similarity("authorName", "author", 3);
        assert!(s > 0.5 && s < 1.0, "{s}");
        let j = qgram_jaccard("address", "addr", 2);
        assert!(j > 0.3 && j < 1.0, "{j}");
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn zero_q_panics() {
        qgrams("abc", 0);
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn zero_q_panics_in_similarity_too() {
        ngram_similarity("", "", 0);
    }

    proptest! {
        #[test]
        fn dice_unit_interval_and_symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}", q in 1usize..4) {
            let s = ngram_similarity(&a, &b, q);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - ngram_similarity(&b, &a, q)).abs() < 1e-12);
        }

        #[test]
        fn dice_identity(a in "[a-z]{0,12}", q in 1usize..4) {
            prop_assert!((ngram_similarity(&a, &a, q) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn jaccard_le_one_and_symmetric(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let s = qgram_jaccard(&a, &b, 3);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - qgram_jaccard(&b, &a, 3)).abs() < 1e-12);
        }

        #[test]
        fn merge_rewrite_is_bit_identical_to_hash_reference(
            a in "[a-zA-Z0-9λ中 ]{0,16}", b in "[a-zA-Z0-9λ中 ]{0,16}", q in 1usize..5
        ) {
            prop_assert_eq!(
                ngram_similarity(&a, &b, q).to_bits(),
                dice_reference(&a, &b, q).to_bits()
            );
            prop_assert_eq!(
                qgram_jaccard(&a, &b, q).to_bits(),
                jaccard_reference(&a, &b, q).to_bits()
            );
        }
    }
}
