//! Character q-gram similarity (Dice coefficient over q-gram multisets).

use std::collections::HashMap;

/// Extract the multiset of character q-grams of `s` (lowercased, padded with `#`
/// sentinels so short strings still yield grams).
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q must be at least 1");
    let padded: Vec<char> = std::iter::repeat_n('#', q - 1)
        .chain(s.to_lowercase().chars())
        .chain(std::iter::repeat_n('#', q - 1))
        .collect();
    if padded.len() < q {
        return Vec::new();
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// Dice-coefficient similarity over q-gram multisets, in `[0,1]`.
pub fn ngram_similarity(a: &str, b: &str, q: usize) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let ga = qgrams(a, q);
    let gb = qgrams(b, q);
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<&str, (usize, usize)> = HashMap::new();
    for g in &ga {
        counts.entry(g.as_str()).or_default().0 += 1;
    }
    for g in &gb {
        counts.entry(g.as_str()).or_default().1 += 1;
    }
    let overlap: usize = counts.values().map(|&(x, y)| x.min(y)).sum();
    2.0 * overlap as f64 / (ga.len() + gb.len()) as f64
}

/// Jaccard similarity over the *sets* of q-grams (used by the repository q-gram index
/// as a cheap pre-filter).
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: std::collections::HashSet<String> = qgrams(a, q).into_iter().collect();
    let sb: std::collections::HashSet<String> = qgrams(b, q).into_iter().collect();
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn qgram_extraction_with_padding() {
        let grams = qgrams("ab", 3);
        assert_eq!(grams, vec!["##a", "#ab", "ab#", "b##"]);
        assert_eq!(qgrams("", 2).len(), 1); // "##" from padding only
        assert_eq!(qgrams("x", 1), vec!["x"]);
    }

    #[test]
    fn identical_strings_score_one() {
        assert_eq!(ngram_similarity("book", "book", 3), 1.0);
        assert_eq!(ngram_similarity("", "", 3), 1.0);
        assert_eq!(qgram_jaccard("book", "BOOK", 3), 1.0);
    }

    #[test]
    fn disjoint_strings_score_low() {
        assert!(ngram_similarity("aaaa", "zzzz", 3) < 0.01);
        assert!(qgram_jaccard("aaaa", "zzzz", 3) < 0.01);
    }

    #[test]
    fn related_schema_names_score_mid() {
        let s = ngram_similarity("authorName", "author", 3);
        assert!(s > 0.5 && s < 1.0, "{s}");
        let j = qgram_jaccard("address", "addr", 2);
        assert!(j > 0.3 && j < 1.0, "{j}");
    }

    #[test]
    #[should_panic(expected = "q must be at least 1")]
    fn zero_q_panics() {
        qgrams("abc", 0);
    }

    proptest! {
        #[test]
        fn dice_unit_interval_and_symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}", q in 1usize..4) {
            let s = ngram_similarity(&a, &b, q);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - ngram_similarity(&b, &a, q)).abs() < 1e-12);
        }

        #[test]
        fn dice_identity(a in "[a-z]{0,12}", q in 1usize..4) {
            prop_assert!((ngram_similarity(&a, &a, q) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn jaccard_le_one_and_symmetric(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let s = qgram_jaccard(&a, &b, 3);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - qgram_jaccard(&b, &a, 3)).abs() < 1e-12);
        }
    }
}
