//! Common-prefix / common-suffix similarity (COMA's "Prefix"/"Suffix" matchers).
//!
//! Schema names are frequently related by affixing: `name` vs `authorName`
//! (suffix), `address` vs `addressLine` (prefix). These kernels score such pairs
//! higher than pure edit distance would.

/// Length (in characters) of the longest common prefix, case-insensitive.
pub fn common_prefix_len(a: &str, b: &str) -> usize {
    a.to_lowercase()
        .chars()
        .zip(b.to_lowercase().chars())
        .take_while(|(x, y)| x == y)
        .count()
}

/// Length (in characters) of the longest common suffix, case-insensitive.
pub fn common_suffix_len(a: &str, b: &str) -> usize {
    let ra: Vec<char> = a.to_lowercase().chars().rev().collect();
    let rb: Vec<char> = b.to_lowercase().chars().rev().collect();
    ra.iter().zip(rb.iter()).take_while(|(x, y)| x == y).count()
}

/// Prefix similarity: `common_prefix / min(len)`; 1.0 when one name is a prefix of the
/// other (ignoring case), 1.0 for two empty strings.
pub fn prefix_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let min_len = la.min(lb);
    if min_len == 0 {
        return if la == lb { 1.0 } else { 0.0 };
    }
    common_prefix_len(a, b) as f64 / min_len as f64
}

/// Suffix similarity: `common_suffix / min(len)`.
pub fn suffix_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let min_len = la.min(lb);
    if min_len == 0 {
        return if la == lb { 1.0 } else { 0.0 };
    }
    common_suffix_len(a, b) as f64 / min_len as f64
}

/// Affix similarity: maximum of prefix and suffix similarity, scaled by the length
/// ratio so that `a` vs a much longer string containing it is penalised mildly.
pub fn affix_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    let best = prefix_similarity(a, b).max(suffix_similarity(a, b));
    let ratio = la.min(lb) as f64 / la.max(lb) as f64;
    // Half the weight on containment, half on comparable length.
    best * (0.5 + 0.5 * ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn prefix_and_suffix_lengths() {
        assert_eq!(common_prefix_len("address", "addressLine"), 7);
        assert_eq!(common_suffix_len("name", "authorName"), 4);
        assert_eq!(common_prefix_len("abc", "xyz"), 0);
        assert_eq!(common_suffix_len("", ""), 0);
    }

    #[test]
    fn containment_scores_one_before_scaling() {
        assert_eq!(prefix_similarity("address", "addressLine"), 1.0);
        assert_eq!(suffix_similarity("name", "authorName"), 1.0);
    }

    #[test]
    fn affix_similarity_penalises_length_mismatch() {
        let same = affix_similarity("title", "title");
        let contained = affix_similarity("name", "authorName");
        let unrelated = affix_similarity("title", "shelf");
        assert_eq!(same, 1.0);
        assert!(contained > 0.6 && contained < 1.0, "{contained}");
        assert!(unrelated < 0.35, "{unrelated}");
    }

    #[test]
    fn empty_string_conventions() {
        assert_eq!(affix_similarity("", ""), 1.0);
        assert_eq!(affix_similarity("", "abc"), 0.0);
        assert_eq!(prefix_similarity("", ""), 1.0);
        assert_eq!(suffix_similarity("", "x"), 0.0);
    }

    proptest! {
        #[test]
        fn unit_interval_and_symmetry(a in "[a-zA-Z]{0,12}", b in "[a-zA-Z]{0,12}") {
            for f in [prefix_similarity, suffix_similarity, affix_similarity] {
                let s = f(&a, &b);
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert!((s - f(&b, &a)).abs() < 1e-12);
            }
        }

        #[test]
        fn identity_scores_one(a in "[a-zA-Z]{1,12}") {
            prop_assert_eq!(affix_similarity(&a, &a), 1.0);
        }
    }
}
