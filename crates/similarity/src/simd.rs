//! Vectorized and word-parallel hot-path kernels.
//!
//! This module concentrates every unsafe / architecture-specific kernel in the
//! crate behind a small, safe API with a hard **bit-identity** contract: each
//! kernel here is observationally identical to the scalar reference it
//! replaces, and the equivalence is pinned by proptests
//! (`tests/simd_equivalence.rs`) plus a forced-scalar CI leg.
//!
//! Three kernel families live here:
//!
//! 1. **Blocked Myers / Hyyrö** ([`myers_levenshtein_blocked`],
//!    [`hyyro_osa_blocked`]): multi-word extensions of the single-`u64`
//!    bit-parallel edit-distance kernels in `features.rs`. The pattern is
//!    split into ⌈m/64⌉ blocks; each text character propagates a horizontal
//!    carry `hin ∈ {-1, 0, +1}` bottom-up through the blocks (the vertical
//!    layout of Myers 1999 §4 / Hyyrö 2003). Names longer than
//!    `BITPARALLEL_MAX_CHARS` stay word-parallel instead of falling back to
//!    the O(m·n) scalar DP.
//! 2. **ScanCount accumulation** ([`accumulate_run`]): the dense `u8`
//!    counter increment over in-window posting runs. The x86-64 path uses a
//!    branchless, software-prefetched loop over unchecked loads/stores; the
//!    portable path is the original scalar loop.
//! 3. **ASCII fast paths** ([`lowercase`], [`classify`], `tokenize_ascii`):
//!    SSE2 16-byte-at-a-time ASCII lowercasing and shufti-style (two
//!    `pshufb` nibble tables) byte classification for gram extraction and
//!    tokenization. Any non-ASCII lane aborts the whole string to the
//!    scalar Unicode path — no prefix splitting, because Unicode lowercasing
//!    is context-dependent (e.g. Greek final sigma).
//!
//! Dispatch discipline: CPU features are detected at runtime with
//! `is_x86_feature_detected!`; setting `XSM_FORCE_SCALAR` (to anything but
//! `""`/`0`/`false`/`off`) pins every dispatching call site to the scalar
//! reference so both paths can be compared bit-for-bit on any host.
#![allow(unsafe_code)]

use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Dispatch control
// ---------------------------------------------------------------------------

/// True when the `XSM_FORCE_SCALAR` environment variable requests that every
/// dispatching call site use the scalar reference implementation.
///
/// Unset, empty, `0`, `false`, and `off` (case-insensitive, trimmed) all mean
/// "not forced"; any other value forces scalar. The value is read once per
/// process.
pub fn force_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| match std::env::var("XSM_FORCE_SCALAR") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "false" || v == "off")
        }
        Err(_) => false,
    })
}

/// Name of the widest kernel tier the dispatcher will use on this host.
///
/// One of `"forced-scalar"`, `"ssse3"`, `"sse2"`, or `"scalar"`. Exposed for
/// metrics and bench provenance; the blocked Myers/Hyyrö kernels are portable
/// `u64` word-parallel code and are active regardless of this tier.
pub fn active_kernel() -> &'static str {
    if force_scalar() {
        return "forced-scalar";
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("ssse3") {
            return "ssse3";
        }
        if is_x86_feature_detected!("sse2") {
            return "sse2";
        }
    }
    "scalar"
}

/// True when at least one runtime-detected SIMD tier is active (i.e. the
/// host supports it and `XSM_FORCE_SCALAR` is not set).
pub fn simd_active() -> bool {
    !matches!(active_kernel(), "scalar" | "forced-scalar")
}

// ---------------------------------------------------------------------------
// Blocked Myers / Hyyrö bit-parallel edit distance
// ---------------------------------------------------------------------------

/// Per-character match-bit table for a pattern of arbitrary length, split
/// into ⌈m/64⌉ `u64` blocks (block `b` covers pattern rows `64b..64b+63`).
///
/// Rows are stored row-major per distinct character: `masks[i*blocks..]`
/// holds the block vector for `chars[i]`. Characters are sorted so lookup is
/// a binary search, mirroring the single-word `peq` table in `features.rs`.
#[derive(Debug, Clone)]
pub struct BlockPeq {
    chars: Box<[char]>,
    masks: Box<[u64]>,
    blocks: usize,
}

impl BlockPeq {
    /// Builds the blocked match table for `pattern`.
    pub fn build(pattern: &[char]) -> Self {
        let m = pattern.len();
        let blocks = m.div_ceil(64).max(1);
        let mut distinct: Vec<char> = pattern.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut masks = vec![0u64; distinct.len() * blocks];
        for (row, &c) in pattern.iter().enumerate() {
            let idx = distinct.binary_search(&c).expect("char is present");
            masks[idx * blocks + row / 64] |= 1u64 << (row % 64);
        }
        BlockPeq {
            chars: distinct.into_boxed_slice(),
            masks: masks.into_boxed_slice(),
            blocks,
        }
    }

    /// Number of 64-row blocks the pattern occupies.
    #[inline]
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Block vector for character `c`, or `None` if `c` is not in the
    /// pattern (an all-zero row).
    #[inline]
    pub fn lookup(&self, c: char) -> Option<&[u64]> {
        let i = self.chars.binary_search(&c).ok()?;
        Some(&self.masks[i * self.blocks..(i + 1) * self.blocks])
    }
}

/// Reusable per-block state for the blocked kernels, so repeated comparisons
/// against one pattern allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct BlockScratch {
    pv: Vec<u64>,
    mv: Vec<u64>,
    d0: Vec<u64>,
    pmp: Vec<u64>,
}

/// Levenshtein distance via the blocked Myers algorithm.
///
/// `peq` must be built from the pattern, `m` is the pattern length in chars
/// (must be ≥ 1 and match the table), `text` is the other string. Vertical
/// layout: each text character walks the blocks bottom-up, carrying the
/// horizontal delta `hin`; the running score is maintained at the last row
/// of the last block. Bit-identical to `edit::levenshtein_chars_scratch`.
pub fn myers_levenshtein_blocked(
    peq: &BlockPeq,
    m: usize,
    text: &[char],
    scratch: &mut BlockScratch,
) -> usize {
    debug_assert!(m >= 1);
    let blocks = peq.blocks;
    scratch.pv.clear();
    scratch.pv.resize(blocks, !0u64);
    scratch.mv.clear();
    scratch.mv.resize(blocks, 0u64);
    let last = 1u64 << ((m - 1) % 64);
    let mut score = m as isize;
    for &tc in text {
        let rows = peq.lookup(tc);
        let mut hin: i64 = 1;
        for b in 0..blocks {
            let mut eq = rows.map_or(0, |r| r[b]);
            let pv0 = scratch.pv[b];
            let mv0 = scratch.mv[b];
            let xv = eq | mv0;
            if hin < 0 {
                eq |= 1;
            }
            let xh = (((eq & pv0).wrapping_add(pv0)) ^ pv0) | eq;
            let mut ph = mv0 | !(xh | pv0);
            let mut mh = pv0 & xh;
            let hout: i64 = if b + 1 == blocks {
                if ph & last != 0 {
                    1
                } else if mh & last != 0 {
                    -1
                } else {
                    0
                }
            } else {
                ((ph >> 63) as i64) - ((mh >> 63) as i64)
            };
            ph <<= 1;
            mh <<= 1;
            if hin > 0 {
                ph |= 1;
            } else if hin < 0 {
                mh |= 1;
            }
            scratch.pv[b] = mh | !(xv | ph);
            scratch.mv[b] = ph & xv;
            hin = hout;
        }
        score += hin as isize;
    }
    score as usize
}

/// Damerau (OSA, adjacent-transposition) distance via the blocked Hyyrö
/// algorithm: the blocked Myers shell plus per-block carried `d0` and
/// previous-column `pm` vectors, with the transposition term crossing block
/// boundaries through `tr_carry`. Bit-identical to
/// `edit::damerau_levenshtein_chars_scratch`.
pub fn hyyro_osa_blocked(
    peq: &BlockPeq,
    m: usize,
    text: &[char],
    scratch: &mut BlockScratch,
) -> usize {
    debug_assert!(m >= 1);
    let blocks = peq.blocks;
    scratch.pv.clear();
    scratch.pv.resize(blocks, !0u64);
    scratch.mv.clear();
    scratch.mv.resize(blocks, 0u64);
    scratch.d0.clear();
    scratch.d0.resize(blocks, 0u64);
    scratch.pmp.clear();
    scratch.pmp.resize(blocks, 0u64);
    let last = 1u64 << ((m - 1) % 64);
    let mut score = m as isize;
    for &tc in text {
        let rows = peq.lookup(tc);
        let mut hin: i64 = 1;
        let mut tr_carry = 0u64;
        for b in 0..blocks {
            let pm_raw = rows.map_or(0, |r| r[b]);
            let pv0 = scratch.pv[b];
            let mv0 = scratch.mv[b];
            let x = (!scratch.d0[b]) & pm_raw;
            let tr = ((x << 1) | tr_carry) & scratch.pmp[b];
            tr_carry = x >> 63;
            let mut pm = pm_raw;
            if hin < 0 {
                pm |= 1;
            }
            let d0 = ((((pm & pv0).wrapping_add(pv0)) ^ pv0) | pm | mv0) | tr;
            let mut hp = mv0 | !(d0 | pv0);
            let mut hn = d0 & pv0;
            let hout: i64 = if b + 1 == blocks {
                if hp & last != 0 {
                    1
                } else if hn & last != 0 {
                    -1
                } else {
                    0
                }
            } else {
                ((hp >> 63) as i64) - ((hn >> 63) as i64)
            };
            hp <<= 1;
            hn <<= 1;
            if hin > 0 {
                hp |= 1;
            } else if hin < 0 {
                hn |= 1;
            }
            scratch.pv[b] = hn | !(d0 | hp);
            scratch.mv[b] = hp & d0;
            scratch.d0[b] = d0;
            scratch.pmp[b] = pm_raw;
            hin = hout;
        }
        score += hin as isize;
    }
    score as usize
}

// ---------------------------------------------------------------------------
// ScanCount accumulation
// ---------------------------------------------------------------------------

/// Scalar reference for [`accumulate_run`]: for each dense id in `run`,
/// bump its `u8` counter (saturating) and push it onto `touched` the first
/// time its counter leaves zero.
pub fn accumulate_run_scalar(run: &[u32], counts: &mut [u8], touched: &mut Vec<u32>) {
    for &dense in run {
        let count = &mut counts[dense as usize];
        if *count == 0 {
            touched.push(dense);
        }
        *count = count.saturating_add(1);
    }
}

/// Counter accumulation over one posting run, dispatched to a
/// software-prefetched branchless loop on x86-64.
///
/// Bit-identical to [`accumulate_run_scalar`], including panic semantics:
/// if any id in `run` is out of bounds for `counts`, the scalar path runs
/// and panics at the same element.
#[inline]
pub fn accumulate_run(run: &[u32], counts: &mut [u8], touched: &mut Vec<u32>) {
    if force_scalar() {
        return accumulate_run_scalar(run, counts, touched);
    }
    #[cfg(target_arch = "x86_64")]
    {
        // The fast path needs every index in bounds up front; the max scan
        // vectorizes well and keeps the unchecked loop sound. Fall back to
        // the scalar loop (and its panic) otherwise.
        if run.len() >= 16 {
            let max = run.iter().copied().max().unwrap_or(0) as usize;
            if max < counts.len() {
                // SAFETY: every run element indexes within counts (checked
                // above) and touched has capacity for run.len() new entries.
                unsafe { accumulate_run_x86(run, counts, touched) };
                return;
            }
        }
    }
    accumulate_run_scalar(run, counts, touched)
}

/// Branchless, prefetched accumulation core.
///
/// The scalar loop's cost is the first-touch branch (one hard-to-predict
/// branch per posting) plus bounds checks; here the touched push is a
/// branchless unconditional store with a flag-incremented cursor, and the
/// prefetch hides counter-load latency once the dense space outgrows L1/L2
/// — exactly the high-volume regime the ScanCount merge serves.
///
/// # Safety
/// Every element of `run` must be `< counts.len()`.
#[cfg(target_arch = "x86_64")]
unsafe fn accumulate_run_x86(run: &[u32], counts: &mut [u8], touched: &mut Vec<u32>) {
    use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
    const LOOKAHEAD: usize = 24;
    touched.reserve(run.len());
    let base = counts.as_mut_ptr();
    let tp = touched.as_mut_ptr();
    let mut t = touched.len();
    for (i, &dense) in run.iter().enumerate() {
        if i + LOOKAHEAD < run.len() {
            // SAFETY: the prefetch target is a valid in-bounds counter; a
            // prefetch is a hint and cannot fault regardless.
            unsafe {
                let ahead = *run.get_unchecked(i + LOOKAHEAD) as usize;
                _mm_prefetch::<_MM_HINT_T0>(base.add(ahead) as *const i8);
            }
        }
        let d = dense as usize;
        // SAFETY: d < counts.len() (caller contract); t < touched capacity
        // because at most run.len() pushes happen and we reserved that many.
        unsafe {
            let c = *base.add(d);
            *tp.add(t) = dense;
            t += (c == 0) as usize;
            *base.add(d) = c.saturating_add(1);
        }
    }
    // SAFETY: exactly t initialized elements are in the buffer.
    unsafe { touched.set_len(t) };
}

// ---------------------------------------------------------------------------
// ASCII lowercase
// ---------------------------------------------------------------------------

/// Lowercases `name`, using a 16-byte-at-a-time SSE2 ASCII path when the
/// string is pure ASCII. Any non-ASCII lane aborts the whole string to
/// `str::to_lowercase` (Unicode lowercasing is context-dependent, so no
/// prefix splitting). Bit-identical to `name.to_lowercase()`.
pub fn lowercase(name: &str) -> String {
    if force_scalar() {
        return name.to_lowercase();
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("sse2") {
            let bytes = name.as_bytes();
            let mut out = vec![0u8; bytes.len()];
            // SAFETY: sse2 support was just detected.
            if unsafe { lower_ascii_sse2(bytes, &mut out) } {
                // SAFETY: byte-wise ASCII lowercasing of valid UTF-8
                // (verified all-ASCII) yields valid UTF-8.
                return unsafe { String::from_utf8_unchecked(out) };
            }
            return name.to_lowercase();
        }
    }
    name.to_lowercase()
}

/// Writes the ASCII-lowercased bytes of `src` into `dst` (same length).
/// Returns `false` (dst contents unspecified) if any byte is non-ASCII.
///
/// # Safety
/// Requires SSE2 (guaranteed on x86-64, but kept as a `target_feature` fn
/// for uniformity with the other kernels).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn lower_ascii_sse2(src: &[u8], dst: &mut [u8]) -> bool {
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_cmpgt_epi8, _mm_cmplt_epi8, _mm_loadu_si128, _mm_movemask_epi8,
        _mm_or_si128, _mm_set1_epi8, _mm_storeu_si128,
    };
    debug_assert_eq!(src.len(), dst.len());
    let n = src.len();
    let mut i = 0;
    // SAFETY (whole block): loads/stores stay within src/dst, which have
    // equal length n; i + 16 <= n is checked before each 16-byte step.
    unsafe {
        let a = _mm_set1_epi8(b'A' as i8 - 1);
        let z = _mm_set1_epi8(b'Z' as i8 + 1);
        let bit = _mm_set1_epi8(0x20);
        while i + 16 <= n {
            let v = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            if _mm_movemask_epi8(v) != 0 {
                return false;
            }
            let ge = _mm_cmpgt_epi8(v, a);
            let le = _mm_cmplt_epi8(v, z);
            let mask = _mm_and_si128(_mm_and_si128(ge, le), bit);
            let lowered = _mm_or_si128(v, mask);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, lowered);
            i += 16;
        }
    }
    while i < n {
        let b = src[i];
        if b >= 0x80 {
            return false;
        }
        dst[i] = b.to_ascii_lowercase();
        i += 1;
    }
    true
}

// ---------------------------------------------------------------------------
// Shufti-style byte classification
// ---------------------------------------------------------------------------

/// Classification bit: ASCII uppercase letter.
pub const CLASS_UPPER: u8 = 0x01 | 0x02;
/// Classification bits: ASCII lowercase letter.
pub const CLASS_LOWER: u8 = 0x04 | 0x08;
/// Classification bit: ASCII digit.
pub const CLASS_DIGIT: u8 = 0x10;
/// Classification bits: token separators (space, `-`, `.`, `/`, `_`, `:`).
pub const CLASS_SEP: u8 = 0x20 | 0x40 | 0x80;

/// Low-nibble shufti table: `LO_TABLE[b & 15] & HI_TABLE[b >> 4]` yields the
/// class bits for byte `b` (bytes ≥ 0x80 classify as 0 because their high
/// nibble row is 0 — and `pshufb` with the index high bit set zeroes the
/// lane, matching).
const LO_TABLE: [u8; 16] = [
    0x3A, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x1F, 0x8F, 0x05, 0x05, 0x25, 0x25, 0x65,
];
/// High-nibble shufti table; see [`LO_TABLE`].
const HI_TABLE: [u8; 16] = [
    0x00, 0x00, 0x20, 0x90, 0x01, 0x42, 0x04, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
];

/// Class bits for one byte (scalar shufti lookup). Bits land in
/// [`CLASS_UPPER`] / [`CLASS_LOWER`] / [`CLASS_DIGIT`] / [`CLASS_SEP`];
/// everything else (including non-ASCII) classifies as 0.
#[inline]
pub fn classify(b: u8) -> u8 {
    if b >= 0x80 {
        return 0;
    }
    LO_TABLE[(b & 0x0F) as usize] & HI_TABLE[(b >> 4) as usize]
}

/// Classifies `bytes` into `classes` (same length) using `pshufb` nibble
/// tables, 16 bytes per step.
///
/// # Safety
/// Requires SSSE3.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn classify_ssse3(bytes: &[u8], classes: &mut [u8]) {
    use std::arch::x86_64::{
        __m128i, _mm_and_si128, _mm_loadu_si128, _mm_set1_epi8, _mm_shuffle_epi8, _mm_srli_epi16,
        _mm_storeu_si128,
    };
    debug_assert_eq!(bytes.len(), classes.len());
    let n = bytes.len();
    let mut i = 0;
    // SAFETY (whole block): loads/stores stay within bytes/classes, which
    // have equal length n; i + 16 <= n is checked before each step.
    unsafe {
        let lo_tbl = _mm_loadu_si128(LO_TABLE.as_ptr() as *const __m128i);
        let hi_tbl = _mm_loadu_si128(HI_TABLE.as_ptr() as *const __m128i);
        let low_mask = _mm_set1_epi8(0x0F);
        while i + 16 <= n {
            let v = _mm_loadu_si128(bytes.as_ptr().add(i) as *const __m128i);
            let lo = _mm_and_si128(v, low_mask);
            let hi = _mm_and_si128(_mm_srli_epi16::<4>(v), low_mask);
            // Bytes >= 0x80 classify as 0 because HI_TABLE[8..=15] is 0.
            let cls = _mm_and_si128(_mm_shuffle_epi8(lo_tbl, lo), _mm_shuffle_epi8(hi_tbl, hi));
            _mm_storeu_si128(classes.as_mut_ptr().add(i) as *mut __m128i, cls);
            i += 16;
        }
    }
    while i < n {
        classes[i] = classify(bytes[i]);
        i += 1;
    }
}

/// Fills `classes` with the class bits of `bytes`, SSSE3-accelerated when
/// available. `classes` is resized to match `bytes`.
pub fn classify_bytes(bytes: &[u8], classes: &mut Vec<u8>) {
    classes.clear();
    classes.resize(bytes.len(), 0);
    #[cfg(target_arch = "x86_64")]
    {
        if !force_scalar() && is_x86_feature_detected!("ssse3") {
            // SAFETY: ssse3 support was just detected.
            unsafe { classify_ssse3(bytes, classes) };
            return;
        }
    }
    for (c, &b) in classes.iter_mut().zip(bytes) {
        *c = classify(b);
    }
}

/// ASCII tokenizer on class bits — the byte-level twin of `token::tokenize`
/// for pure-ASCII names. Caller guarantees `name.is_ascii()`.
pub(crate) fn tokenize_ascii(name: &str) -> Vec<String> {
    debug_assert!(name.is_ascii());
    let bytes = name.as_bytes();
    let mut classes = Vec::new();
    classify_bytes(bytes, &mut classes);
    let mut tokens = Vec::new();
    let mut start: Option<usize> = None;
    for (i, &cls) in classes.iter().enumerate() {
        if cls & CLASS_SEP != 0 {
            if let Some(s) = start.take() {
                tokens.push(lower_token(&bytes[s..i]));
            }
            continue;
        }
        if start.is_some() {
            // The previous byte is always part of the current token here:
            // separators reset `start`, and class-0 bytes join the token.
            let prev = classes[i - 1];
            let boundary = (prev & CLASS_LOWER != 0 && cls & CLASS_UPPER != 0)
                || (prev & (CLASS_UPPER | CLASS_LOWER) != 0 && cls & CLASS_DIGIT != 0)
                || (prev & CLASS_DIGIT != 0 && cls & (CLASS_UPPER | CLASS_LOWER) != 0)
                || (prev & CLASS_UPPER != 0
                    && cls & CLASS_UPPER != 0
                    && classes.get(i + 1).is_some_and(|&n| n & CLASS_LOWER != 0));
            if boundary {
                tokens.push(lower_token(&bytes[start.unwrap()..i]));
                start = Some(i);
            }
        } else {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        tokens.push(lower_token(&bytes[s..]));
    }
    tokens
}

fn lower_token(bytes: &[u8]) -> String {
    std::str::from_utf8(bytes)
        .expect("ascii slice")
        .to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit::{damerau_levenshtein, levenshtein};

    fn chars(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn classify_matches_reference_predicates_for_all_bytes() {
        for b in 0u8..=255 {
            let c = classify(b);
            assert_eq!(c & CLASS_UPPER != 0, b.is_ascii_uppercase(), "byte {b:#x}");
            assert_eq!(c & CLASS_LOWER != 0, b.is_ascii_lowercase(), "byte {b:#x}");
            assert_eq!(c & CLASS_DIGIT != 0, b.is_ascii_digit(), "byte {b:#x}");
            let is_sep = matches!(b, b' ' | b'-' | b'.' | b'/' | b'_' | b':');
            assert_eq!(c & CLASS_SEP != 0, is_sep, "byte {b:#x}");
            let known = CLASS_UPPER | CLASS_LOWER | CLASS_DIGIT | CLASS_SEP;
            assert_eq!(c & !known, 0, "byte {b:#x} has stray bits");
        }
    }

    #[test]
    fn classify_bytes_simd_matches_scalar_on_all_alignments() {
        let data: Vec<u8> = (0u8..=255).chain(0..=255).collect();
        for start in 0..17 {
            let slice = &data[start..];
            let mut got = Vec::new();
            classify_bytes(slice, &mut got);
            let expect: Vec<u8> = slice.iter().map(|&b| classify(b)).collect();
            assert_eq!(got, expect, "offset {start}");
        }
    }

    #[test]
    fn blocked_myers_matches_dp_across_block_widths() {
        let cases = [
            ("kitten", "sitting"),
            ("a", ""),
            ("", ""),
            (
                "the quick brown fox jumps over the lazy dog repeatedly and often",
                "the quick brown fox jumped over a lazy dog repeatedly and often!",
            ),
        ];
        let long_a = "abcdefghij".repeat(13); // 130 chars: 3 blocks
        let long_b = "abcdefghijx".repeat(12);
        let mut scratch = BlockScratch::default();
        for (a, b) in cases.iter().copied().chain([(&*long_a, &*long_b)]) {
            if a.is_empty() {
                continue;
            }
            let ac = chars(a);
            let peq = BlockPeq::build(&ac);
            let got = myers_levenshtein_blocked(&peq, ac.len(), &chars(b), &mut scratch);
            assert_eq!(got, levenshtein(a, b), "{a} vs {b}");
        }
    }

    #[test]
    fn blocked_osa_matches_dp_across_block_widths() {
        let long_a = "abab".repeat(40); // 160 chars, transposition-rich
        let mut long_b = "abab".repeat(40);
        long_b.replace_range(6..8, "ba");
        let cases = [
            ("ca", "ac"),
            ("abcdef", "abdcef"),
            (&*long_a, &*long_b),
            (&*long_a, "baba"),
        ];
        let mut scratch = BlockScratch::default();
        for (a, b) in cases {
            let ac = chars(a);
            let peq = BlockPeq::build(&ac);
            let got = hyyro_osa_blocked(&peq, ac.len(), &chars(b), &mut scratch);
            assert_eq!(got, damerau_levenshtein(a, b), "{a} vs {b}");
        }
    }

    #[test]
    fn accumulate_run_matches_scalar() {
        // A repeating run (scalar fallback: duplicates break strict ascent)
        // and a strictly ascending one (the blocked fast path), at lengths
        // that leave every possible block tail.
        for len in [0usize, 7, 16, 17, 23, 24, 300] {
            let repeating: Vec<u32> = (0..len as u32).map(|i| (i * 7) % 64).collect();
            let ascending: Vec<u32> = (0..len as u32).map(|i| i * 3).collect();
            for run in [repeating, ascending] {
                let size = 3 * len + 64;
                let mut c1 = vec![0u8; size];
                let mut t1 = Vec::new();
                accumulate_run_scalar(&run, &mut c1, &mut t1);
                let mut c2 = vec![0u8; size];
                let mut t2 = Vec::new();
                accumulate_run(&run, &mut c2, &mut t2);
                assert_eq!(c1, c2, "len={len}");
                assert_eq!(t1, t2, "len={len}");
            }
        }
    }

    #[test]
    fn lowercase_matches_std() {
        for s in [
            "",
            "AuthorName",
            "PUBLISHER_ADDRESS_LINE_ONE_WITH_MANY_CHARS",
            "straße",
            "ΣΊΣΥΦΟΣ",
            "mixedÅscii and more",
        ] {
            assert_eq!(lowercase(s), s.to_lowercase(), "{s}");
        }
    }

    #[test]
    fn tokenize_ascii_handles_compound_names() {
        assert_eq!(tokenize_ascii("authorName"), vec!["author", "name"]);
        assert_eq!(tokenize_ascii("ISBN10Code"), vec!["isbn", "10", "code"]);
        assert_eq!(tokenize_ascii("ns:book"), vec!["ns", "book"]);
        assert_eq!(tokenize_ascii("___"), Vec::<String>::new());
    }
}
