//! Element-name tokenization and token-set similarity.
//!
//! Real-world schema element names are compound: `authorName`, `author_name`,
//! `AuthorName2`, `author-name`. Splitting them into word tokens before comparison is
//! the single most effective trick in name matching (COMA, Cupid and LSD all do it).

use crate::fuzzy::compare_lower_fuzzy;

/// Split an element name into lowercase word tokens.
///
/// Boundaries: case changes (`authorName` → `author`, `name`), underscores, hyphens,
/// dots, spaces and digit/letter transitions (`address2` → `address`, `2`). Empty
/// tokens are dropped. Tokens are fully lowercased here — the one normalization
/// boundary — so downstream measures compare them without case-folding again.
pub fn tokenize(name: &str) -> Vec<String> {
    if name.is_ascii() && !crate::simd::force_scalar() {
        // Byte-level twin driven by the shufti classifier; bit-identical on
        // ASCII input (pinned by the proptest below).
        return crate::simd::tokenize_ascii(name);
    }
    tokenize_scalar(name)
}

/// The scalar reference tokenizer (all inputs, any script).
pub(crate) fn tokenize_scalar(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let chars: Vec<char> = name.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == '-' || c == '.' || c == ' ' || c == '/' || c == ':' {
            if !current.is_empty() {
                tokens.push(std::mem::take(&mut current));
            }
            continue;
        }
        let boundary = if current.is_empty() {
            false
        } else {
            let prev = chars[i - 1];
            // lower→Upper boundary (camelCase), letter→digit, digit→letter,
            // and Upper→Upper followed by lower (e.g. "XMLParser" → "XML", "Parser").
            (prev.is_lowercase() && c.is_uppercase())
                || (prev.is_alphabetic() && c.is_numeric())
                || (prev.is_numeric() && c.is_alphabetic())
                || (prev.is_uppercase()
                    && c.is_uppercase()
                    && chars.get(i + 1).map(|n| n.is_lowercase()).unwrap_or(false))
        };
        if boundary && !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
        current.extend(c.to_lowercase());
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Token-set similarity: greedy best-match average of per-token fuzzy similarities,
/// symmetric by averaging both directions. Identical token sets score 1.0.
pub fn token_set_similarity(a: &str, b: &str) -> f64 {
    let ta = tokenize(a);
    let tb = tokenize(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    // Tokens are already lowercase (the tokenizer is the normalization boundary),
    // so the per-token kernel skips the case-fold the public entry point performs.
    let dir = |from: &[String], to: &[String]| -> f64 {
        from.iter()
            .map(|x| {
                to.iter()
                    .map(|y| compare_lower_fuzzy(x, y))
                    .fold(0.0, f64::max)
            })
            .sum::<f64>()
            / from.len() as f64
    };
    (dir(&ta, &tb) + dir(&tb, &ta)) / 2.0
}

/// Expand common schema-world abbreviations in a token (`addr` → `address`,
/// `qty` → `quantity`, `num`/`no` → `number`, …). Returns the token unchanged if no
/// expansion is known. Used by the extended name matchers, not by the paper baseline.
pub fn expand_abbreviation(token: &str) -> &str {
    match token {
        "addr" => "address",
        "qty" => "quantity",
        "num" | "nr" | "no" => "number",
        "amt" => "amount",
        "desc" => "description",
        "id" => "identifier",
        "tel" | "ph" => "phone",
        "org" => "organization",
        "dept" => "department",
        "acct" => "account",
        "cust" => "customer",
        "prod" => "product",
        "cat" => "category",
        "lang" => "language",
        "msg" => "message",
        "info" => "information",
        "ref" => "reference",
        "dob" => "birthdate",
        "fname" => "firstname",
        "lname" => "lastname",
        "pwd" => "password",
        "img" => "image",
        "auth" => "author",
        _ => token,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn tokenize_camel_snake_kebab() {
        assert_eq!(tokenize("authorName"), vec!["author", "name"]);
        assert_eq!(tokenize("author_name"), vec!["author", "name"]);
        assert_eq!(tokenize("author-name"), vec!["author", "name"]);
        assert_eq!(tokenize("AuthorName"), vec!["author", "name"]);
        assert_eq!(tokenize("author name"), vec!["author", "name"]);
    }

    #[test]
    fn tokenize_digits_and_acronyms() {
        assert_eq!(tokenize("address2"), vec!["address", "2"]);
        assert_eq!(tokenize("XMLSchema"), vec!["xml", "schema"]);
        assert_eq!(tokenize("ISBN10Code"), vec!["isbn", "10", "code"]);
    }

    #[test]
    fn tokenize_edge_cases() {
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("___"), Vec::<String>::new());
        assert_eq!(tokenize("x"), vec!["x"]);
        assert_eq!(tokenize("ns:book"), vec!["ns", "book"]);
    }

    #[test]
    fn token_set_similarity_reorders_tokens() {
        // Same tokens, different order and style → identical.
        assert_eq!(token_set_similarity("firstName", "name_first"), 1.0);
        assert_eq!(
            token_set_similarity("authorName", "name-of-author").round(),
            1.0f64.round()
        );
        assert!(token_set_similarity("authorName", "author") > 0.7);
        assert!(token_set_similarity("bookTitle", "shelfCode") < 0.5);
    }

    #[test]
    fn token_set_similarity_empty_inputs() {
        assert_eq!(token_set_similarity("", ""), 1.0);
        assert_eq!(token_set_similarity("", "abc"), 0.0);
        assert_eq!(token_set_similarity("_-_", "abc"), 0.0);
    }

    #[test]
    fn abbreviation_expansion() {
        assert_eq!(expand_abbreviation("addr"), "address");
        assert_eq!(expand_abbreviation("qty"), "quantity");
        assert_eq!(expand_abbreviation("title"), "title");
    }

    proptest! {
        #[test]
        fn ascii_tokenizer_equals_scalar(name in "[ -~]{0,24}") {
            // Full printable-ASCII range: separators, glue punctuation, digits
            // and case transitions must split identically on both paths.
            prop_assert_eq!(crate::simd::tokenize_ascii(&name), tokenize_scalar(&name));
        }

        #[test]
        fn tokens_are_lowercase_and_nonempty(name in "[a-zA-Z0-9_\\-\\. ]{0,20}") {
            for t in tokenize(&name) {
                prop_assert!(!t.is_empty());
                prop_assert_eq!(t.to_lowercase(), t);
            }
        }

        #[test]
        fn token_similarity_unit_interval_symmetric(a in "[a-zA-Z_]{0,14}", b in "[a-zA-Z_]{0,14}") {
            let s = token_set_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - token_set_similarity(&b, &a)).abs() < 1e-9);
        }
    }
}
