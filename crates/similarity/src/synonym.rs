//! Synonym-table similarity.
//!
//! COMA and LSD both consult a thesaurus of domain synonyms; the paper mentions
//! "dictionaries of synonyms" as a typical external hint source. [`SynonymTable`]
//! is a small, deterministic, in-memory equivalent: groups of names declared
//! synonymous score a configurable similarity (default 1.0) regardless of their
//! string-level distance.

use std::collections::HashMap;

/// A table of synonym groups. Lookup is case-insensitive and token-normalised
/// (underscores/hyphens removed) so `e-mail`, `EMail` and `email` coincide.
#[derive(Debug, Clone, Default)]
pub struct SynonymTable {
    /// Maps normalised name → group id.
    groups: HashMap<String, usize>,
    group_count: usize,
    /// Similarity granted to members of the same group.
    strength: f64,
}

impl SynonymTable {
    /// Empty table; [`SynonymTable::similarity`] then always returns `None`.
    pub fn new() -> Self {
        SynonymTable {
            groups: HashMap::new(),
            group_count: 0,
            strength: 1.0,
        }
    }

    /// A table pre-loaded with synonym groups common in web schemas (contact data,
    /// bibliographic data, commerce). This is the table the extended matchers and the
    /// synthetic corpus generator share, so generated synonym mutations are actually
    /// discoverable by the synonym matcher.
    pub fn builtin() -> Self {
        let mut t = SynonymTable::new();
        for group in builtin_groups() {
            t.add_group(group);
        }
        t
    }

    /// Set the similarity value granted to members of the same group (clamped to `[0,1]`).
    pub fn with_strength(mut self, strength: f64) -> Self {
        self.strength = strength.clamp(0.0, 1.0);
        self
    }

    /// Declare the given names mutually synonymous. If any name already belongs to a
    /// group, the new names join that group.
    pub fn add_group<I, S>(&mut self, names: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let names: Vec<String> = names.into_iter().map(|s| normalize(s.as_ref())).collect();
        if names.is_empty() {
            return;
        }
        let existing = names.iter().find_map(|n| self.groups.get(n).copied());
        let gid = existing.unwrap_or_else(|| {
            self.group_count += 1;
            self.group_count - 1
        });
        for n in names {
            self.groups.insert(n, gid);
        }
    }

    /// Number of distinct names known to the table.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no synonym is registered.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Whether two names are known synonyms (true also for equal normalised names that
    /// appear in the table).
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        match (
            self.groups.get(&normalize(a)),
            self.groups.get(&normalize(b)),
        ) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Similarity contributed by the table: `Some(strength)` when the names are
    /// synonyms, `None` when the table has no opinion (caller falls back to the
    /// string kernel).
    pub fn similarity(&self, a: &str, b: &str) -> Option<f64> {
        if self.are_synonyms(a, b) {
            Some(self.strength)
        } else {
            None
        }
    }
}

fn normalize(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(|c| c.to_lowercase())
        .collect()
}

/// The built-in synonym groups.
pub fn builtin_groups() -> Vec<Vec<&'static str>> {
    vec![
        vec!["email", "e-mail", "mail", "electronicmail"],
        vec!["phone", "telephone", "tel", "phonenumber"],
        vec!["address", "addr", "location"],
        vec!["zip", "zipcode", "postalcode", "postcode"],
        vec!["name", "fullname"],
        vec!["firstname", "givenname", "forename"],
        vec!["lastname", "surname", "familyname"],
        vec!["author", "writer", "creator"],
        vec!["title", "heading", "caption"],
        vec!["book", "publication", "volume"],
        vec!["price", "cost", "amount"],
        vec!["quantity", "qty", "count"],
        vec!["customer", "client", "buyer"],
        vec!["vendor", "seller", "supplier"],
        vec!["order", "purchase"],
        vec!["product", "item", "article"],
        vec!["company", "organization", "organisation", "firm"],
        vec!["employee", "staff", "worker"],
        vec!["salary", "wage", "pay"],
        vec!["date", "day"],
        vec!["year", "yr"],
        vec!["description", "desc", "summary"],
        vec!["identifier", "id", "key"],
        vec!["country", "nation"],
        vec!["city", "town"],
        vec!["state", "province", "region"],
        vec!["library", "lib"],
        vec!["shelf", "rack"],
        vec!["isbn", "bookid"],
        vec!["publisher", "press"],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_table_has_no_opinion() {
        let t = SynonymTable::new();
        assert!(t.is_empty());
        assert_eq!(t.similarity("email", "mail"), None);
        assert!(!t.are_synonyms("email", "mail"));
    }

    #[test]
    fn builtin_groups_cover_common_pairs() {
        let t = SynonymTable::builtin();
        assert!(!t.is_empty());
        assert!(t.are_synonyms("email", "mail"));
        assert!(t.are_synonyms("E-Mail", "mail"));
        assert!(t.are_synonyms("author", "writer"));
        assert!(t.are_synonyms("zip", "postalCode"));
        assert!(!t.are_synonyms("email", "phone"));
        assert_eq!(t.similarity("surname", "lastName"), Some(1.0));
    }

    #[test]
    fn strength_is_configurable_and_clamped() {
        let t = SynonymTable::builtin().with_strength(0.8);
        assert_eq!(t.similarity("price", "cost"), Some(0.8));
        let t2 = SynonymTable::builtin().with_strength(7.0);
        assert_eq!(t2.similarity("price", "cost"), Some(1.0));
    }

    #[test]
    fn add_group_merges_transitively() {
        let mut t = SynonymTable::new();
        t.add_group(["car", "automobile"]);
        t.add_group(["automobile", "vehicle"]);
        assert!(t.are_synonyms("car", "vehicle"));
        assert_eq!(t.len(), 3);
        // Adding an empty group is a no-op.
        t.add_group(Vec::<&str>::new());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn unknown_names_are_not_synonyms_of_themselves() {
        let t = SynonymTable::builtin();
        // Names absent from the table give None even when equal; the string kernel
        // handles equality.
        assert_eq!(t.similarity("qwerty", "qwerty"), None);
    }

    #[test]
    fn normalization_ignores_punctuation_and_case() {
        let mut t = SynonymTable::new();
        t.add_group(["birth_date", "DOB"]);
        assert!(t.are_synonyms("BirthDate", "dob"));
    }
}
