//! Edit-distance measures: Levenshtein and Damerau–Levenshtein (OSA variant).
//!
//! The string-taking entry points ([`levenshtein`], [`damerau_levenshtein`]) are thin
//! wrappers that collect the inputs into `char` buffers once and delegate to the
//! slice-taking cores ([`levenshtein_chars`], [`damerau_levenshtein_chars`]); the
//! zero-allocation feature kernels in [`crate::features`] call the `*_scratch`
//! variants directly with reusable row buffers.

/// Levenshtein distance (substitution, insertion, deletion) between two strings,
/// computed over Unicode scalar values with the classic two-row dynamic program.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_chars(&a, &b)
}

/// [`levenshtein`] over pre-collected character slices.
pub fn levenshtein_chars(a: &[char], b: &[char]) -> usize {
    let mut prev = Vec::new();
    let mut cur = Vec::new();
    levenshtein_chars_scratch(a, b, &mut prev, &mut cur)
}

/// [`levenshtein_chars`] with caller-provided row buffers, so steady-state callers
/// (the feature kernels' DP fallback for names longer than 64 characters) allocate
/// nothing. The buffers are cleared and resized as needed.
pub fn levenshtein_chars_scratch(
    a: &[char],
    b: &[char],
    prev: &mut Vec<usize>,
    cur: &mut Vec<usize>,
) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    prev.clear();
    prev.extend(0..=b.len());
    cur.clear();
    cur.resize(b.len() + 1, 0);
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(prev, cur);
    }
    prev[b.len()]
}

/// Damerau–Levenshtein distance in its *optimal string alignment* (OSA) form:
/// substitution, insertion, deletion and transposition of two adjacent characters.
/// These are exactly the four edit operations the paper attributes to
/// `CompareStringFuzzy`.
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    damerau_levenshtein_chars(&a, &b)
}

/// [`damerau_levenshtein`] over pre-collected character slices.
pub fn damerau_levenshtein_chars(a: &[char], b: &[char]) -> usize {
    let mut row0 = Vec::new();
    let mut row1 = Vec::new();
    let mut row2 = Vec::new();
    damerau_levenshtein_chars_scratch(a, b, &mut row0, &mut row1, &mut row2)
}

/// [`damerau_levenshtein_chars`] with caller-provided row buffers (three rows:
/// `i-2`, `i-1`, `i`), the zero-allocation DP fallback of the feature kernels.
pub fn damerau_levenshtein_chars_scratch(
    a: &[char],
    b: &[char],
    row0: &mut Vec<usize>,
    row1: &mut Vec<usize>,
    row2: &mut Vec<usize>,
) -> usize {
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    row0.clear();
    row0.resize(m + 1, 0);
    row1.clear();
    row1.extend(0..=m);
    row2.clear();
    row2.resize(m + 1, 0);
    for i in 1..=n {
        row2[0] = i;
        for j in 1..=m {
            let cost = if a[i - 1] == b[j - 1] { 0 } else { 1 };
            let mut best = (row1[j] + 1).min(row2[j - 1] + 1).min(row1[j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(row0[j - 2] + 1);
            }
            row2[j] = best;
        }
        std::mem::swap(row0, row1);
        std::mem::swap(row1, row2);
    }
    row1[m]
}

/// Normalize an edit distance to a similarity in `[0,1]`:
/// `1 - distance / max(len_a, len_b)`, with identical empty strings scoring 1.
pub fn normalized_similarity(distance: usize, len_a: usize, len_b: usize) -> f64 {
    let max_len = len_a.max(len_b);
    if max_len == 0 {
        return 1.0;
    }
    1.0 - (distance as f64 / max_len as f64)
}

/// Normalized Levenshtein similarity (case-sensitive).
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    normalized_similarity(levenshtein(a, b), a.chars().count(), b.chars().count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("book", "book"), 0);
    }

    #[test]
    fn damerau_counts_transposition_as_one() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_levenshtein("ca", "ac"), 1);
        assert_eq!(damerau_levenshtein("author", "auhtor"), 1);
        assert_eq!(damerau_levenshtein("abc", "abc"), 0);
        assert_eq!(damerau_levenshtein("", "xyz"), 3);
    }

    #[test]
    fn damerau_never_exceeds_levenshtein() {
        let pairs = [
            ("title", "titel"),
            ("address", "adress"),
            ("authorName", "author_name"),
            ("shelf", "bookshelf"),
        ];
        for (a, b) in pairs {
            assert!(damerau_levenshtein(a, b) <= levenshtein(a, b), "{a} {b}");
        }
    }

    #[test]
    fn scratch_variants_agree_and_reuse_buffers() {
        let (mut r0, mut r1, mut r2) = (Vec::new(), Vec::new(), Vec::new());
        for (a, b) in [("kitten", "sitting"), ("", "x"), ("ca", "ac"), ("ab", "")] {
            let ca: Vec<char> = a.chars().collect();
            let cb: Vec<char> = b.chars().collect();
            assert_eq!(
                levenshtein_chars_scratch(&ca, &cb, &mut r0, &mut r1),
                levenshtein(a, b)
            );
            assert_eq!(
                damerau_levenshtein_chars_scratch(&ca, &cb, &mut r0, &mut r1, &mut r2),
                damerau_levenshtein(a, b)
            );
        }
    }

    #[test]
    fn normalized_similarity_bounds() {
        assert_eq!(normalized_similarity(0, 0, 0), 1.0);
        assert_eq!(normalized_similarity(0, 4, 4), 1.0);
        assert_eq!(normalized_similarity(4, 4, 4), 0.0);
        assert_eq!(normalized_similarity(2, 4, 4), 0.5);
    }

    #[test]
    fn levenshtein_similarity_examples() {
        assert_eq!(levenshtein_similarity("book", "book"), 1.0);
        assert!(levenshtein_similarity("book", "boot") > 0.7);
        assert!(levenshtein_similarity("book", "zzzz") < 0.01);
    }

    #[test]
    fn unicode_is_handled_per_scalar_value() {
        assert_eq!(levenshtein("naïve", "naive"), 1);
        assert_eq!(damerau_levenshtein("börse", "borse"), 1);
    }

    proptest! {
        #[test]
        fn lev_symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            prop_assert_eq!(damerau_levenshtein(&a, &b), damerau_levenshtein(&b, &a));
        }

        #[test]
        fn lev_identity(a in "[a-z]{0,16}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
            prop_assert_eq!(damerau_levenshtein(&a, &a), 0);
        }

        #[test]
        fn lev_triangle(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
            let ab = levenshtein(&a, &b);
            let bc = levenshtein(&b, &c);
            let ac = levenshtein(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn lev_bounded_by_max_len(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let d = levenshtein(&a, &b);
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
            let dd = damerau_levenshtein(&a, &b);
            prop_assert!(dd <= d);
        }

        #[test]
        fn normalized_in_unit_interval(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let s = levenshtein_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
