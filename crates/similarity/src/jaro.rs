//! Jaro and Jaro–Winkler similarity.
//!
//! Not used by the paper's Bellflower configuration but part of the standard schema
//! matcher toolbox (COMA's name matcher library); exposed for the ablation benches and
//! for users who want a prefix-weighted kernel.
//!
//! Both entry points lowercase each input exactly once; [`jaro_winkler`] shares the
//! lowercased characters between the Jaro core and the common-prefix scan instead of
//! re-lowercasing for each.

/// The Jaro core over pre-lowercased character slices.
fn jaro_chars(a: &[char], b: &[char]) -> f64 {
    let (la, lb) = (a.len(), b.len());
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    let match_window = (la.max(lb) / 2).saturating_sub(1);
    let mut b_matched = vec![false; lb];
    let mut a_matched = vec![false; la];
    let mut matches = 0usize;
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(lb);
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                a_matched[i] = true;
                b_matched[j] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions among matched characters.
    let mut transpositions = 0usize;
    let mut k = 0usize;
    for (i, &ca) in a.iter().enumerate() {
        if a_matched[i] {
            while !b_matched[k] {
                k += 1;
            }
            if ca != b[k] {
                transpositions += 1;
            }
            k += 1;
        }
    }
    let m = matches as f64;
    let t = transpositions as f64 / 2.0;
    (m / la as f64 + m / lb as f64 + (m - t) / m) / 3.0
}

/// Jaro similarity in `[0,1]`, case-insensitive.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.to_lowercase().chars().collect();
    let b: Vec<char> = b.to_lowercase().chars().collect();
    jaro_chars(&a, &b)
}

/// Jaro–Winkler similarity: Jaro boosted by a common-prefix bonus (scaling factor 0.1,
/// prefix capped at 4 characters — the standard parameters).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.to_lowercase().chars().collect();
    let b: Vec<char> = b.to_lowercase().chars().collect();
    let j = jaro_chars(&a, &b);
    if j == 0.0 {
        return 0.0;
    }
    let prefix = a
        .iter()
        .zip(b.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    (j + prefix * 0.1 * (1.0 - j)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        // Classic textbook example MARTHA / MARHTA ≈ 0.944.
        assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-4);
        // DWAYNE / DUANE ≈ 0.822.
        assert!((jaro("dwayne", "duane") - 0.822222).abs() < 1e-4);
    }

    #[test]
    fn winkler_boosts_common_prefix() {
        let j = jaro("prefecture", "prefix");
        let jw = jaro_winkler("prefecture", "prefix");
        assert!(jw > j);
        // No common prefix → no boost.
        assert_eq!(jaro("xabc", "yabc"), jaro_winkler("xabc", "yabc"));
    }

    #[test]
    fn disjoint_strings_score_zero() {
        assert_eq!(jaro("aaa", "zzz"), 0.0);
        assert_eq!(jaro_winkler("aaa", "zzz"), 0.0);
    }

    #[test]
    fn schema_name_pairs() {
        assert!(jaro_winkler("authorName", "author") > 0.9);
        assert!(jaro_winkler("email", "mail") > 0.7);
        assert!(jaro_winkler("title", "shelf") < 0.6);
    }

    proptest! {
        #[test]
        fn unit_interval_and_symmetry(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let j = jaro(&a, &b);
            let jw = jaro_winkler(&a, &b);
            prop_assert!((0.0..=1.0).contains(&j));
            prop_assert!((0.0..=1.0).contains(&jw));
            prop_assert!((jaro(&b, &a) - j).abs() < 1e-12);
            prop_assert!(jw + 1e-12 >= j);
        }

        #[test]
        fn identity(a in "[a-z]{1,12}") {
            prop_assert_eq!(jaro(&a, &a), 1.0);
            prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        }
    }
}
