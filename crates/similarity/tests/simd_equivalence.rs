//! Property suite for the `simd` module: every vectorized / word-parallel
//! kernel is bit-identical to its scalar reference on arbitrary inputs,
//! regardless of which CPU tier the host dispatches to.
//!
//! Run with `XSM_FORCE_SCALAR=1` (the CI forced-scalar leg) and every
//! dispatching kernel pins itself to the scalar path, so this suite proves the
//! fallback and the fast path compute the same answers on any host.

use proptest::prelude::*;
use xsm_similarity::edit::{damerau_levenshtein, levenshtein};
use xsm_similarity::simd::{
    accumulate_run, accumulate_run_scalar, hyyro_osa_blocked, lowercase, myers_levenshtein_blocked,
    BlockPeq, BlockScratch,
};

fn blocked_lev(a: &str, b: &str) -> Option<usize> {
    let ac: Vec<char> = a.chars().collect();
    if ac.is_empty() {
        return None;
    }
    let peq = BlockPeq::build(&ac);
    let bc: Vec<char> = b.chars().collect();
    let mut scratch = BlockScratch::default();
    Some(myers_levenshtein_blocked(&peq, ac.len(), &bc, &mut scratch))
}

fn blocked_osa(a: &str, b: &str) -> Option<usize> {
    let ac: Vec<char> = a.chars().collect();
    if ac.is_empty() {
        return None;
    }
    let peq = BlockPeq::build(&ac);
    let bc: Vec<char> = b.chars().collect();
    let mut scratch = BlockScratch::default();
    Some(hyyro_osa_blocked(&peq, ac.len(), &bc, &mut scratch))
}

// Mixed-case ASCII plus multi-byte letters, short enough for one block.
const NAMEISH: &str = "[a-zA-Z0-9_\\-äÖßλΣ中]{0,20}";
// Two to three blocks: past 64 and past 128 characters.
const MULTIBLOCK: &str = "[a-d ]{0,150}";
// Two-letter alphabet maximises edits and adjacent transpositions.
const TRANSPOSY: &str = "[ab]{0,140}";

proptest! {
    #[test]
    fn blocked_myers_equals_dp(a in NAMEISH, b in NAMEISH) {
        if let Some(got) = blocked_lev(&a, &b) {
            prop_assert_eq!(got, levenshtein(&a, &b));
        }
    }

    #[test]
    fn blocked_myers_equals_dp_multiblock(a in MULTIBLOCK, b in MULTIBLOCK) {
        if let Some(got) = blocked_lev(&a, &b) {
            prop_assert_eq!(got, levenshtein(&a, &b));
        }
    }

    #[test]
    fn blocked_osa_equals_dp(a in NAMEISH, b in NAMEISH) {
        if let Some(got) = blocked_osa(&a, &b) {
            prop_assert_eq!(got, damerau_levenshtein(&a, &b));
        }
    }

    #[test]
    fn blocked_osa_equals_dp_multiblock(a in MULTIBLOCK, b in MULTIBLOCK) {
        if let Some(got) = blocked_osa(&a, &b) {
            prop_assert_eq!(got, damerau_levenshtein(&a, &b));
        }
    }

    #[test]
    fn blocked_osa_equals_dp_transposition_rich(a in TRANSPOSY, b in TRANSPOSY) {
        if let Some(got) = blocked_osa(&a, &b) {
            prop_assert_eq!(got, damerau_levenshtein(&a, &b));
        }
    }

    #[test]
    fn accumulate_run_equals_scalar(
        run in proptest::collection::vec(0u32..512, 0..600),
        size in 1usize..513,
    ) {
        // Only keep indices in bounds so both paths complete; the out-of-bounds
        // panic equivalence is covered by the dedicated test below.
        let mut run: Vec<u32> = run.into_iter().filter(|&d| (d as usize) < size).collect();
        let mut c1 = vec![0u8; size];
        let mut t1 = vec![7u32];
        accumulate_run_scalar(&run, &mut c1, &mut t1);
        let mut c2 = vec![0u8; size];
        let mut t2 = vec![7u32];
        accumulate_run(&run, &mut c2, &mut t2);
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(t1, t2);
        // The same input in posting-arena form (strictly ascending, no
        // duplicates) — the shape the index actually hands the kernel.
        run.sort_unstable();
        run.dedup();
        let mut c1 = vec![0u8; size];
        let mut t1 = vec![7u32];
        accumulate_run_scalar(&run, &mut c1, &mut t1);
        let mut c2 = vec![0u8; size];
        let mut t2 = vec![7u32];
        accumulate_run(&run, &mut c2, &mut t2);
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(t1, t2);
    }

    #[test]
    fn lowercase_equals_std(s in "[a-zA-Z0-9_\\- äÖßλΣΊ中]{0,80}") {
        prop_assert_eq!(lowercase(&s), s.to_lowercase());
    }
}

#[test]
fn blocked_kernels_handle_degenerate_shapes() {
    // Empty text, all-identical-char names, and exact block-boundary lengths.
    for m in [1usize, 63, 64, 65, 127, 128, 129, 200] {
        let a = "x".repeat(m);
        for b in ["", "x", &"x".repeat(m), &"y".repeat(m), &"x".repeat(m + 64)] {
            assert_eq!(blocked_lev(&a, b).unwrap(), levenshtein(&a, b), "m={m}");
            assert_eq!(
                blocked_osa(&a, b).unwrap(),
                damerau_levenshtein(&a, b),
                "m={m}"
            );
        }
    }
}

#[test]
fn accumulate_run_panics_out_of_bounds_like_scalar() {
    let run: Vec<u32> = (0..40).chain([99u32]).collect();
    let mut counts = vec![0u8; 50];
    let mut touched = Vec::new();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        accumulate_run(&run, &mut counts, &mut touched);
    }));
    assert!(err.is_err(), "out-of-bounds id must still panic");
}
