//! Property suite: every feature kernel is bit-identical to its string-path
//! counterpart on arbitrary inputs — the contract that makes the zero-allocation
//! hot path a pure optimisation.
//!
//! Strategies mix ASCII schema-name characters with multi-byte Unicode (Greek,
//! umlauts, CJK) and lengths past the 64-character bit-parallel cutoff so the
//! Myers/Hyyrö fast path, the mixed short/long path and the blocked multi-word
//! kernels (including the three-block ≥ 128-char shapes) are all exercised.

use proptest::prelude::*;
use xsm_similarity::edit::{damerau_levenshtein, levenshtein};
use xsm_similarity::features::{
    damerau_features, dice_features, fuzzy_features, jaccard_features, jaro_features,
    jaro_winkler_features, levenshtein_features, token_set_features, GramInterner, NameFeatures,
    SimScratch,
};
use xsm_similarity::fuzzy::compare_string_fuzzy;
use xsm_similarity::jaro::{jaro, jaro_winkler};
use xsm_similarity::ngram::{ngram_similarity, qgram_jaccard};
use xsm_similarity::token::token_set_similarity;

/// Corpus-side feature pair: both names interned into one shared interner.
fn features(a: &str, b: &str, q: usize) -> (NameFeatures, NameFeatures) {
    let mut interner = GramInterner::new(q);
    (
        NameFeatures::build(a, &mut interner),
        NameFeatures::build(b, &mut interner),
    )
}

// Mixed-case ASCII, separators, digits, and multi-byte letters (ä/Ö/ß, Greek
// λ/Σ, CJK 中) — short enough for the bit-parallel path.
const NAMEISH: &str = "[a-zA-Z0-9_\\-äÖßλΣ中]{0,14}";
// Long strings (possibly > 64 and > 128 chars) force the blocked Myers/Hyyrö
// kernels — across one-, two- and three-block pattern widths — on one or both
// sides (the DP reference under `XSM_FORCE_SCALAR`).
const LONGISH: &str = "[a-c ]{0,150}";

proptest! {
    #[test]
    fn edit_kernels_equal_classic_dp(a in NAMEISH, b in NAMEISH) {
        let (fa, fb) = features(&a, &b, 3);
        let (la, lb) = (a.to_lowercase(), b.to_lowercase());
        let mut scratch = SimScratch::default();
        prop_assert_eq!(
            levenshtein_features(&fa, &fb, &mut scratch),
            levenshtein(&la, &lb)
        );
        prop_assert_eq!(
            damerau_features(&fa, &fb, &mut scratch),
            damerau_levenshtein(&la, &lb)
        );
    }

    #[test]
    fn edit_kernels_equal_classic_dp_beyond_64_chars(a in LONGISH, b in LONGISH) {
        let (fa, fb) = features(&a, &b, 3);
        let mut scratch = SimScratch::default();
        prop_assert_eq!(levenshtein_features(&fa, &fb, &mut scratch), levenshtein(&a, &b));
        prop_assert_eq!(
            damerau_features(&fa, &fb, &mut scratch),
            damerau_levenshtein(&a, &b)
        );
    }

    #[test]
    fn myers_and_dp_agree_across_the_cutoff(a in "[ab]{0,70}", b in "[ab]{0,70}") {
        // A two-letter alphabet maximises edits and transposition opportunities;
        // lengths straddle 64 so both algorithms and the mixed path all run.
        let (fa, fb) = features(&a, &b, 2);
        let mut scratch = SimScratch::default();
        prop_assert_eq!(levenshtein_features(&fa, &fb, &mut scratch), levenshtein(&a, &b));
        prop_assert_eq!(
            damerau_features(&fa, &fb, &mut scratch),
            damerau_levenshtein(&a, &b)
        );
    }

    #[test]
    fn fuzzy_kernel_is_bit_identical(a in NAMEISH, b in NAMEISH) {
        let (fa, fb) = features(&a, &b, 3);
        let mut scratch = SimScratch::default();
        prop_assert_eq!(
            fuzzy_features(&fa, &fb, &mut scratch).to_bits(),
            compare_string_fuzzy(&a, &b).to_bits()
        );
    }

    #[test]
    fn jaro_kernels_are_bit_identical(a in NAMEISH, b in NAMEISH) {
        let (fa, fb) = features(&a, &b, 3);
        let mut scratch = SimScratch::default();
        prop_assert_eq!(
            jaro_features(&fa, &fb, &mut scratch).to_bits(),
            jaro(&a, &b).to_bits()
        );
        prop_assert_eq!(
            jaro_winkler_features(&fa, &fb, &mut scratch).to_bits(),
            jaro_winkler(&a, &b).to_bits()
        );
    }

    #[test]
    fn gram_kernels_are_bit_identical(a in NAMEISH, b in NAMEISH, q in 1usize..4) {
        let (fa, fb) = features(&a, &b, q);
        prop_assert_eq!(
            dice_features(&fa, &fb).to_bits(),
            ngram_similarity(&a, &b, q).to_bits()
        );
        prop_assert_eq!(
            jaccard_features(&fa, &fb).to_bits(),
            qgram_jaccard(&a, &b, q).to_bits()
        );
    }

    #[test]
    fn token_set_kernel_is_bit_identical(a in "[a-zA-Z0-9_\\- ]{0,16}", b in "[a-zA-Z0-9_\\- ]{0,16}") {
        let (fa, fb) = features(&a, &b, 3);
        let mut scratch = SimScratch::default();
        prop_assert_eq!(
            token_set_features(&fa, &fb, &mut scratch).to_bits(),
            token_set_similarity(&a, &b).to_bits()
        );
    }

    #[test]
    fn query_side_features_score_exactly_like_corpus_features(
        corpus in NAMEISH, query in NAMEISH
    ) {
        // The corpus name is interned; the query is built read-only against the
        // frozen interner (unknown grams get private ids). Every kernel must agree
        // with the string path exactly, as in the serving engine.
        let mut interner = GramInterner::new(3);
        let fc = NameFeatures::build(&corpus, &mut interner);
        let fq = NameFeatures::build_query(&query, &interner);
        let mut scratch = SimScratch::default();
        prop_assert_eq!(
            fuzzy_features(&fq, &fc, &mut scratch).to_bits(),
            compare_string_fuzzy(&query, &corpus).to_bits()
        );
        prop_assert_eq!(
            dice_features(&fq, &fc).to_bits(),
            ngram_similarity(&query, &corpus, 3).to_bits()
        );
        prop_assert_eq!(
            jaccard_features(&fq, &fc).to_bits(),
            qgram_jaccard(&query, &corpus, 3).to_bits()
        );
    }
}
