//! The schema-matching problem quadruple `P = (s, R, Δ, δ)` (Def. 3 of the paper).

use serde::{Deserialize, Serialize};
use xsm_schema::{SchemaTree, TreeLabeling};

use crate::objective::ObjectiveConfig;

/// A schema-matching problem: the personal schema, the objective configuration and the
/// acceptance threshold δ. The repository `R` is passed separately to the matching
/// functions (it is large and shared across problems).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchingProblem {
    /// The personal schema `s` (a small tree authored by the user).
    pub personal: SchemaTree,
    /// Objective-function configuration (α, K).
    pub objective: ObjectiveConfig,
    /// Threshold δ: only mappings with `Δ(s,t) ≥ δ` are part of the solution.
    pub threshold: f64,
    /// Labelling of the personal schema (built on construction).
    #[serde(skip)]
    labeling: Option<TreeLabeling>,
}

impl MatchingProblem {
    /// Create a problem; `threshold` is clamped to `[0,1]`.
    pub fn new(personal: SchemaTree, objective: ObjectiveConfig, threshold: f64) -> Self {
        let labeling = Some(TreeLabeling::build(&personal));
        MatchingProblem {
            personal,
            objective,
            threshold: threshold.clamp(0.0, 1.0),
            labeling,
        }
    }

    /// The paper's Sec. 5 experiment problem: "the personal schema has nodes 'name',
    /// 'address', and 'email', and a structure similar to schema s in Fig. 1" — i.e.
    /// a three-node tree with `name` as the root and `address`, `email` as children.
    /// δ = 0.75, α = 0.5.
    pub fn paper_experiment() -> Self {
        use xsm_schema::{SchemaNode, TreeBuilder};
        let personal = TreeBuilder::new("personal:contact")
            .root(SchemaNode::element("name"))
            .child(SchemaNode::element("address"))
            .sibling(SchemaNode::element("email"))
            .build();
        MatchingProblem::new(personal, ObjectiveConfig::default(), 0.75)
    }

    /// The Fig. 1 running-example problem: `book(title, author)`, δ = 0.6.
    pub fn fig1_example() -> Self {
        MatchingProblem::new(
            xsm_schema::tree::paper_personal_schema(),
            ObjectiveConfig::default(),
            0.6,
        )
    }

    /// Number of nodes in the personal schema (`|N_s|`).
    pub fn personal_size(&self) -> usize {
        self.personal.len()
    }

    /// Number of edges in the personal schema (`|E_s|`).
    pub fn personal_edges(&self) -> usize {
        self.personal.edge_count()
    }

    /// Labelling of the personal schema (rebuilt lazily after deserialization).
    pub fn labeling(&mut self) -> &TreeLabeling {
        if self.labeling.is_none() {
            self.labeling = Some(TreeLabeling::build(&self.personal));
        }
        self.labeling.as_ref().unwrap()
    }

    /// Personal-schema node ids in pre-order (the canonical iteration order used by
    /// candidate sets and generators).
    pub fn personal_nodes(&self) -> Vec<xsm_schema::NodeId> {
        self.personal.preorder()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_experiment_shape() {
        let p = MatchingProblem::paper_experiment();
        assert_eq!(p.personal_size(), 3);
        assert_eq!(p.personal_edges(), 2);
        assert_eq!(p.threshold, 0.75);
        let names: Vec<&str> = p
            .personal_nodes()
            .iter()
            .map(|&n| p.personal.name_of(n))
            .collect();
        assert_eq!(names, vec!["name", "address", "email"]);
    }

    #[test]
    fn fig1_example_shape() {
        let p = MatchingProblem::fig1_example();
        assert_eq!(p.personal_size(), 3);
        assert_eq!(p.personal.name_of(p.personal.root().unwrap()), "book");
    }

    #[test]
    fn threshold_is_clamped() {
        let p = MatchingProblem::new(
            xsm_schema::tree::paper_personal_schema(),
            ObjectiveConfig::default(),
            7.5,
        );
        assert_eq!(p.threshold, 1.0);
        let q = MatchingProblem::new(
            xsm_schema::tree::paper_personal_schema(),
            ObjectiveConfig::default(),
            -3.0,
        );
        assert_eq!(q.threshold, 0.0);
    }

    #[test]
    fn labeling_available_and_rebuildable() {
        let mut p = MatchingProblem::fig1_example();
        let root = p.personal.root().unwrap();
        assert_eq!(p.labeling().depth(root), Some(0));
        // Simulate deserialization losing the labelling.
        p.labeling = None;
        assert_eq!(p.labeling().depth(root), Some(0));
    }
}
