//! Schema mappings (`s ↦ t`, Def. 2 of the paper).
//!
//! A [`SchemaMapping`] assigns every personal-schema node to one repository node; the
//! repository subgraph `t` is the minimal subtree spanning the chosen nodes (so every
//! personal edge maps to the unique repository path between its endpoints' images —
//! the edge-to-path rule of Def. 2). All images must come from one repository tree and
//! must be pairwise distinct ("1 to 1" element mappings).

use serde::{Deserialize, Serialize};
use xsm_schema::{GlobalNodeId, NodeId, TreeId, TreeLabeling};

use crate::candidates::MappingElement;

/// A (possibly partial) schema mapping with its objective score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaMapping {
    /// The element mappings, one per assigned personal node.
    pairs: Vec<MappingElement>,
    /// The value of the objective function `Δ(s,t)` (set by the generator).
    pub score: f64,
}

impl SchemaMapping {
    /// Create a mapping from element mappings; the score defaults to 0 until the
    /// objective is evaluated.
    pub fn new(pairs: Vec<MappingElement>) -> Self {
        SchemaMapping { pairs, score: 0.0 }
    }

    /// Create a mapping and set its score.
    pub fn with_score(pairs: Vec<MappingElement>, score: f64) -> Self {
        SchemaMapping { pairs, score }
    }

    /// The element mappings.
    pub fn pairs(&self) -> &[MappingElement] {
        &self.pairs
    }

    /// Number of assigned personal nodes.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no personal node is assigned.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Is every one of the given personal nodes assigned?
    pub fn is_complete_for(&self, personal_nodes: &[NodeId]) -> bool {
        personal_nodes
            .iter()
            .all(|n| self.pairs.iter().any(|p| p.personal == *n))
    }

    /// The image of a personal node, if assigned.
    pub fn image_of(&self, personal: NodeId) -> Option<GlobalNodeId> {
        self.pairs
            .iter()
            .find(|p| p.personal == personal)
            .map(|p| p.repo)
    }

    /// The repository tree all images live in (`None` for an empty mapping; mappings
    /// constructed by the generators never mix trees).
    pub fn repo_tree(&self) -> Option<TreeId> {
        self.pairs.first().map(|p| p.repo.tree)
    }

    /// All repository nodes used as images.
    pub fn repo_nodes(&self) -> Vec<GlobalNodeId> {
        self.pairs.iter().map(|p| p.repo).collect()
    }

    /// Average element similarity over the assigned pairs (the `Δ_sim` numerator
    /// restricted to assigned nodes; the full `Δ_sim` divides by `|N_s|`).
    pub fn assigned_similarity_sum(&self) -> f64 {
        self.pairs.iter().map(|p| p.similarity).sum()
    }

    /// Structural validity: all images in one tree and pairwise distinct, and each
    /// personal node assigned at most once.
    pub fn is_structurally_valid(&self) -> bool {
        if self.pairs.is_empty() {
            return true;
        }
        let tree = self.pairs[0].repo.tree;
        if !self.pairs.iter().all(|p| p.repo.tree == tree) {
            return false;
        }
        let mut repo_nodes: Vec<GlobalNodeId> = self.repo_nodes();
        repo_nodes.sort();
        let before = repo_nodes.len();
        repo_nodes.dedup();
        if repo_nodes.len() != before {
            return false;
        }
        let mut personal: Vec<NodeId> = self.pairs.iter().map(|p| p.personal).collect();
        personal.sort();
        let before = personal.len();
        personal.dedup();
        personal.len() == before
    }
}

/// Number of edges of the minimal subtree (Steiner tree) of `nodes` within one
/// repository tree, computed from the labelling in `O(k log k)` for `k` nodes:
/// order the nodes by pre-order rank, sum the pairwise distances of consecutive nodes
/// cyclically, and halve. This is `|E_t|` of the paper's `Δ_path` (Eq. 2).
pub fn steiner_edge_count(labeling: &TreeLabeling, nodes: &[xsm_schema::NodeId]) -> u32 {
    let mut unique: Vec<xsm_schema::NodeId> = nodes.to_vec();
    unique.sort();
    unique.dedup();
    if unique.len() <= 1 {
        return 0;
    }
    unique.sort_by_key(|&n| labeling.preorder_rank(n).unwrap_or(u32::MAX));
    let mut total = 0u32;
    for i in 0..unique.len() {
        let a = unique[i];
        let b = unique[(i + 1) % unique.len()];
        total += labeling.distance(a, b).unwrap_or(0);
    }
    total / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsm_schema::tree::paper_repository_fragment;
    use xsm_schema::TreeLabeling;

    fn gid(tree: u32, node: u32) -> GlobalNodeId {
        GlobalNodeId::new(TreeId(tree), NodeId(node))
    }

    #[test]
    fn empty_mapping_properties() {
        let m = SchemaMapping::new(vec![]);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert!(m.is_structurally_valid());
        assert_eq!(m.repo_tree(), None);
        assert!(m.is_complete_for(&[]));
        assert!(!m.is_complete_for(&[NodeId(0)]));
    }

    #[test]
    fn image_lookup_and_completeness() {
        let m = SchemaMapping::new(vec![
            MappingElement::new(NodeId(0), gid(0, 2), 1.0),
            MappingElement::new(NodeId(1), gid(0, 4), 0.9),
        ]);
        assert_eq!(m.image_of(NodeId(0)), Some(gid(0, 2)));
        assert_eq!(m.image_of(NodeId(5)), None);
        assert!(m.is_complete_for(&[NodeId(0), NodeId(1)]));
        assert!(!m.is_complete_for(&[NodeId(0), NodeId(1), NodeId(2)]));
        assert_eq!(m.repo_tree(), Some(TreeId(0)));
        assert!((m.assigned_similarity_sum() - 1.9).abs() < 1e-12);
    }

    #[test]
    fn validity_rejects_cross_tree_and_duplicates() {
        let cross = SchemaMapping::new(vec![
            MappingElement::new(NodeId(0), gid(0, 2), 1.0),
            MappingElement::new(NodeId(1), gid(1, 4), 0.9),
        ]);
        assert!(!cross.is_structurally_valid());

        let dup_repo = SchemaMapping::new(vec![
            MappingElement::new(NodeId(0), gid(0, 2), 1.0),
            MappingElement::new(NodeId(1), gid(0, 2), 0.9),
        ]);
        assert!(!dup_repo.is_structurally_valid());

        let dup_personal = SchemaMapping::new(vec![
            MappingElement::new(NodeId(0), gid(0, 2), 1.0),
            MappingElement::new(NodeId(0), gid(0, 3), 0.9),
        ]);
        assert!(!dup_personal.is_structurally_valid());
    }

    #[test]
    fn steiner_edge_count_on_fig1() {
        let tree = paper_repository_fragment();
        let lab = TreeLabeling::build(&tree);
        let title = tree.find_by_name("title").unwrap();
        let author = tree.find_by_name("authorName").unwrap();
        let book = tree.find_by_name("book").unwrap();
        let address = tree.find_by_name("address").unwrap();
        let shelf = tree.find_by_name("shelf").unwrap();

        // Single node: no edges. Pair: path length.
        assert_eq!(steiner_edge_count(&lab, &[title]), 0);
        assert_eq!(steiner_edge_count(&lab, &[title, author]), 2);
        // {book, title, authorName}: book-data, data-title, data-authorName = 3 edges
        // (data is a Steiner point).
        assert_eq!(steiner_edge_count(&lab, &[book, title, author]), 3);
        // The gray subtree t of Fig. 1 {book, data, title, authorName}: same 3 edges.
        let data = tree.find_by_name("data").unwrap();
        assert_eq!(steiner_edge_count(&lab, &[book, data, title, author]), 3);
        // Adding shelf grows the subtree by one edge.
        assert_eq!(steiner_edge_count(&lab, &[book, title, author, shelf]), 4);
        // Spanning the whole fragment: 6 edges (all of them).
        assert_eq!(
            steiner_edge_count(&lab, &[title, author, shelf, address]),
            6
        );
        // Duplicates are ignored.
        assert_eq!(steiner_edge_count(&lab, &[title, title, author]), 2);
        assert_eq!(steiner_edge_count(&lab, &[]), 0);
    }

    #[test]
    fn steiner_is_monotone_under_node_addition() {
        let tree = paper_repository_fragment();
        let lab = TreeLabeling::build(&tree);
        let all: Vec<_> = tree.node_ids().collect();
        // For every pair of subsets A ⊆ B (built incrementally), |E(A)| <= |E(B)|.
        let mut acc = Vec::new();
        let mut prev = 0;
        for &n in &all {
            acc.push(n);
            let cur = steiner_edge_count(&lab, &acc);
            assert!(cur >= prev, "steiner shrank when adding {n}");
            prev = cur;
        }
        assert_eq!(prev, (tree.len() - 1) as u32);
    }
}
