//! The objective function `Δ(s,t)` (Eq. 1–3 of the paper).
//!
//! * `Δ_sim(s,t)` — mean element-name similarity over the personal nodes (Eq. 1),
//! * `Δ_path(s,t) = 1 − (|E_t| − |E_s|) / (|E_s|·K)` — path-length similarity (Eq. 2),
//!   where `|E_t|` is the edge count of the minimal repository subtree spanning the
//!   images and `K` is a normalisation constant,
//! * `Δ = α·Δ_sim + (1−α)·Δ_path` (Eq. 3).
//!
//! The same struct also provides the **admissible upper bound** the Branch & Bound
//! generator prunes with: for a partial mapping the remaining `Δ_sim` contribution is
//! bounded by each unassigned node's best available candidate, and `Δ_path` can only
//! decrease as the spanned subtree grows.

use serde::{Deserialize, Serialize};
use xsm_schema::TreeLabeling;

use crate::candidates::CandidateSet;
use crate::mapping::{steiner_edge_count, SchemaMapping};

/// Parameters of the objective function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveConfig {
    /// Weight α of the name-similarity hint; `1−α` weights the path-length hint.
    pub alpha: f64,
    /// Normalisation constant `K` of Eq. 2. The paper sets it "using other constraints
    /// in the system (e.g. the maximum length of a path)"; 4.0 is our default — a
    /// mapping whose subtree has `4·|E_s|` excess edges scores `Δ_path = 0`.
    pub path_norm: f64,
}

impl Default for ObjectiveConfig {
    fn default() -> Self {
        ObjectiveConfig {
            alpha: 0.5,
            path_norm: 4.0,
        }
    }
}

impl ObjectiveConfig {
    /// Builder-style α override (clamped to `[0,1]`).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha.clamp(0.0, 1.0);
        self
    }

    /// Builder-style K override (floored at a small positive value).
    pub fn with_path_norm(mut self, k: f64) -> Self {
        self.path_norm = k.max(1e-6);
        self
    }
}

/// Evaluates `Δ` for (partial) schema mappings against one personal schema.
#[derive(Debug, Clone)]
pub struct Objective {
    config: ObjectiveConfig,
    /// `|N_s|`.
    personal_node_count: usize,
    /// `|E_s|`.
    personal_edge_count: usize,
}

impl Objective {
    /// Create an objective for a personal schema of the given size.
    pub fn new(
        config: ObjectiveConfig,
        personal_node_count: usize,
        personal_edge_count: usize,
    ) -> Self {
        Objective {
            config,
            personal_node_count,
            personal_edge_count,
        }
    }

    /// Convenience constructor from a matching problem.
    pub fn for_problem(problem: &crate::problem::MatchingProblem) -> Self {
        Objective::new(
            problem.objective,
            problem.personal_size(),
            problem.personal_edges(),
        )
    }

    /// The configuration in use.
    pub fn config(&self) -> ObjectiveConfig {
        self.config
    }

    /// `Δ_sim` (Eq. 1): sum of element similarities over *all* personal nodes divided
    /// by `|N_s|`; unassigned nodes contribute 0.
    pub fn delta_sim(&self, mapping: &SchemaMapping) -> f64 {
        if self.personal_node_count == 0 {
            return 0.0;
        }
        mapping.assigned_similarity_sum() / self.personal_node_count as f64
    }

    /// `Δ_path` (Eq. 2) for a mapping whose images live in the tree labelled by
    /// `labeling`. For mappings spanning fewer than two nodes the subtree has no edges
    /// and the term evaluates to its maximum, 1.0.
    pub fn delta_path(&self, mapping: &SchemaMapping, labeling: &TreeLabeling) -> f64 {
        let nodes: Vec<xsm_schema::NodeId> = mapping.pairs().iter().map(|p| p.repo.node).collect();
        let et = steiner_edge_count(labeling, &nodes) as f64;
        self.delta_path_from_edges(et)
    }

    /// `Δ_path` from a precomputed `|E_t|`.
    pub fn delta_path_from_edges(&self, et: f64) -> f64 {
        let es = self.personal_edge_count as f64;
        if es == 0.0 {
            // A single-node personal schema has no structure to compare.
            return 1.0;
        }
        let excess = (et - es).max(0.0);
        (1.0 - excess / (es * self.config.path_norm)).clamp(0.0, 1.0)
    }

    /// `Δ` (Eq. 3) for a complete or partial mapping.
    pub fn delta(&self, mapping: &SchemaMapping, labeling: &TreeLabeling) -> f64 {
        let sim = self.delta_sim(mapping);
        let path = self.delta_path(mapping, labeling);
        self.combine(sim, path)
    }

    /// Combine precomputed `Δ_sim` and `Δ_path`.
    pub fn combine(&self, delta_sim: f64, delta_path: f64) -> f64 {
        (self.config.alpha * delta_sim + (1.0 - self.config.alpha) * delta_path).clamp(0.0, 1.0)
    }

    /// Admissible upper bound on the best complete extension of `partial`:
    ///
    /// * `Δ_sim` is bounded by adding, for every still-unassigned personal node, the
    ///   highest candidate similarity that `scope` offers for it;
    /// * `Δ_path` is bounded by the current partial subtree size (`|E_t|` can only
    ///   grow, so `Δ_path` can only shrink).
    ///
    /// The Branch & Bound generator prunes a branch when this bound falls below δ.
    pub fn upper_bound(
        &self,
        partial: &SchemaMapping,
        labeling: &TreeLabeling,
        scope: &CandidateSet,
    ) -> f64 {
        if self.personal_node_count == 0 {
            return 0.0;
        }
        let mut sim_sum = partial.assigned_similarity_sum();
        for &pnode in scope.personal_nodes() {
            if partial.image_of(pnode).is_none() {
                let best = scope
                    .candidates_for(pnode)
                    .first()
                    .map(|m| m.similarity)
                    .unwrap_or(0.0);
                sim_sum += best;
            }
        }
        let sim_bound = sim_sum / self.personal_node_count as f64;
        let path_bound = self.delta_path(partial, labeling);
        self.combine(sim_bound, path_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{CandidateSet, MappingElement};
    use crate::mapping::SchemaMapping;
    use xsm_schema::tree::{paper_personal_schema, paper_repository_fragment};
    use xsm_schema::{GlobalNodeId, NodeId, TreeId, TreeLabeling};

    fn gid(node: NodeId) -> GlobalNodeId {
        GlobalNodeId::new(TreeId(0), node)
    }

    /// The Fig. 1 mapping: book→book, title→title, author→authorName.
    fn fig1_mapping() -> (SchemaMapping, TreeLabeling, Objective) {
        let personal = paper_personal_schema();
        let repo_tree = paper_repository_fragment();
        let lab = TreeLabeling::build(&repo_tree);
        let p_book = personal.find_by_name("book").unwrap();
        let p_title = personal.find_by_name("title").unwrap();
        let p_author = personal.find_by_name("author").unwrap();
        let r_book = repo_tree.find_by_name("book").unwrap();
        let r_title = repo_tree.find_by_name("title").unwrap();
        let r_author = repo_tree.find_by_name("authorName").unwrap();
        let sim_author = xsm_similarity::compare_string_fuzzy("author", "authorName");
        let mapping = SchemaMapping::new(vec![
            MappingElement::new(p_book, gid(r_book), 1.0),
            MappingElement::new(p_title, gid(r_title), 1.0),
            MappingElement::new(p_author, gid(r_author), sim_author),
        ]);
        let objective = Objective::new(
            ObjectiveConfig::default(),
            personal.len(),
            personal.edge_count(),
        );
        (mapping, lab, objective)
    }

    #[test]
    fn delta_sim_averages_over_all_personal_nodes() {
        let (mapping, _, obj) = fig1_mapping();
        let sim_author = xsm_similarity::compare_string_fuzzy("author", "authorName");
        let expected = (1.0 + 1.0 + sim_author) / 3.0;
        assert!((obj.delta_sim(&mapping) - expected).abs() < 1e-12);
    }

    #[test]
    fn delta_path_penalises_excess_edges() {
        let (mapping, lab, obj) = fig1_mapping();
        // Images {book, title, authorName} span 3 edges (data is a Steiner point);
        // |E_s| = 2, K = 4, so Δ_path = 1 - (3-2)/(2*4) = 0.875.
        assert!((obj.delta_path(&mapping, &lab) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn delta_combines_with_alpha() {
        let (mapping, lab, obj) = fig1_mapping();
        let sim = obj.delta_sim(&mapping);
        let path = obj.delta_path(&mapping, &lab);
        let expected = 0.5 * sim + 0.5 * path;
        assert!((obj.delta(&mapping, &lab) - expected).abs() < 1e-12);

        let alpha_heavy = Objective::new(ObjectiveConfig::default().with_alpha(1.0), 3, 2);
        assert!((alpha_heavy.delta(&mapping, &lab) - sim).abs() < 1e-12);
        let path_heavy = Objective::new(ObjectiveConfig::default().with_alpha(0.0), 3, 2);
        assert!((path_heavy.delta(&mapping, &lab) - path).abs() < 1e-12);
    }

    #[test]
    fn delta_path_edge_cases() {
        let obj = Objective::new(ObjectiveConfig::default(), 1, 0);
        // Single-node personal schema: structure term is neutral 1.0.
        assert_eq!(obj.delta_path_from_edges(0.0), 1.0);
        assert_eq!(obj.delta_path_from_edges(10.0), 1.0);

        let obj = Objective::new(ObjectiveConfig::default(), 3, 2);
        // No excess.
        assert_eq!(obj.delta_path_from_edges(2.0), 1.0);
        // Excess beyond K·|E_s| clamps to zero.
        assert_eq!(obj.delta_path_from_edges(2.0 + 8.0), 0.0);
        assert_eq!(obj.delta_path_from_edges(100.0), 0.0);
        // |E_t| below |E_s| (partial mapping) must not exceed 1.
        assert_eq!(obj.delta_path_from_edges(0.0), 1.0);
    }

    #[test]
    fn upper_bound_dominates_true_score_of_any_extension() {
        let personal = paper_personal_schema();
        let repo_tree = paper_repository_fragment();
        let lab = TreeLabeling::build(&repo_tree);
        let p_nodes = personal.preorder();
        let obj = Objective::new(
            ObjectiveConfig::default(),
            personal.len(),
            personal.edge_count(),
        );

        // Candidate scope: every personal node may map to every repository node with
        // the fuzzy similarity.
        let mut scope = CandidateSet::new(p_nodes.clone());
        for &p in &p_nodes {
            for r in repo_tree.node_ids() {
                let sim =
                    xsm_similarity::compare_string_fuzzy(personal.name_of(p), repo_tree.name_of(r));
                scope.push(MappingElement::new(p, gid(r), sim));
            }
        }
        scope.sort();

        // Partial mapping assigning only the root.
        let r_book = repo_tree.find_by_name("book").unwrap();
        let partial = SchemaMapping::new(vec![MappingElement::new(p_nodes[0], gid(r_book), 1.0)]);
        let bound = obj.upper_bound(&partial, &lab, &scope);

        // Enumerate all complete extensions and verify none exceeds the bound.
        let mut best = 0.0f64;
        for r1 in repo_tree.node_ids() {
            for r2 in repo_tree.node_ids() {
                if r1 == r2 || r1 == r_book || r2 == r_book {
                    continue;
                }
                let m = SchemaMapping::new(vec![
                    MappingElement::new(p_nodes[0], gid(r_book), 1.0),
                    MappingElement::new(
                        p_nodes[1],
                        gid(r1),
                        xsm_similarity::compare_string_fuzzy(
                            personal.name_of(p_nodes[1]),
                            repo_tree.name_of(r1),
                        ),
                    ),
                    MappingElement::new(
                        p_nodes[2],
                        gid(r2),
                        xsm_similarity::compare_string_fuzzy(
                            personal.name_of(p_nodes[2]),
                            repo_tree.name_of(r2),
                        ),
                    ),
                ]);
                best = best.max(obj.delta(&m, &lab));
            }
        }
        assert!(
            bound + 1e-9 >= best,
            "bound {bound} does not dominate best completion {best}"
        );
    }

    #[test]
    fn config_builders_clamp() {
        let c = ObjectiveConfig::default().with_alpha(3.0);
        assert_eq!(c.alpha, 1.0);
        let c = ObjectiveConfig::default().with_alpha(-1.0);
        assert_eq!(c.alpha, 0.0);
        let c = ObjectiveConfig::default().with_path_norm(0.0);
        assert!(c.path_norm > 0.0);
    }

    #[test]
    fn empty_personal_schema_scores_zero() {
        let obj = Objective::new(ObjectiveConfig::default(), 0, 0);
        let m = SchemaMapping::new(vec![]);
        assert_eq!(obj.delta_sim(&m), 0.0);
        let lab = TreeLabeling::build(&paper_repository_fragment());
        let scope = CandidateSet::new(vec![]);
        assert_eq!(obj.upper_bound(&m, &lab, &scope), 0.0);
    }
}
