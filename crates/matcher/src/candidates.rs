//! Mapping elements and candidate sets (step ③ of the paper's architecture).
//!
//! A *mapping element* is a repository node paired with the personal-schema node it may
//! map to, together with the element-level similarity the matchers computed for the
//! pair. The set of mapping elements for personal node `n` is `ME_n`; the paper's
//! clusterer partitions the union `ME = ⋃ ME_n` and its centroid initialisation uses
//! the smallest set `ME_min`.

use serde::{Deserialize, Serialize};
use xsm_schema::{GlobalNodeId, NodeId, TreeId};

/// One mapping element: `n ↦ n'` with its element-level similarity `sim(n, n')`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingElement {
    /// The personal-schema node `n` (the *mapped* element).
    pub personal: NodeId,
    /// The repository node `n'` (the *mapping* element).
    pub repo: GlobalNodeId,
    /// Element-level similarity in `[0,1]`.
    pub similarity: f64,
}

impl MappingElement {
    /// Convenience constructor.
    pub fn new(personal: NodeId, repo: GlobalNodeId, similarity: f64) -> Self {
        MappingElement {
            personal,
            repo,
            similarity,
        }
    }
}

/// Candidate mapping elements grouped per personal-schema node.
///
/// A `CandidateSet` is the *scope* a mapping generator works on: the element-matching
/// step produces one covering the entire repository, the non-clustered baseline slices
/// it per repository tree, and the clusterer slices it per cluster.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CandidateSet {
    /// Personal-schema node ids, in the canonical (pre-order) order.
    personal_nodes: Vec<NodeId>,
    /// `per_node[i]` = mapping elements for `personal_nodes[i]`, sorted by descending
    /// similarity.
    per_node: Vec<Vec<MappingElement>>,
}

impl CandidateSet {
    /// Create an empty candidate set over the given personal nodes.
    pub fn new(personal_nodes: Vec<NodeId>) -> Self {
        let per_node = vec![Vec::new(); personal_nodes.len()];
        CandidateSet {
            personal_nodes,
            per_node,
        }
    }

    /// The personal nodes this set is indexed by.
    pub fn personal_nodes(&self) -> &[NodeId] {
        &self.personal_nodes
    }

    /// Add a mapping element (appended; call [`CandidateSet::sort`] when done).
    pub fn push(&mut self, element: MappingElement) {
        if let Some(idx) = self.index_of(element.personal) {
            self.per_node[idx].push(element);
        }
    }

    /// Sort every per-node list by descending similarity (ties broken by repo id for
    /// determinism).
    pub fn sort(&mut self) {
        for list in &mut self.per_node {
            list.sort_by(|a, b| {
                b.similarity
                    .partial_cmp(&a.similarity)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.repo.cmp(&b.repo))
            });
        }
    }

    /// Index of a personal node in the canonical order.
    pub fn index_of(&self, node: NodeId) -> Option<usize> {
        self.personal_nodes.iter().position(|&n| n == node)
    }

    /// Mapping elements for the personal node at canonical index `i`.
    pub fn candidates_at(&self, i: usize) -> &[MappingElement] {
        self.per_node.get(i).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Mapping elements for a personal node.
    pub fn candidates_for(&self, node: NodeId) -> &[MappingElement] {
        match self.index_of(node) {
            Some(i) => self.candidates_at(i),
            None => &[],
        }
    }

    /// Number of personal nodes (`|N_s|`).
    pub fn node_count(&self) -> usize {
        self.personal_nodes.len()
    }

    /// Total number of mapping elements across all personal nodes (`|ME|`, counting a
    /// repository node once per personal node it is a candidate for).
    pub fn total_candidates(&self) -> usize {
        self.per_node.iter().map(|v| v.len()).sum()
    }

    /// Number of *distinct* repository nodes appearing as candidates.
    pub fn distinct_repo_nodes(&self) -> usize {
        let mut set: Vec<GlobalNodeId> = self
            .per_node
            .iter()
            .flat_map(|v| v.iter().map(|m| m.repo))
            .collect();
        set.sort();
        set.dedup();
        set.len()
    }

    /// The personal node with the fewest candidates and that count (`ME_min` of the
    /// paper's centroid-initialisation heuristic). `None` for an empty set.
    pub fn min_candidate_node(&self) -> Option<(NodeId, usize)> {
        self.personal_nodes
            .iter()
            .zip(&self.per_node)
            .map(|(&n, v)| (n, v.len()))
            .min_by_key(|&(_, len)| len)
    }

    /// True if at least one personal node has no candidate at all (such a scope can
    /// never produce a complete schema mapping — a "non-useful cluster").
    pub fn has_empty_node(&self) -> bool {
        self.per_node.iter().any(|v| v.is_empty())
    }

    /// Whether the scope can produce complete mappings (every personal node has at
    /// least one candidate) — the paper's *useful cluster* test.
    pub fn is_useful(&self) -> bool {
        !self.per_node.is_empty() && !self.has_empty_node()
    }

    /// The size of the search space this scope induces: `∏_n max(|ME_n|, 1)` counting
    /// only useful scopes — i.e. the number of complete node assignments a naive
    /// generator would have to consider. Saturates at `u128::MAX`.
    pub fn search_space_size(&self) -> u128 {
        if !self.is_useful() {
            return 0;
        }
        let mut size: u128 = 1;
        for v in &self.per_node {
            size = size.saturating_mul(v.len().max(1) as u128);
        }
        size
    }

    /// Restrict this set to candidates within a single repository tree. Used by the
    /// non-clustered baseline ("each tree in the repository is treated as one cluster").
    pub fn restrict_to_tree(&self, tree: TreeId) -> CandidateSet {
        self.restrict(|m| m.repo.tree == tree)
    }

    /// Split the set into its per-tree restrictions in one pass, ascending by tree:
    /// equivalent to `self.trees()` + [`CandidateSet::restrict_to_tree`] per tree,
    /// but `O(|ME|·log T + T·|N_s|)` instead of `O(T·|ME|)`. Per-query tree-local
    /// consumers (the clusterer) use this so a forest of thousands of trees does
    /// not rescan the whole candidate set per tree.
    pub fn split_by_tree(&self) -> Vec<(TreeId, CandidateSet)> {
        let trees = self.trees();
        let mut parts: Vec<(TreeId, CandidateSet)> = trees
            .iter()
            .map(|&t| (t, CandidateSet::new(self.personal_nodes.clone())))
            .collect();
        for (node_idx, list) in self.per_node.iter().enumerate() {
            for m in list {
                let slot = trees
                    .binary_search(&m.repo.tree)
                    .expect("trees() covers every candidate tree");
                parts[slot].1.per_node[node_idx].push(*m);
            }
        }
        parts
    }

    /// Restrict this set to candidates accepted by a predicate (the clusterer uses this
    /// with cluster membership).
    pub fn restrict<F>(&self, keep: F) -> CandidateSet
    where
        F: Fn(&MappingElement) -> bool,
    {
        let per_node = self
            .per_node
            .iter()
            .map(|v| v.iter().copied().filter(|m| keep(m)).collect())
            .collect();
        CandidateSet {
            personal_nodes: self.personal_nodes.clone(),
            per_node,
        }
    }

    /// All distinct repository trees touched by the candidates.
    pub fn trees(&self) -> Vec<TreeId> {
        let mut trees: Vec<TreeId> = self
            .per_node
            .iter()
            .flat_map(|v| v.iter().map(|m| m.repo.tree))
            .collect();
        trees.sort();
        trees.dedup();
        trees
    }

    /// Iterate over all mapping elements (across all personal nodes).
    pub fn iter(&self) -> impl Iterator<Item = &MappingElement> + '_ {
        self.per_node.iter().flatten()
    }

    /// Average `|ME_n|` over personal nodes (the "avg. # of mapping elements" column of
    /// Tab. 1a).
    pub fn avg_candidates_per_node(&self) -> f64 {
        if self.per_node.is_empty() {
            return 0.0;
        }
        self.total_candidates() as f64 / self.per_node.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gid(tree: u32, node: u32) -> GlobalNodeId {
        GlobalNodeId::new(TreeId(tree), NodeId(node))
    }

    fn sample_set() -> CandidateSet {
        let mut set = CandidateSet::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        set.push(MappingElement::new(NodeId(0), gid(0, 1), 0.9));
        set.push(MappingElement::new(NodeId(0), gid(1, 4), 0.7));
        set.push(MappingElement::new(NodeId(1), gid(0, 3), 0.95));
        set.push(MappingElement::new(NodeId(1), gid(0, 5), 0.5));
        set.push(MappingElement::new(NodeId(1), gid(1, 2), 0.8));
        set.push(MappingElement::new(NodeId(2), gid(0, 6), 0.6));
        set.sort();
        set
    }

    #[test]
    fn push_and_lookup() {
        let set = sample_set();
        assert_eq!(set.node_count(), 3);
        assert_eq!(set.total_candidates(), 6);
        assert_eq!(set.candidates_for(NodeId(1)).len(), 3);
        assert_eq!(set.candidates_for(NodeId(9)).len(), 0);
        // Sorted descending by similarity.
        let sims: Vec<f64> = set
            .candidates_for(NodeId(1))
            .iter()
            .map(|m| m.similarity)
            .collect();
        assert_eq!(sims, vec![0.95, 0.8, 0.5]);
    }

    #[test]
    fn push_ignores_unknown_personal_node() {
        let mut set = CandidateSet::new(vec![NodeId(0)]);
        set.push(MappingElement::new(NodeId(7), gid(0, 0), 0.9));
        assert_eq!(set.total_candidates(), 0);
    }

    #[test]
    fn min_candidate_node_is_me_min() {
        let set = sample_set();
        assert_eq!(set.min_candidate_node(), Some((NodeId(2), 1)));
    }

    #[test]
    fn usefulness_and_search_space() {
        let set = sample_set();
        assert!(set.is_useful());
        assert_eq!(set.search_space_size(), (2 * 3));
        assert_eq!(set.avg_candidates_per_node(), 2.0);

        let mut missing = CandidateSet::new(vec![NodeId(0), NodeId(1)]);
        missing.push(MappingElement::new(NodeId(0), gid(0, 1), 0.9));
        assert!(!missing.is_useful());
        assert!(missing.has_empty_node());
        assert_eq!(missing.search_space_size(), 0);
    }

    #[test]
    fn restrict_to_tree_keeps_only_that_tree() {
        let set = sample_set();
        let t0 = set.restrict_to_tree(TreeId(0));
        assert_eq!(t0.total_candidates(), 4);
        assert!(t0.iter().all(|m| m.repo.tree == TreeId(0)));
        assert_eq!(t0.personal_nodes(), set.personal_nodes());
        let t1 = set.restrict_to_tree(TreeId(1));
        assert_eq!(t1.total_candidates(), 2);
        assert!(!t1.is_useful()); // node 2 has no candidate in tree 1
    }

    #[test]
    fn split_by_tree_equals_per_tree_restriction() {
        let set = sample_set();
        let parts = set.split_by_tree();
        assert_eq!(
            parts.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            set.trees()
        );
        for (tree, part) in &parts {
            let reference = set.restrict_to_tree(*tree);
            assert_eq!(part.personal_nodes(), reference.personal_nodes());
            for &n in part.personal_nodes() {
                let (a, b) = (part.candidates_for(n), reference.candidates_for(n));
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.repo, y.repo);
                    assert_eq!(x.similarity.to_bits(), y.similarity.to_bits());
                }
            }
        }
        assert!(CandidateSet::new(vec![]).split_by_tree().is_empty());
    }

    #[test]
    fn trees_and_distinct_repo_nodes() {
        let set = sample_set();
        assert_eq!(set.trees(), vec![TreeId(0), TreeId(1)]);
        assert_eq!(set.distinct_repo_nodes(), 6);
    }

    #[test]
    fn empty_set_properties() {
        let set = CandidateSet::new(vec![]);
        assert_eq!(set.node_count(), 0);
        assert!(!set.is_useful());
        assert_eq!(set.search_space_size(), 0);
        assert_eq!(set.avg_candidates_per_node(), 0.0);
        assert_eq!(set.min_candidate_node(), None);
    }

    #[test]
    fn restrict_by_similarity_predicate() {
        let set = sample_set();
        let strong = set.restrict(|m| m.similarity >= 0.8);
        assert_eq!(strong.total_candidates(), 3);
        assert!(!strong.is_useful()); // node 2's only candidate was 0.6
    }
}
